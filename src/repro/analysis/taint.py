"""Secret-taint pass: CT001 (secret-dependent branch) and CT002
(non-constant-time comparison of secret-derived bytes).

Boneh–Franklin's security analysis assumes the implementation does not
leak secrets through timing.  Two mechanical invariants capture most of
what a hand-rolled Python stack can enforce:

* **CT002** — bytes derived from key material are never compared with
  ``==``/``!=``; every such comparison must go through
  :func:`repro.hashes.hmac.constant_time_equal`, which touches every
  byte regardless of where the first difference is.
* **CT001** — control flow (``if``/``while``/``assert``/ternary) never
  branches on a raw secret-derived value; an early return conditioned on
  a secret byte is a textbook timing oracle.

The pass is *transitive*: taint is tracked per function with a small
fixed-point loop, and function calls resolved through the project call
graph (:mod:`repro.analysis.callgraph`) consult worklist-computed
:class:`~repro.analysis.dataflow.TaintSummary` objects, so taint
propagates through return values across module boundaries, through
``*args`` forwarding, and through dataclass fields a resolved
construction site filled with secret material.  Findings carry the
cross-function qualname trace (``[secret flows via a.f -> b.g]``).
Module-local helper functions whose return value is tainted are also
kept as bare-name sources, covering code analysed without a project
context.  Taint seeds:

* names (parameters, locals, ``self.`` attributes) matching the secret
  lexicon — ``master_secret``, ``session_key``, ``shared_key``,
  ``mac_key``, ``password_hash``, ``private_key``/``private_point``,
  ``trapdoor``, ... — because this codebase names its secrets
  consistently (PrivateKey, KEM session keys, HMAC keys, password
  hashes);
* calls to primitives whose output is secret regardless of inputs
  (``extract_point``, ``derive_password_key``, ``compute_deposit_mac``,
  ...).  Keyed primitives like ``Hmac``/``kdf2`` are *not* sources:
  they propagate taint from their arguments (hashing a public identity
  yields a public digest; deriving from a session key yields a secret).

Taint propagates through arithmetic, indexing, method calls on tainted
receivers and ordinary calls taking tainted arguments.  It is *cut* at
explicit barriers: ``constant_time_equal`` (the sanctioned sink),
``len``/``isinstance`` (shape, not content), authenticated
``seal``/``open`` (ciphertext and post-verification plaintext are
attacker-visible by design) and RNG output (nonces/IVs are public).

Additionally, CT002 applies a *name heuristic*: a direct ``==`` on a
variable named like MAC material (``mac``, ``tag``, ``digest``) is
flagged even when taint cannot prove derivation — unless the file
declares the name public with ``# repro-lint: nonsecret=NAME`` (see
:mod:`repro.analysis.suppress`), which is how the PKG's wire dispatch
byte documents its exemption.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.callgraph import param_names
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import ModuleContext, Rule, register

__all__ = ["SecretBranchRule", "SecretCompareRule", "FunctionTaint"]

#: Exact (normalised) names seeding taint.  Normalisation strips leading
#: underscores and lowercases.
SECRET_NAMES = frozenset({
    "secret",
    "master_secret",
    "secret_key",
    "session_key",
    "shared_key",
    "mac_key",
    "hmac_key",
    "password_hash",
    "hashed_password",
    "private_key",
    "private_point",
    "signing_key",
    "trapdoor",
    "sk",
    "ikm",
})

#: Name suffixes that also seed taint (``rc_session_key`` etc.).
SECRET_SUFFIXES = (
    "_secret",
    "_session_key",
    "_shared_key",
    "_mac_key",
    "_private_key",
    "_password_hash",
    "_signing_key",
)

#: Terminal callable names whose return value is secret-derived no
#: matter what arguments they take.  ``Hmac``/``kdf1``/``kdf2``/``hkdf``
#: are deliberately absent: they are keyed *propagators* — already
#: covered by the call-with-tainted-argument rule — because e.g.
#: ``kdf2(H1_domain || identity)`` over a public identity is public.
SOURCE_CALLS = frozenset({
    "compute_deposit_mac",
    "derive_password_key",
    "hash_password",
    "password_key",
    "extract_point",
    "extract",
})

#: Terminal callable names that cut taint (output is public or
#: content-independent by design).
BARRIER_CALLS = frozenset({
    "constant_time_equal",
    "len",
    "isinstance",
    "type",
    "id",
    "repr",
    "range",
    "enumerate",
    "hash",
    # Authenticated container boundaries: sealed bytes are wire-visible
    # ciphertext; opened bytes already passed the MAC check.
    "seal",
    "open",
    "encrypt",
    "decrypt",
    "encrypt_block",
    "decrypt_block",
    # RNG output: nonces/IVs/session ids are public values.  Key
    # material drawn from an RNG gets tainted by its *name* instead.
    "randbytes",
    "getrandbits",
    "randbelow",
    "randint",
    # Boolean verdict predicates (PEKS test, signature verify): the
    # match result is the protocol's public output; the comparison
    # *inside* them is what CT002 polices.
    "test",
    "verify",
})

#: Names CT002 treats as MAC-shaped even without proven taint; matched
#: exactly or as a ``_``-separated suffix (``expected_mac``, ``auth_tag``).
SUSPECT_COMPARE_NAMES = frozenset({"mac", "tag", "digest", "mic", "hmac"})


def _is_suspect_name(name: str) -> bool:
    normalised = _normalise(name)
    return normalised in SUSPECT_COMPARE_NAMES or any(
        normalised.endswith("_" + suspect) for suspect in SUSPECT_COMPARE_NAMES
    )


def _normalise(name: str) -> str:
    return name.lstrip("_").lower()


def _is_secret_name(name: str) -> bool:
    normalised = _normalise(name)
    return normalised in SECRET_NAMES or any(
        normalised.endswith(suffix) for suffix in SECRET_SUFFIXES
    )


def _terminal_name(func: ast.AST) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class FunctionTaint:
    """Taint evaluation for one function body (or the module body).

    ``extra_sources`` names module-local functions already known to
    return tainted values.  ``nonsecret`` names are never tainted and
    never suspect, regardless of lexicon matches.  ``seed`` forces
    names tainted regardless of the lexicon (the dataflow pass probes
    parameter flow this way).  ``call_resolver`` is the project's
    summary-backed ``(call, taint) -> (tainted, trace) | None``
    callback; ``attr_resolver`` answers whether an attribute access
    reads a project-known secret dataclass field.
    """

    _MAX_PASSES = 8

    def __init__(
        self,
        body: list[ast.stmt],
        extra_sources: frozenset[str] = frozenset(),
        nonsecret: frozenset[str] = frozenset(),
        params: list[str] = (),
        seed: frozenset[str] = frozenset(),
        call_resolver=None,
        attr_resolver=None,
    ) -> None:
        self._body = body
        self._extra_sources = extra_sources
        self._nonsecret = nonsecret
        self._call_resolver = call_resolver
        self._attr_resolver = attr_resolver
        #: id(ast.Call) -> qualname chain, recorded when a resolved
        #: callee's summary supplied the taint — the finding trace.
        self.call_traces: dict[int, tuple[str, ...]] = {}
        #: local name -> qualname chain, carried across assignments so
        #: ``k = helper(); if k:`` still reports the helper chain.
        self.name_traces: dict[str, tuple[str, ...]] = {}
        self.tainted: set[str] = set(name for name in seed if name not in nonsecret)
        for param in params:
            if _is_secret_name(param) and param not in nonsecret:
                self.tainted.add(param)
        self._fixed_point()

    # -- taint state -------------------------------------------------------

    def _fixed_point(self) -> None:
        for _ in range(self._MAX_PASSES):
            before = len(self.tainted)
            for stmt in self._body:
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Assign) and self.is_tainted(node.value):
                        trace = self.trace_for(node.value)
                        for target in node.targets:
                            self._taint_target(target, trace)
                    elif (
                        isinstance(node, (ast.AnnAssign, ast.AugAssign))
                        and node.value is not None
                        and self.is_tainted(node.value)
                    ):
                        self._taint_target(node.target, self.trace_for(node.value))
                    elif isinstance(node, ast.withitem) and node.optional_vars:
                        if self.is_tainted(node.context_expr):
                            self._taint_target(node.optional_vars)
            if len(self.tainted) == before:
                return

    def _taint_target(self, target: ast.AST, trace: tuple[str, ...] = ()) -> None:
        if isinstance(target, ast.Name):
            if target.id not in self._nonsecret:
                self.tainted.add(target.id)
                if trace and target.id not in self.name_traces:
                    self.name_traces[target.id] = trace
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._taint_target(element, trace)
        elif isinstance(target, ast.Starred):
            self._taint_target(target.value, trace)
        # Attribute/Subscript targets: taint is name-based for
        # attributes (the lexicon covers self._mac_key and friends).

    # -- taint queries -----------------------------------------------------

    def is_tainted(self, node: ast.AST) -> bool:
        """Whether ``node``'s value is secret-derived."""
        if isinstance(node, ast.Name):
            if node.id in self._nonsecret:
                return False
            return node.id in self.tainted or _is_secret_name(node.id)
        if isinstance(node, ast.Attribute):
            if node.attr in self._nonsecret:
                return False
            if _is_secret_name(node.attr) or self.is_tainted(node.value):
                return True
            if self._attr_resolver is not None:
                return bool(self._attr_resolver(node))
            return False
        if isinstance(node, ast.Call):
            name = _terminal_name(node.func)
            if name in BARRIER_CALLS:
                return False
            if name in SOURCE_CALLS or name in self._extra_sources:
                return True
            if self._call_resolver is not None:
                verdict = self._call_resolver(node, self)
                if verdict is not None:
                    is_tainted, trace = verdict
                    if is_tainted:
                        if trace:
                            self.call_traces[id(node)] = tuple(trace)
                        return True
                    # Every resolved candidate's summary says the
                    # return is clean for these arguments: cut here
                    # instead of falling back to the blunt heuristics.
                    return False
            if isinstance(node.func, ast.Attribute) and self.is_tainted(
                node.func.value
            ):
                return True
            return any(self.is_tainted(arg) for arg in node.args) or any(
                self.is_tainted(kw.value) for kw in node.keywords
            )
        if isinstance(node, ast.BinOp):
            return self.is_tainted(node.left) or self.is_tainted(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.is_tainted(node.operand)
        if isinstance(node, ast.BoolOp):
            return any(self.is_tainted(value) for value in node.values)
        if isinstance(node, ast.Compare):
            # The *result* of a comparison is a bool; it does not carry
            # the secret bytes (the comparison itself is what CT002
            # polices).  Sanctioned sinks therefore stop propagation.
            return False
        if isinstance(node, ast.Subscript):
            return self.is_tainted(node.value)
        if isinstance(node, ast.IfExp):
            return self.is_tainted(node.body) or self.is_tainted(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return any(self.is_tainted(element) for element in node.elts)
        if isinstance(node, ast.Dict):
            return any(
                value is not None and self.is_tainted(value) for value in node.values
            )
        if isinstance(node, ast.JoinedStr):
            return any(
                isinstance(value, ast.FormattedValue) and self.is_tainted(value.value)
                for value in node.values
            )
        if isinstance(node, ast.FormattedValue):
            return self.is_tainted(node.value)
        if isinstance(node, ast.Starred):
            return self.is_tainted(node.value)
        if isinstance(node, ast.Await):
            return self.is_tainted(node.value)
        if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            return any(self.is_tainted(gen.iter) for gen in node.generators)
        return False

    def returns_tainted(self) -> bool:
        """Whether any ``return`` in the body yields a tainted value."""
        for stmt in self._body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Return) and node.value is not None:
                    if self.is_tainted(node.value):
                        return True
        return False

    def trace_for(self, node: ast.AST) -> tuple[str, ...]:
        """The cross-function qualname chain behind ``node``'s taint.

        Empty when the taint is module-local (lexicon name, source
        call) — findings then read as before, without a trace suffix.
        """
        for child in ast.walk(node):
            trace = self.call_traces.get(id(child))
            if trace:
                return trace
            if isinstance(child, ast.Name):
                trace = self.name_traces.get(child.id, ())
                if trace:
                    return trace
        return ()


def _module_taint_sources(
    tree: ast.Module, nonsecret: frozenset[str]
) -> frozenset[str]:
    """Module-local functions whose return value is secret-derived."""
    sources: set[str] = set()
    functions = [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    for _ in range(3):  # helper-of-helper chains converge quickly
        before = len(sources)
        for function in functions:
            if function.name in sources:
                continue
            params = [arg.arg for arg in function.args.args]
            taint = FunctionTaint(
                function.body,
                extra_sources=frozenset(sources),
                nonsecret=nonsecret,
                params=params,
            )
            if taint.returns_tainted():
                sources.add(function.name)
        if len(sources) == before:
            break
    return frozenset(sources)


def _shared_scan(ctx: ModuleContext) -> "_TaintScan":
    """The per-module scan, built once and shared by CT001 and CT002."""
    scan = ctx.cache.get("taint_scan")
    if scan is None:
        scan = _TaintScan(ctx)
        ctx.cache["taint_scan"] = scan
    return scan


class _TaintScan:
    """Shared scan walking every function once for both CT rules.

    With a project context attached, each function's taint consults the
    whole-program call-graph summaries (transitive return-value taint,
    with qualname traces) and the secret-dataclass-field set.
    """

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx
        self.project = ctx.project
        self.nonsecret = frozenset(ctx.annotations.nonsecret)
        self.sources = _module_taint_sources(ctx.tree, self.nonsecret)
        self._call_resolver = None
        self._secret_fields: frozenset = frozenset()
        if self.project is not None:
            self._call_resolver = self.project.call_verdict()
            self._secret_fields = self.project.secret_dataclass_fields()
        self._scopes: list[tuple[FunctionTaint, list, str]] | None = None

    def _attr_resolver(self, qualname: str | None):
        if self.project is None or qualname is None or not self._secret_fields:
            return None
        graph = self.project.graph
        info = graph.functions.get(qualname)
        if info is None:
            return None
        local_types = self.project.local_types(qualname)
        enclosing = info.class_name
        class_info = graph.classes.get(enclosing) if enclosing else None
        secret_fields = self._secret_fields

        def resolver(attr_node: ast.Attribute):
            receiver = attr_node.value
            receiver_class = None
            if isinstance(receiver, ast.Name):
                if receiver.id in ("self", "cls"):
                    receiver_class = enclosing
                else:
                    receiver_class = local_types.get(receiver.id)
            elif (
                isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == "self"
                and class_info is not None
            ):
                receiver_class = class_info.attr_types.get(receiver.attr)
            if receiver_class is None:
                return None
            queue = [receiver_class]
            seen: set[str] = set()
            while queue:
                current = queue.pop(0)
                if current in seen:
                    continue
                seen.add(current)
                if (current, attr_node.attr) in secret_fields:
                    return True
                current_info = graph.classes.get(current)
                if current_info is not None:
                    queue.extend(current_info.bases)
            return None

        return resolver

    def scopes(self) -> Iterator[tuple[FunctionTaint, list[ast.stmt], str]]:
        if self._scopes is not None:
            yield from self._scopes
            return
        scopes: list[tuple[FunctionTaint, list, str]] = []
        graph = self.project.graph if self.project is not None else None
        seen: set[int] = set()
        for node in ast.walk(self.ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name == "constant_time_equal":
                # The primitive itself necessarily handles secret bytes.
                for child in ast.walk(node):
                    seen.add(id(child))
                continue
            if id(node) in seen:
                continue
            for child in ast.walk(node):
                seen.add(id(child))
            qualname = graph.qualname_of(node) if graph is not None else None
            scopes.append(
                (
                    FunctionTaint(
                        node.body,
                        extra_sources=self.sources,
                        nonsecret=self.nonsecret,
                        params=list(param_names(node.args)),
                        call_resolver=self._call_resolver,
                        attr_resolver=self._attr_resolver(qualname),
                    ),
                    node.body,
                    node.name,
                )
            )
        self._scopes = scopes
        yield from scopes


def _trace_suffix(taint: FunctionTaint, node: ast.AST) -> str:
    trace = taint.trace_for(node)
    if not trace:
        return ""
    return " [secret flows via " + " -> ".join(trace) + "]"


def _compare_is_flagged(taint: FunctionTaint, node: ast.Compare, nonsecret) -> bool:
    """Whether a Compare is an eq/neq on secret or MAC-shaped bytes."""
    if not all(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
        return False
    operands = [node.left] + list(node.comparators)
    # Comparisons against None/bool literals are presence checks.
    for operand in operands:
        if isinstance(operand, ast.Constant) and (
            operand.value is None or isinstance(operand.value, bool)
        ):
            return False
    for operand in operands:
        if taint.is_tainted(operand):
            return True
        name = None
        if isinstance(operand, ast.Name):
            name = operand.id
        elif isinstance(operand, ast.Attribute):
            name = operand.attr
        if name is not None and name not in nonsecret:
            if _is_suspect_name(name):
                return True
    return False


@register
class SecretCompareRule(Rule):
    """CT002: ``==``/``!=`` on secret-derived or MAC-shaped bytes."""

    rule_id = "CT002"
    severity = Severity.ERROR
    title = "non-constant-time comparison of secret-derived bytes"
    rationale = (
        "Python's == short-circuits at the first differing byte, leaking "
        "the match length through timing; MAC tags, digests and derived "
        "keys must be compared with repro.hashes.hmac.constant_time_equal."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.config.ct_allowed(ctx.path):
            return
        scan = _shared_scan(ctx)
        for taint, body, func_name in scan.scopes():
            for stmt in body:
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Compare) and _compare_is_flagged(
                        taint, node, scan.nonsecret
                    ):
                        yield ctx.finding(
                            self,
                            node,
                            f"equality comparison on secret-derived bytes in "
                            f"{func_name}(); use repro.hashes.hmac."
                            "constant_time_equal (or annotate the name with "
                            "'# repro-lint: nonsecret=...' if it is public)"
                            + _trace_suffix(taint, node),
                        )


@register
class SecretBranchRule(Rule):
    """CT001: control flow conditioned on a raw secret-derived value."""

    rule_id = "CT001"
    severity = Severity.ERROR
    title = "secret-dependent branch or early return"
    rationale = (
        "Branching on secret-derived data (including ordering compares "
        "and early returns) makes execution time a function of the "
        "secret; route the decision through constant_time_equal or "
        "restructure so the branch condition is public."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.config.ct_allowed(ctx.path):
            return
        scan = _shared_scan(ctx)
        for taint, body, func_name in scan.scopes():
            for stmt in body:
                for node in ast.walk(stmt):
                    test = None
                    if isinstance(node, (ast.If, ast.While, ast.IfExp)):
                        test = node.test
                    elif isinstance(node, ast.Assert):
                        test = node.test
                    if test is None:
                        continue
                    if self._test_is_secret_dependent(taint, test, scan.nonsecret):
                        yield ctx.finding(
                            self,
                            test,
                            f"branch in {func_name}() conditioned on a "
                            "secret-derived value; compare via "
                            "constant_time_equal or restructure"
                            + _trace_suffix(taint, test),
                        )

    def _test_is_secret_dependent(self, taint, test, nonsecret) -> bool:
        """Raw tainted truthiness or an ordering compare on taint.

        Eq/NotEq compares are CT002's; ``is``/``is not``/membership are
        presence checks (replay caches hash their keys).  Sanitised
        expressions (len, constant_time_equal, ...) are already cut by
        the barrier list inside ``is_tainted``.
        """
        if isinstance(test, ast.Compare):
            if _compare_is_flagged(taint, test, nonsecret):
                return False  # CT002 reports it; do not double-flag
            if all(
                isinstance(op, (ast.Is, ast.IsNot, ast.In, ast.NotIn, ast.Eq, ast.NotEq))
                for op in test.ops
            ):
                return False
            return taint.is_tainted(test.left) or any(
                taint.is_tainted(comparator) for comparator in test.comparators
            )
        if isinstance(test, ast.BoolOp):
            return any(
                self._test_is_secret_dependent(taint, value, nonsecret)
                for value in test.values
            )
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return self._test_is_secret_dependent(taint, test.operand, nonsecret)
        return taint.is_tainted(test)
