"""Small AST helpers shared by the lint rules.

Nothing here is rule-specific: import-alias resolution (so ``from time
import time as now`` is still recognised as ``time.time``), dotted-name
extraction, and literal resolution for constants assigned earlier in the
module or enclosing function (the "interprocedural-lite" trick OBS001
uses to read ``stats_dict`` key tuples through a local variable).
"""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "import_map",
    "dotted_name",
    "resolve_qualified",
    "literal_strings",
    "literal_env",
    "is_dataclass_decorated",
    "walk_functions",
]


def import_map(tree: ast.Module) -> dict[str, str]:
    """Map each locally bound name to the qualified thing it imports.

    ``import time`` -> {"time": "time"};
    ``from os import urandom as rnd`` -> {"rnd": "os.urandom"};
    ``import os.path`` -> {"os": "os"}.
    """
    mapping: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                mapping[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                mapping[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return mapping


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolve_qualified(node: ast.AST, imports: dict[str, str]) -> str | None:
    """The fully qualified dotted name ``node`` refers to, if resolvable.

    The head segment is rewritten through the import map, so aliased
    imports resolve to their canonical module path.
    """
    dotted = dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    resolved_head = imports.get(head, head)
    return f"{resolved_head}.{rest}" if rest else resolved_head


def literal_strings(node: ast.AST) -> list[str] | None:
    """The string elements of a literal str/tuple/list/set/dict, if pure.

    For dict literals the *values* are returned (OBS001 checks the full
    metric names a ``names=`` override maps to).  Returns None when any
    element is not a plain string constant.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        elements = node.elts
    elif isinstance(node, ast.Dict):
        elements = [value for value in node.values if value is not None]
    else:
        return None
    out: list[str] = []
    for element in elements:
        if isinstance(element, ast.Constant) and isinstance(element.value, str):
            out.append(element.value)
        else:
            return None
    return out


def literal_env(*bodies: list[ast.stmt]) -> dict[str, list[str]]:
    """Names assigned (once) to literal string collections in ``bodies``.

    Later assignments win; only simple single-target assignments are
    tracked.  Used to resolve ``stats_dict(prefix, stat_keys)`` where
    ``stat_keys`` was defined a few lines up.
    """
    env: dict[str, list[str]] = {}
    for body in bodies:
        for stmt in body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
            ):
                strings = literal_strings(stmt.value)
                if strings is not None:
                    env[stmt.targets[0].id] = strings
    return env


def is_dataclass_decorated(node: ast.ClassDef) -> bool:
    """True when ``node`` carries a ``@dataclass`` (possibly called)."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        dotted = dotted_name(target)
        if dotted is not None and dotted.split(".")[-1] == "dataclass":
            return True
    return False


def walk_functions(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function/method definition in the module, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
