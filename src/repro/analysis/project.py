"""Whole-program context shared by every rule in one lint run.

The engine parses each file exactly once into a :class:`SourceModule`
and wraps the set in a :class:`ProjectContext`.  Rules reach it through
``ctx.project``; everything expensive (the call graph, the transitive
taint summaries, reachability from task roots) is built lazily on first
use and then shared, so single-rule unit tests that never touch the
project pay nothing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.astutil import is_dataclass_decorated
from repro.analysis.callgraph import CallGraph, ModuleSource, module_name_for_path
from repro.analysis.dataflow import SummaryCache, compute_taint_summaries, make_call_verdict
from repro.analysis.suppress import FileAnnotations

__all__ = ["SourceModule", "ProjectContext"]


@dataclass
class SourceModule:
    """One parsed file: the per-file AST cache entry."""

    path: str
    module: str
    source: str
    tree: ast.Module
    annotations: FileAnnotations

    @classmethod
    def parse(cls, source: str, path: str) -> "SourceModule":
        """Parse ``source`` once; raises SyntaxError for the engine."""
        from repro.analysis.suppress import parse_annotations

        return cls(
            path=path,
            module=module_name_for_path(path),
            source=source,
            tree=ast.parse(source, filename=path),
            annotations=parse_annotations(source),
        )


class ProjectContext:
    """Lazily built whole-program facts over one set of modules."""

    def __init__(self, modules: list[SourceModule]) -> None:
        self.modules: dict[str, SourceModule] = {m.path: m for m in modules}
        self._graph: CallGraph | None = None
        self._summaries: dict | None = None
        self._summary_cache = SummaryCache()
        self._task_origins: dict | None = None
        self._secret_fields: frozenset | None = None
        self._local_types: dict[str, dict] = {}

    # -- call graph --------------------------------------------------------

    @property
    def graph(self) -> CallGraph:
        if self._graph is None:
            self._graph = CallGraph.build(
                [
                    ModuleSource(path=m.path, module=m.module, tree=m.tree)
                    for m in sorted(self.modules.values(), key=lambda m: m.path)
                ]
            )
        return self._graph

    def local_types(self, qualname: str) -> dict[str, str]:
        """Receiver-type map for one function (memoised)."""
        cached = self._local_types.get(qualname)
        if cached is None:
            graph = self.graph
            info = graph.functions[qualname]
            cached = graph._local_types(
                info.node, info.module, graph._imports.get(info.module, {})
            )
            self._local_types[qualname] = cached
        return cached

    # -- transitive taint --------------------------------------------------

    def nonsecret_for(self, path: str) -> frozenset:
        module = self.modules.get(path)
        if module is None:
            return frozenset()
        return frozenset(module.annotations.nonsecret)

    def taint_summaries(self) -> dict:
        if self._summaries is None:
            self._summaries = compute_taint_summaries(
                self.graph, self.nonsecret_for, self._summary_cache
            )
        return self._summaries

    def call_verdict(self):
        """The ``(call, taint) -> (tainted, trace) | None`` resolver."""
        return make_call_verdict(self.graph, self.taint_summaries())

    def secret_dataclass_fields(self) -> frozenset:
        """``(class_qualname, field)`` pairs holding secret values.

        A dataclass field is secret when some resolved construction site
        passes it a tainted keyword argument — the cross-function leg of
        "taint propagates through dataclass fields".  One round only: a
        field marked here does not re-seed the summary fixed point
        (soundness caveat in docs/ANALYSIS.md).
        """
        if self._secret_fields is not None:
            return self._secret_fields
        from repro.analysis.taint import FunctionTaint

        graph = self.graph
        summaries = self.taint_summaries()
        resolver = make_call_verdict(graph, summaries)
        dataclass_fields: dict[str, set[str]] = {}
        for class_qualname, class_info in graph.classes.items():
            if is_dataclass_decorated(class_info.node):
                dataclass_fields[class_qualname] = {
                    stmt.target.id
                    for stmt in class_info.node.body
                    if isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                }
        found: set[tuple[str, str]] = set()
        for qualname, info in graph.functions.items():
            taint = FunctionTaint(
                info.node.body,
                nonsecret=self.nonsecret_for(info.path),
                params=list(info.params),
                call_resolver=resolver,
            )
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                for callee in graph.resolution_of(node):
                    owner = callee.rsplit(".", 1)[0]
                    fields = dataclass_fields.get(owner)
                    if not fields or not callee.endswith(".__init__"):
                        continue
                    for keyword in node.keywords:
                        if (
                            keyword.arg in fields
                            and taint.is_tainted(keyword.value)
                        ):
                            found.add((owner, keyword.arg))
        self._secret_fields = frozenset(found)
        return self._secret_fields

    # -- task reachability (CONC rules) ------------------------------------

    def task_origins(self) -> dict:
        """Reachable-from-a-spawned-task map: qualname -> root qualname."""
        if self._task_origins is None:
            graph = self.graph
            self._task_origins = graph.reachable(graph.spawn_targets)
        return self._task_origins

    # -- reporting ---------------------------------------------------------

    def stats(self) -> dict:
        """Call-graph + summary-cache counters for the CI artifact."""
        stats = dict(self.graph.stats())
        stats["spawn_roots"] = len(self.graph.spawn_targets)
        stats.update(self._summary_cache.stats())
        return stats
