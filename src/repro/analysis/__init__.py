"""Project-specific static analysis: crypto hygiene & protocol invariants.

``repro lint`` (see :mod:`repro.analysis.cli`) runs a rule-based AST
analyzer over the tree — stdlib ``ast`` only, honouring the repo's
zero-dependency constraint.  The rule catalogue lives in
docs/ANALYSIS.md; the rule IDs:

======  ==============================================================
CT001   secret-dependent branch / early return
CT002   non-constant-time comparison of secret-derived bytes
RNG001  ambient randomness outside ``mathlib/rand.py``
TIME001 wall-clock read outside ``sim/clock.py``
SER001  wire dataclass missing half of ``to_bytes``/``from_bytes``
OBS001  metric name not in the obs dump schema catalogue
EXC001  bare/overbroad except in ``mws/``/``pkg/``/``clients/``
API001  mutable default argument
API002  ``__all__`` drift
======  ==============================================================

Inline suppression: ``# repro-lint: disable=CT002`` on the finding's
line; ``# repro-lint: nonsecret=name`` declares a MAC-shaped name
public for the file (see :mod:`repro.analysis.suppress`).
"""

from repro.analysis.baseline import (
    BASELINE_VERSION,
    load_baseline,
    render_baseline,
    split_findings,
)
from repro.analysis.engine import (
    LintReport,
    analyze_paths,
    analyze_source,
    iter_python_files,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import LintConfig, ModuleContext, Rule, all_rules, rule_ids

__all__ = [
    "BASELINE_VERSION",
    "Finding",
    "LintConfig",
    "LintReport",
    "ModuleContext",
    "Rule",
    "Severity",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
    "load_baseline",
    "render_baseline",
    "rule_ids",
    "split_findings",
]
