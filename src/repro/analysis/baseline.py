"""Baseline files: grandfathered findings the lint gate tolerates.

A baseline is a committed JSON file listing findings that existed when
the analyzer was introduced (or when a rule was added) and have not yet
been fixed.  The gate fails only on findings *not* in the baseline, so
new violations cannot land while old ones are being burned down.  This
repository ships an **empty** baseline — every finding the analyzer
surfaced was fixed in the same PR — so the file exists purely as the
mechanism (and the round-trip tests keep it honest).

Matching is on ``(rule_id, path, line)``.  Messages are stored for
humans but ignored when matching, so reworded diagnostics do not
invalidate a baseline.
"""

from __future__ import annotations

import json

from repro.errors import DecodeError

from repro.analysis.findings import Finding

__all__ = ["BASELINE_VERSION", "load_baseline", "render_baseline", "split_findings"]

BASELINE_VERSION = 1


def load_baseline(text: str) -> set[tuple[str, str, int]]:
    """Parse baseline JSON into the set of grandfathered keys."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise DecodeError(f"baseline is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or "findings" not in data:
        raise DecodeError("baseline must be an object with a 'findings' list")
    version = data.get("version", BASELINE_VERSION)
    if version != BASELINE_VERSION:
        raise DecodeError(f"unsupported baseline version {version!r}")
    keys: set[tuple[str, str, int]] = set()
    for entry in data["findings"]:
        try:
            keys.add((entry["rule_id"], entry["path"], int(entry["line"])))
        except (KeyError, TypeError, ValueError) as exc:
            raise DecodeError(f"malformed baseline entry {entry!r}") from exc
    return keys


def render_baseline(findings: list[Finding]) -> str:
    """Serialise ``findings`` as a canonical baseline document."""
    entries = [
        {
            "rule_id": finding.rule_id,
            "path": finding.path,
            "line": finding.line,
            "message": finding.message,
        }
        for finding in sorted(findings, key=lambda f: f.sort_key)
    ]
    return (
        json.dumps(
            {"version": BASELINE_VERSION, "findings": entries},
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )


def split_findings(
    findings: list[Finding], baseline_keys: set[tuple[str, str, int]]
) -> tuple[list[Finding], list[Finding]]:
    """Partition into (new, baselined) against the grandfathered keys."""
    new: list[Finding] = []
    baselined: list[Finding] = []
    for finding in findings:
        (baselined if finding.baseline_key in baseline_keys else new).append(finding)
    return new, baselined
