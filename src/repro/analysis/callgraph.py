"""Project-wide call graph over the lint run's parsed modules.

The whole-program rules (CONC/REPL/BACK, and the transitive secret-taint
pass behind CT001/CT002) need to answer "who calls whom" across module
boundaries.  This module builds that graph once per lint run from the
ASTs the engine already parsed — no re-parsing, no imports executed.

Name resolution is deliberately *static and lite*:

* module-qualified names — ``src/repro/storage/wal.py`` indexes its
  functions as ``repro.storage.wal.<name>`` and its methods as
  ``repro.storage.wal.<Class>.<name>``;
* import-map resolution — ``from repro.storage.wal import
  WriteAheadLog as W`` resolves ``W(...)`` and ``W.append`` through the
  alias (see :func:`repro.analysis.astutil.import_map`);
* method dispatch via class-attribute lookup — ``self.meth()`` searches
  the enclosing class then its (project-resolvable) bases;
  ``self._wal.append()`` resolves through the receiver type recorded
  when ``__init__`` assigned ``self._wal = WriteAheadLog(...)``;
* bare-name fallback — an attribute call whose receiver type is unknown
  dispatches to *every* project class defining that method, capped at
  :data:`MAX_AMBIGUOUS_TARGETS` candidates so hyper-common names do not
  drown the graph in false edges.

Soundness caveats (documented in docs/ANALYSIS.md): dynamic dispatch
through callables stored in variables, ``getattr``, and monkeypatching
are invisible; decorated functions are indexed by their ``def`` name and
the decorator's wrapping semantics are ignored.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field

from repro.analysis.astutil import dotted_name, import_map

__all__ = [
    "MAX_AMBIGUOUS_TARGETS",
    "FunctionInfo",
    "ClassInfo",
    "ModuleSource",
    "CallGraph",
    "module_name_for_path",
    "param_names",
]

#: Upper bound on bare-name method-dispatch fan-out; above it the call
#: is treated as unresolvable rather than flooding the graph.
MAX_AMBIGUOUS_TARGETS = 4


def module_name_for_path(path: str) -> str:
    """Dotted module name for a posix display path.

    ``src/repro/storage/wal.py`` -> ``repro.storage.wal``; a leading
    ``src/`` segment is stripped, ``__init__`` collapses to the package.
    """
    parts = [part for part in path.split("/") if part]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def param_names(args: ast.arguments) -> tuple[str, ...]:
    """Every bindable parameter name, in binding order (incl. ``*args``)."""
    names = [arg.arg for arg in (*args.posonlyargs, *args.args)]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    names.extend(arg.arg for arg in args.kwonlyargs)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return tuple(names)


@dataclass
class ModuleSource:
    """One parsed module handed to the graph builder."""

    path: str
    module: str
    tree: ast.Module


@dataclass
class FunctionInfo:
    """One indexed function or method."""

    qualname: str
    module: str
    path: str
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None
    params: tuple[str, ...]
    #: Content hash of the definition — the summary-cache key.  Changes
    #: whenever the function body, signature or decorators change.
    fingerprint: str

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


@dataclass
class ClassInfo:
    """One indexed class: its methods and inferred attribute types."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    #: Base-class qualnames resolvable inside the project.
    bases: tuple[str, ...] = ()
    #: method name -> function qualname
    methods: dict[str, str] = field(default_factory=dict)
    #: ``self.<attr>`` -> class qualname, from ``self.attr = Class(...)``
    #: assignments anywhere in the class body.
    attr_types: dict[str, str] = field(default_factory=dict)


def _fingerprint(module: str, qualname: str, node: ast.AST) -> str:
    payload = f"{module}:{qualname}:{ast.dump(node)}".encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


class CallGraph:
    """Functions, classes, and resolved call edges for one project."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: caller qualname -> callee qualnames
        self.edges: dict[str, set[str]] = {}
        #: callee qualname -> caller qualnames
        self.callers: dict[str, set[str]] = {}
        #: functions whose *call expression* appears as a scheduler
        #: ``spawn(name, fn(...))`` argument — the task entry points.
        self.spawn_targets: set[str] = set()
        #: id(ast.Call) -> resolved callee qualnames (memoised once at
        #: build time; shared with the dataflow pass).
        self._resolution: dict[int, tuple[str, ...]] = {}
        #: id(def node) -> qualname, so rules can map an AST node they
        #: are visiting back to its graph identity.
        self._by_node: dict[int, str] = {}
        self._methods_by_name: dict[str, list[str]] = {}
        self._imports: dict[str, dict[str, str]] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, modules: list[ModuleSource]) -> "CallGraph":
        graph = cls()
        for source in modules:
            graph._index_module(source)
        graph._resolve_bases_and_attr_types(modules)
        for source in modules:
            graph._build_edges(source)
        return graph

    def _index_module(self, source: ModuleSource) -> None:
        self._imports[source.module] = import_map(source.tree)
        for stmt in source.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(source, stmt, class_info=None)
            elif isinstance(stmt, ast.ClassDef):
                qualname = f"{source.module}.{stmt.name}"
                info = ClassInfo(
                    qualname=qualname,
                    module=source.module,
                    name=stmt.name,
                    node=stmt,
                )
                self.classes[qualname] = info
                for child in stmt.body:
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._index_function(source, child, class_info=info)

    def _index_function(self, source, node, class_info: ClassInfo | None) -> None:
        if class_info is None:
            qualname = f"{source.module}.{node.name}"
        else:
            qualname = f"{class_info.qualname}.{node.name}"
            class_info.methods[node.name] = qualname
        info = FunctionInfo(
            qualname=qualname,
            module=source.module,
            path=source.path,
            name=node.name,
            node=node,
            class_name=class_info.qualname if class_info is not None else None,
            params=param_names(node.args),
            fingerprint=_fingerprint(source.module, qualname, node),
        )
        self.functions[qualname] = info
        self._by_node[id(node)] = qualname
        self._methods_by_name.setdefault(node.name, []).append(qualname)

    def _resolve_bases_and_attr_types(self, modules: list[ModuleSource]) -> None:
        for info in self.classes.values():
            imports = self._imports.get(info.module, {})
            bases = []
            for base in info.node.bases:
                resolved = self._resolve_class_name(base, info.module, imports)
                if resolved is not None:
                    bases.append(resolved)
            info.bases = tuple(bases)
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Assign):
                    continue
                if not isinstance(node.value, ast.Call):
                    continue
                target_class = self._resolve_class_name(
                    node.value.func, info.module, imports
                )
                if target_class is None:
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        info.attr_types[target.attr] = target_class

    def _resolve_class_name(
        self, node: ast.AST, module: str, imports: dict[str, str]
    ) -> str | None:
        """Class qualname ``node`` names, through aliases, else None."""
        dotted = dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        resolved = imports.get(head, head)
        candidate = f"{resolved}.{rest}" if rest else resolved
        if candidate in self.classes:
            return candidate
        local = f"{module}.{dotted}"
        if local in self.classes:
            return local
        return None

    # -- call resolution ---------------------------------------------------

    def _local_types(
        self, node: ast.AST, module: str, imports: dict[str, str]
    ) -> dict[str, str]:
        """Variable -> class qualname, from constructors and annotations."""
        types: dict[str, str] = {}
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for arg in (*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs):
                if arg.annotation is not None:
                    resolved = self._resolve_class_name(arg.annotation, module, imports)
                    if resolved is not None:
                        types[arg.arg] = resolved
        for child in ast.walk(node):
            if (
                isinstance(child, ast.Assign)
                and isinstance(child.value, ast.Call)
                and len(child.targets) == 1
                and isinstance(child.targets[0], ast.Name)
            ):
                resolved = self._resolve_class_name(child.value.func, module, imports)
                if resolved is not None:
                    types[child.targets[0].id] = resolved
        return types

    def _method_in_class(self, class_qualname: str, method: str) -> str | None:
        """Look ``method`` up in ``class_qualname`` and its bases (BFS)."""
        queue = [class_qualname]
        seen: set[str] = set()
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            found = info.methods.get(method)
            if found is not None:
                return found
            queue.extend(info.bases)
        return None

    def _constructor_of(self, class_qualname: str) -> str | None:
        return self._method_in_class(class_qualname, "__init__")

    def _resolve_call(
        self,
        call: ast.Call,
        module: str,
        imports: dict[str, str],
        enclosing_class: str | None,
        local_types: dict[str, str],
    ) -> tuple[str, ...]:
        func = call.func
        if isinstance(func, ast.Name):
            local = f"{module}.{func.id}"
            if local in self.functions:
                return (local,)
            resolved_class = self._resolve_class_name(func, module, imports)
            if resolved_class is not None:
                ctor = self._constructor_of(resolved_class)
                return (ctor,) if ctor is not None else ()
            resolved = imports.get(func.id)
            if resolved is not None and resolved in self.functions:
                return (resolved,)
            return ()
        if not isinstance(func, ast.Attribute):
            return ()
        receiver = func.value
        method = func.attr
        if isinstance(receiver, ast.Name) and receiver.id in ("self", "cls"):
            if enclosing_class is not None:
                found = self._method_in_class(enclosing_class, method)
                if found is not None:
                    return (found,)
            return self._ambiguous(method)
        dotted = dotted_name(func)
        if dotted is not None:
            head, _, rest = dotted.partition(".")
            resolved = imports.get(head, head)
            qualified = f"{resolved}.{rest}" if rest else resolved
            if qualified in self.functions:
                return (qualified,)
            # ClassName.method — a staticmethod-style reference.
            owner = qualified.rsplit(".", 1)[0] if "." in qualified else None
            if owner is not None and owner in self.classes:
                found = self._method_in_class(owner, method)
                if found is not None:
                    return (found,)
        receiver_class = self._receiver_class(
            receiver, module, enclosing_class, local_types
        )
        if receiver_class is not None:
            found = self._method_in_class(receiver_class, method)
            if found is not None:
                return (found,)
        return self._ambiguous(method)

    def _receiver_class(
        self,
        receiver: ast.AST,
        module: str,
        enclosing_class: str | None,
        local_types: dict[str, str],
    ) -> str | None:
        if isinstance(receiver, ast.Name):
            return local_types.get(receiver.id)
        if (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
            and enclosing_class is not None
        ):
            info = self.classes.get(enclosing_class)
            if info is not None:
                return info.attr_types.get(receiver.attr)
        return None

    def _ambiguous(self, method: str) -> tuple[str, ...]:
        candidates = self._methods_by_name.get(method, [])
        if 0 < len(candidates) <= MAX_AMBIGUOUS_TARGETS:
            return tuple(sorted(candidates))
        return ()

    def _build_edges(self, source: ModuleSource) -> None:
        imports = self._imports[source.module]
        for info in self.functions.values():
            if info.module != source.module:
                continue
            local_types = self._local_types(info.node, info.module, imports)
            self.edges.setdefault(info.qualname, set())
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                callees = self._resolve_call(
                    node, info.module, imports, info.class_name, local_types
                )
                self._resolution[id(node)] = callees
                for callee in callees:
                    self.edges[info.qualname].add(callee)
                    self.callers.setdefault(callee, set()).add(info.qualname)
                # ``scheduler.spawn(name, self._worker_loop(i))`` — the
                # generator call in argument position is a task root.
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "spawn"
                ):
                    for arg in node.args[1:]:
                        if isinstance(arg, ast.Call):
                            spawned = self._resolution.get(id(arg))
                            if spawned is None:
                                spawned = self._resolve_call(
                                    arg,
                                    info.module,
                                    imports,
                                    info.class_name,
                                    local_types,
                                )
                                self._resolution[id(arg)] = spawned
                            self.spawn_targets.update(spawned)

    # -- queries -----------------------------------------------------------

    def resolution_of(self, call: ast.Call) -> tuple[str, ...]:
        """Callee qualnames for a call node seen during edge building."""
        return self._resolution.get(id(call), ())

    def qualname_of(self, node: ast.AST) -> str | None:
        """Graph identity of a function/method ``def`` node, if indexed."""
        return self._by_node.get(id(node))

    def reachable(self, roots) -> dict[str, str]:
        """BFS over edges: reachable qualname -> the root it came from."""
        origin: dict[str, str] = {}
        queue: list[str] = []
        for root in sorted(roots):
            if root in self.functions and root not in origin:
                origin[root] = root
                queue.append(root)
        while queue:
            current = queue.pop(0)
            for callee in sorted(self.edges.get(current, ())):
                if callee not in origin and callee in self.functions:
                    origin[callee] = origin[current]
                    queue.append(callee)
        return origin

    def stats(self) -> dict:
        """The CI-artifact counters for this graph."""
        return {
            "functions": len(self.functions),
            "classes": len(self.classes),
            "edges": sum(len(callees) for callees in self.edges.values()),
        }
