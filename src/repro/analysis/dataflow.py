"""Worklist dataflow over the project call graph.

Two layers live here:

* **Function taint summaries** — for every function in the
  :class:`~repro.analysis.callgraph.CallGraph`, a
  :class:`TaintSummary` saying whether its return value is
  secret-derived outright and which parameters flow to the return
  value.  Summaries are computed by a monotone worklist (callers are
  re-queued when a callee's summary grows) so taint is *transitive*
  across modules: ``a()`` returning ``extract_point(...)`` taints
  ``b()`` returning ``a()`` taints any branch on ``b()`` two modules
  away.  A :class:`SummaryCache` keyed by function fingerprint skips
  recomputation when a function's callee summaries have not changed
  between worklist visits.

* **Guard dominance** — an AST-level approximation of "every path to
  this statement passes a guard": either the statement is nested in an
  ``if``/``while`` whose test satisfies the predicate, or an earlier
  sibling (at any enclosing nesting level) is an early-exit
  ``if <test>: raise/return/continue/break`` whose test satisfies it.
  Polarity is deliberately ignored — the discipline the CONC rules
  enforce is "the function consulted the interlock", not the exact
  boolean sense (see docs/ANALYSIS.md for the soundness caveats).

:class:`ValueFlow` is the generic single-function engine the BACK rules
reuse with a different source/barrier vocabulary (Montgomery-form
residues instead of secrets).
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator

__all__ = [
    "TaintSummary",
    "SummaryCache",
    "compute_taint_summaries",
    "make_call_verdict",
    "ValueFlow",
    "guard_dominates",
    "test_mentions",
    "statement_chain",
]


# ---------------------------------------------------------------------------
# Function taint summaries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TaintSummary:
    """What a caller needs to know about one function's taint behaviour."""

    #: The return value is secret-derived regardless of arguments.
    returns_secret: bool = False
    #: Parameter indices whose taint flows to the return value
    #: (index 0 is ``self`` for methods).
    param_flow: frozenset = frozenset()
    #: Qualname chain explaining *why* the return is secret — shown in
    #: CT001/CT002 findings as the cross-function trace.
    trace: tuple = ()

    def merged_with(self, other: "TaintSummary") -> "TaintSummary":
        """Monotone join (the worklist only ever grows summaries)."""
        return TaintSummary(
            returns_secret=self.returns_secret or other.returns_secret,
            param_flow=self.param_flow | other.param_flow,
            trace=other.trace or self.trace,
        )


class SummaryCache:
    """Fingerprint-keyed summary store with dependency stamps.

    A worklist revisit whose function fingerprint *and* callee-summary
    stamp both match the stored entry reuses the cached summary instead
    of re-running the fixed point.  ``hits``/``entries`` feed the
    ``summaries_cached`` CI stat.
    """

    def __init__(self) -> None:
        self._entries: dict[str, tuple] = {}
        self.hits = 0

    def lookup(self, fingerprint: str, dep_stamp) -> TaintSummary | None:
        entry = self._entries.get(fingerprint)
        if entry is not None and entry[0] == dep_stamp:
            return entry[1]
        return None

    def store(self, fingerprint: str, dep_stamp, summary: TaintSummary) -> None:
        self._entries[fingerprint] = (dep_stamp, summary)

    def stats(self) -> dict:
        return {"summaries_cached": len(self._entries), "summary_cache_hits": self.hits}


#: Longest qualname chain carried in a finding trace.
_MAX_TRACE = 4


def make_call_verdict(graph, summaries) -> Callable:
    """A ``(call, taint) -> (tainted, trace) | None`` resolver closure.

    ``None`` means the call could not be resolved in the graph and the
    caller should fall back to its local heuristics.  A definite
    ``False`` *cuts* taint: every resolved candidate's summary says the
    return value is clean given the (un)tainted arguments at this site.
    """

    def verdict(call: ast.Call, taint) -> tuple | None:
        candidates = graph.resolution_of(call)
        if not candidates:
            return None
        traces = []
        for qualname in candidates:
            summary = summaries.get(qualname)
            if summary is None:
                return None
            info = graph.functions.get(qualname)
            if info is None:
                return None
            if _call_flows_taint(call, summary, info, taint):
                traces.append(((qualname,) + summary.trace)[:_MAX_TRACE])
        if traces:
            return True, min(traces)
        return False, ()

    return verdict


def _call_flows_taint(call: ast.Call, summary: TaintSummary, info, taint) -> bool:
    """Whether this call site's arguments make the return tainted."""
    # # repro-lint: nonsecret=summary,returns_secret -- meta-level
    # analysis state *about* secrets, not key material itself.
    if summary.returns_secret:
        return True
    if not summary.param_flow:
        return False
    offset = 0
    if info.is_method and isinstance(call.func, ast.Attribute):
        offset = 1  # positional arg i binds parameter i+1 (after self)
        if 0 in summary.param_flow and taint.is_tainted(call.func.value):
            return True
    for index, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            # ``f(*args)`` — the forwarded tuple may land on any
            # flowing parameter.
            if taint.is_tainted(arg.value):
                return True
        elif taint.is_tainted(arg) and (index + offset) in summary.param_flow:
            return True
    for keyword in call.keywords:
        if not taint.is_tainted(keyword.value):
            continue
        if keyword.arg is None:  # **kwargs forwarding
            return True
        if keyword.arg in info.params:
            if info.params.index(keyword.arg) in summary.param_flow:
                return True
    return False


def compute_taint_summaries(
    graph,
    nonsecret_for: Callable[[str], frozenset],
    cache: SummaryCache | None = None,
) -> dict:
    """Worklist fixed point over the whole graph.

    ``nonsecret_for(path)`` supplies the per-file ``# repro-lint:
    nonsecret=`` names.  Returns ``{qualname: TaintSummary}``.
    """
    from repro.analysis.taint import FunctionTaint

    cache = cache if cache is not None else SummaryCache()
    summaries: dict[str, TaintSummary] = {
        qualname: TaintSummary() for qualname in graph.functions
    }
    pending = deque(sorted(graph.functions))
    queued = set(pending)
    # Monotone summaries over a finite lattice converge; the budget is
    # a belt-and-braces bound against resolver bugs, not a tuning knob.
    budget = 20 * max(1, len(graph.functions))
    while pending and budget:
        budget -= 1
        qualname = pending.popleft()
        queued.discard(qualname)
        info = graph.functions[qualname]
        dep_stamp = tuple(
            sorted((callee, summaries[callee]) for callee in graph.edges.get(qualname, ()) if callee in summaries)
        )
        summary = cache.lookup(info.fingerprint, dep_stamp)
        if summary is not None:
            cache.hits += 1
        else:
            summary = summaries[qualname].merged_with(
                _summarize(FunctionTaint, info, graph, summaries, nonsecret_for(info.path))
            )
            cache.store(info.fingerprint, dep_stamp, summary)
        if summary != summaries[qualname]:
            summaries[qualname] = summary
            for caller in sorted(graph.callers.get(qualname, ())):
                if caller not in queued and caller in summaries:
                    pending.append(caller)
                    queued.add(caller)
    return summaries


def _summarize(FunctionTaint, info, graph, summaries, nonsecret) -> TaintSummary:
    resolver = make_call_verdict(graph, summaries)
    body = info.node.body
    params = list(info.params)
    base = FunctionTaint(
        body, nonsecret=nonsecret, params=params, call_resolver=resolver
    )
    if base.returns_tainted():
        return TaintSummary(
            returns_secret=True, trace=_return_trace(base, body)
        )
    flow: set[int] = set()
    if params:
        probe_all = FunctionTaint(
            body,
            nonsecret=nonsecret,
            params=params,
            seed=frozenset(params),
            call_resolver=resolver,
        )
        if probe_all.returns_tainted():
            for index, param in enumerate(params):
                probe = FunctionTaint(
                    body,
                    nonsecret=nonsecret,
                    params=params,
                    seed=frozenset({param}),
                    call_resolver=resolver,
                )
                if probe.returns_tainted():
                    flow.add(index)
            if not flow:
                # Only a parameter *combination* taints the return;
                # stay conservative and charge every parameter.
                flow = set(range(len(params)))
    return TaintSummary(param_flow=frozenset(flow))


def _return_trace(taint, body) -> tuple:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Return) and node.value is not None:
                if taint.is_tainted(node.value):
                    trace = taint.trace_for(node.value)
                    if trace:
                        return trace[:_MAX_TRACE]
    return ()


# ---------------------------------------------------------------------------
# Generic single-function value flow (used by the BACK rules)
# ---------------------------------------------------------------------------


class ValueFlow:
    """Fixed-point flow of a call-rooted value domain through one body.

    ``source_calls`` produce domain values, ``barrier_calls`` convert
    them back out; assignments, arithmetic, subscripts and tuples
    propagate.  The secret-taint pass has its own richer engine
    (:class:`repro.analysis.taint.FunctionTaint`); this one is the
    small reusable core for other value disciplines.
    """

    _MAX_PASSES = 8

    def __init__(
        self,
        body: list,
        source_calls: frozenset,
        barrier_calls: frozenset,
        seed_names: frozenset = frozenset(),
    ) -> None:
        self._body = body
        self._sources = source_calls
        self._barriers = barrier_calls
        self.tainted: set[str] = set(seed_names)
        for _ in range(self._MAX_PASSES):
            before = len(self.tainted)
            for stmt in body:
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Assign) and self.is_tainted(node.value):
                        for target in node.targets:
                            self._mark(target)
                    elif (
                        isinstance(node, (ast.AnnAssign, ast.AugAssign))
                        and node.value is not None
                        and self.is_tainted(node.value)
                    ):
                        self._mark(node.target)
            if len(self.tainted) == before:
                break

    def _mark(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.tainted.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._mark(element)

    def is_tainted(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.Call):
            name = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            if name in self._barriers:
                return False
            if name in self._sources:
                return True
            return any(self.is_tainted(arg) for arg in node.args)
        if isinstance(node, ast.BinOp):
            return self.is_tainted(node.left) or self.is_tainted(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.is_tainted(node.operand)
        if isinstance(node, ast.IfExp):
            return self.is_tainted(node.body) or self.is_tainted(node.orelse)
        if isinstance(node, ast.Subscript):
            return self.is_tainted(node.value)
        if isinstance(node, (ast.Tuple, ast.List)):
            return any(self.is_tainted(element) for element in node.elts)
        if isinstance(node, ast.Starred):
            return self.is_tainted(node.value)
        return False


# ---------------------------------------------------------------------------
# Guard dominance
# ---------------------------------------------------------------------------

_BODY_FIELDS = ("body", "orelse", "finalbody")


def statement_chain(
    func_node: ast.AST, target: ast.AST
) -> Iterator[tuple[ast.AST, list, int]]:
    """Yield ``(container, body_list, index)`` from ``target`` outward.

    Each tuple locates the statement on ``target``'s ancestry inside its
    containing statement list, innermost first, ending at the function
    body itself.
    """
    parents: dict[int, ast.AST] = {}
    for parent in ast.walk(func_node):
        for child in ast.iter_child_nodes(parent):
            parents.setdefault(id(child), parent)
    # Hoist target up to its enclosing statement.
    node = target
    while id(node) in parents and not isinstance(node, ast.stmt):
        node = parents[id(node)]
    while isinstance(node, ast.stmt):
        parent = parents.get(id(node))
        if parent is None:
            return
        located = False
        containers = [parent]
        if isinstance(parent, ast.Try):
            containers.extend(parent.handlers)
        for container in containers:
            for field_name in _BODY_FIELDS:
                body = getattr(container, field_name, None)
                if isinstance(body, list) and any(
                    child is node for child in body
                ):
                    yield container, body, body.index(node)
                    located = True
                    break
            if located:
                break
        if not located:
            return
        node = parent
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return


def _exits_early(body: list) -> bool:
    return bool(body) and isinstance(
        body[-1], (ast.Raise, ast.Return, ast.Continue, ast.Break)
    )


def guard_dominates(
    func_node: ast.AST, target: ast.AST, predicate: Callable[[ast.AST], bool]
) -> bool:
    """Whether a guard satisfying ``predicate`` dominates ``target``.

    AST approximation: the target is nested under an ``if``/``while``
    whose test satisfies the predicate, or some earlier sibling on its
    ancestry is an early-exit ``if`` whose test satisfies it.
    """
    for container, body, index in statement_chain(func_node, target):
        if isinstance(container, (ast.If, ast.While)) and predicate(container.test):
            return True
        for prior in body[:index]:
            if (
                isinstance(prior, ast.If)
                and predicate(prior.test)
                and (_exits_early(prior.body) or _exits_early(prior.orelse))
            ):
                return True
    return False


def test_mentions(test: ast.AST, fragments: tuple[str, ...]) -> bool:
    """Whether any name/attribute in ``test`` contains a fragment."""
    for node in ast.walk(test):
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is not None and any(fragment in name for fragment in fragments):
            return True
    return False
