"""Field-backend discipline rule: BACK001.

The Montgomery backend (``pairing/montgomery.py``) keeps residues in
``aR mod p`` form; everything outside it speaks canonical integers.
Mixing the two without a REDC conversion (``from_mont``/``mont_mul``)
produces values that are wrong by a factor of R — and because both
domains are plain Python ints, nothing crashes: the pairing just
computes garbage that may even be consistent enough to pass a smoke
test.  BACK001 runs a small value-flow
(:class:`repro.analysis.dataflow.ValueFlow`) over each function outside
the allowed backend files and flags schoolbook arithmetic touching a
Montgomery-domain value.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.dataflow import ValueFlow
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import ModuleContext, Rule, register

__all__ = ["MontgomeryDomainRule"]

#: Calls producing Montgomery-domain residues.
_MONT_SOURCES = frozenset({"to_mont", "mont_mul", "mont_sqr", "mont_pow"})

#: Calls converting back to the canonical domain (the REDC boundary).
_MONT_BARRIERS = frozenset({"from_mont", "redc"})

#: Schoolbook operators that are meaningless on a raw residue unless
#: both sides share the domain *and* a REDC follows (which ``ValueFlow``
#: cannot see) — outside the backend they are always a mixing bug.
_SCHOOLBOOK_OPS = (ast.Mult, ast.Pow, ast.FloorDiv, ast.Div)


@register
class MontgomeryDomainRule(Rule):
    """BACK001: no schoolbook arithmetic on Montgomery-form values."""

    rule_id = "BACK001"
    severity = Severity.ERROR
    title = "Montgomery-form value mixed into schoolbook arithmetic"
    rationale = (
        "A residue in Montgomery form (aR mod p) fed to ordinary "
        "arithmetic is silently wrong by a factor of R; products need "
        "REDC (mont_mul) and cross-domain sums need from_mont() first. "
        "Only the backend kernel may manipulate raw residues."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.config.back_allowed(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            flow = ValueFlow(node.body, _MONT_SOURCES, _MONT_BARRIERS)
            if not flow.tainted and not self._has_source(node):
                continue
            yield from self._check_function(ctx, node, flow)

    @staticmethod
    def _has_source(node: ast.AST) -> bool:
        for child in ast.walk(node):
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, (ast.Name, ast.Attribute))
            ):
                name = (
                    child.func.id
                    if isinstance(child.func, ast.Name)
                    else child.func.attr
                )
                if name in _MONT_SOURCES:
                    return True
        return False

    def _check_function(
        self, ctx: ModuleContext, node: ast.AST, flow: ValueFlow
    ) -> Iterator[Finding]:
        for child in ast.walk(node):
            if isinstance(child, ast.BinOp):
                left = flow.is_tainted(child.left)
                right = flow.is_tainted(child.right)
                if not (left or right):
                    continue
                mixing = left != right
                schoolbook = isinstance(child.op, _SCHOOLBOOK_OPS)
                if mixing or schoolbook:
                    yield ctx.finding(
                        self,
                        child,
                        "Montgomery-form value used in schoolbook "
                        "arithmetic outside the backend; convert with "
                        "from_mont() or use mont_mul()/mont_sqr()",
                    )
            elif isinstance(child, ast.Compare):
                sides = [child.left, *child.comparators]
                taints = [flow.is_tainted(side) for side in sides]
                if any(taints) and not all(taints):
                    yield ctx.finding(
                        self,
                        child,
                        "Montgomery-form value compared against a "
                        "canonical-domain value; convert with from_mont() "
                        "before comparing",
                    )
