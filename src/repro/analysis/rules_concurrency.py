"""Concurrency-discipline rules: CONC001, CONC002.

The shard-parallel runtime's correctness argument rests on two
disciplines the deterministic scheduler cannot enforce at runtime for
*every* interleaving:

* **shard ownership** — a spawned worker task may only touch the shard
  state it owns.  Ownership is provable when the container index is the
  owner parameter the task was spawned with, or an explicit
  ``shard % workers`` expression (the routing function itself).
* **lease interlocks** — topology mutations on a lease-scoped warehouse
  (ring swaps, shard growth, wholesale close/compact) must consult the
  worker-lease or drain interlock before acting, or an admin call can
  slide a rebalance under live traffic.

Both rules lean on the whole-program layer: CONC001 only polices
functions *reachable from a spawned task* (via
:meth:`repro.analysis.project.ProjectContext.task_origins`), and scopes
itself to functions living in the same module as their task root — the
storage layer reached from a drain task enforces its own interlocks,
which is CONC002's job, not CONC001's.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.dataflow import guard_dominates, test_mentions
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import ModuleContext, Rule, register

__all__ = ["SharedShardStateRule", "LeaseInterlockRule"]

#: Attribute names whose assignment marks a method as a topology
#: mutation (ring swap / drain bookkeeping) inside a lease class.
_TOPOLOGY_FRAGMENTS = ("ring",)

#: Wholesale per-shard lifecycle calls a ``for shard in self._shards``
#: loop may only issue behind the lease interlock.
_LIFECYCLE_CALLS = ("close", "compact")

#: How far sensitivity propagates from a private helper to its callers.
_PROPAGATION_DEPTH = 3


def _module_functions(ctx: ModuleContext):
    """(qualname, def node) for every graph-indexed function here."""
    project = ctx.project
    if project is None:
        return
    graph = project.graph
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        qualname = graph.qualname_of(node)
        if qualname is not None:
            yield qualname, node


@register
class SharedShardStateRule(Rule):
    """CONC001: worker tasks must own the shard state they index."""

    rule_id = "CONC001"
    severity = Severity.ERROR
    title = "shard state accessed from a task without a provable owner index"
    rationale = (
        "A spawned worker task indexing _queues/_shards/_inflight with "
        "anything but its own owner index (a spawn-time parameter or a "
        "'shard % workers' expression) races its siblings; the "
        "deterministic scheduler will happily replay the corruption."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        project = ctx.project
        if project is None:
            return
        graph = project.graph
        origins = project.task_origins()
        for qualname, node in _module_functions(ctx):
            root = origins.get(qualname)
            if root is None:
                continue
            root_info = graph.functions.get(root)
            info = graph.functions.get(qualname)
            if root_info is None or info is None:
                continue
            if root_info.module != info.module:
                # Cross-module reachability (e.g. a drain task calling
                # into the storage layer) is governed by that layer's
                # own interlocks — CONC002 territory.
                continue
            yield from self._check_function(ctx, node, root)

    def _check_function(
        self, ctx: ModuleContext, node: ast.AST, root: str
    ) -> Iterator[Finding]:
        fragments = ctx.config.conc_workers_fragments
        owned = self._owned_names(node, fragments)
        for child in ast.walk(node):
            if not isinstance(child, ast.Subscript):
                continue
            value = child.value
            if not (
                isinstance(value, ast.Attribute)
                and value.attr in ctx.config.conc_state_names
            ):
                continue
            if self._index_owned(child.slice, owned, fragments):
                continue
            if guard_dominates(
                node, child, lambda test: test_mentions(test, fragments)
            ):
                continue
            yield ctx.finding(
                self,
                child,
                f"task {root.rsplit('.', 1)[-1]!r} indexes shared shard "
                f"state {value.attr!r} without a provable owner index; "
                "pass the owner index as a task parameter or index by "
                "'shard % workers'",
            )

    @staticmethod
    def _owned_names(node: ast.AST, fragments: tuple[str, ...]) -> set[str]:
        """Parameters plus names assigned from owner-index expressions."""
        owned: set[str] = set()
        args = getattr(node, "args", None)
        if args is not None:
            from repro.analysis.callgraph import param_names

            owned.update(param_names(args))
        for _ in range(3):  # tiny fixed point over chained assignments
            before = len(owned)
            for child in ast.walk(node):
                if not (
                    isinstance(child, ast.Assign)
                    and len(child.targets) == 1
                    and isinstance(child.targets[0], ast.Name)
                ):
                    continue
                if SharedShardStateRule._index_owned(
                    child.value, owned, fragments
                ):
                    owned.add(child.targets[0].id)
            if len(owned) == before:
                break
        return owned

    @staticmethod
    def _index_owned(
        index: ast.AST, owned: set[str], fragments: tuple[str, ...]
    ) -> bool:
        if isinstance(index, ast.Name):
            return index.id in owned
        if isinstance(index, ast.BinOp) and isinstance(index.op, ast.Mod):
            return test_mentions(index.right, fragments)
        return False


@register
class LeaseInterlockRule(Rule):
    """CONC002: topology mutations must consult the lease interlock."""

    rule_id = "CONC002"
    severity = Severity.ERROR
    title = "topology mutation without a dominating lease/interlock check"
    rationale = (
        "On a lease-scoped warehouse, swapping the ring, growing the "
        "shard list or close/compact-ing every shard while workers hold "
        "leases corrupts in-flight routing; every such public API must "
        "check live_workers or the drain interlock first."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                item.name: item
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if not ({"worker_lease", "acquire_worker"} & set(methods)):
                continue
            yield from self._check_class(ctx, methods)

    def _check_class(self, ctx: ModuleContext, methods: dict) -> Iterator[Finding]:
        # Direct triggers first, then propagate through private helpers:
        # a call to a sensitive private method is itself a trigger site.
        triggers: dict[str, list[ast.AST]] = {
            name: list(self._direct_triggers(ctx, node))
            for name, node in methods.items()
        }
        for _ in range(_PROPAGATION_DEPTH):
            grown = False
            sensitive_private = {
                name for name, found in triggers.items()
                if found and name.startswith("_")
            }
            for name, node in methods.items():
                for child in ast.walk(node):
                    if not (
                        isinstance(child, ast.Call)
                        and isinstance(child.func, ast.Attribute)
                        and isinstance(child.func.value, ast.Name)
                        and child.func.value.id == "self"
                        and child.func.attr in sensitive_private
                        and child.func.attr != name
                    ):
                        continue
                    if not any(t is child for t in triggers[name]):
                        triggers[name].append(child)
                        grown = True
            if not grown:
                break
        fragments = ctx.config.conc_lease_fragments
        for name in sorted(methods):
            if name.startswith("_"):
                continue  # private helpers are policed at their callers
            node = methods[name]
            for trigger in triggers[name]:
                if guard_dominates(
                    node, trigger, lambda test: test_mentions(test, fragments)
                ):
                    continue
                yield ctx.finding(
                    self,
                    trigger,
                    f"lease-scoped method {name!r} mutates shard topology "
                    "without a dominating interlock check (live_workers / "
                    "drain state); refuse or defer under live leases",
                )
                break  # one finding per method

    def _direct_triggers(self, ctx: ModuleContext, node: ast.AST):
        for child in ast.walk(node):
            if isinstance(child, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    child.targets
                    if isinstance(child, ast.Assign)
                    else [child.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and any(f in target.attr for f in _TOPOLOGY_FRAGMENTS)
                    ):
                        yield child
            elif (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr == "append"
                and isinstance(child.func.value, ast.Attribute)
                and isinstance(child.func.value.value, ast.Name)
                and child.func.value.value.id == "self"
                and child.func.value.attr in ctx.config.conc_state_names
            ):
                yield child
            elif isinstance(child, ast.For):
                yield from self._wholesale_lifecycle(ctx, child)

    @staticmethod
    def _wholesale_lifecycle(ctx: ModuleContext, loop: ast.For):
        """``for shard in self._shards: shard.close()/compact()``."""
        if not (
            isinstance(loop.iter, ast.Attribute)
            and isinstance(loop.iter.value, ast.Name)
            and loop.iter.value.id == "self"
            and loop.iter.attr in ctx.config.conc_state_names
            and isinstance(loop.target, ast.Name)
        ):
            return
        for child in ast.walk(loop):
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in _LIFECYCLE_CALLS
                and isinstance(child.func.value, ast.Name)
                and child.func.value.id == loop.target.id
            ):
                yield loop
                return
