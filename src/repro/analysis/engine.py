"""The analyzer engine: walk files, run every rule, apply suppressions.

The engine is deliberately dumb plumbing — all judgement lives in the
rules.  Each file is read and parsed **exactly once** into a shared
:class:`~repro.analysis.project.SourceModule` cache (a meta-test pins
this); the set of parsed modules becomes one
:class:`~repro.analysis.project.ProjectContext` whose call graph and
taint summaries every whole-program rule shares.  Per module, the
engine hands the shared :class:`~repro.analysis.rules.ModuleContext` to
every registered rule, drops findings suppressed by inline
``# repro-lint: disable=`` comments, and returns a :class:`LintReport`
the CLI/baseline layer consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding, Severity
from repro.analysis.project import ProjectContext, SourceModule
from repro.analysis.rules import LintConfig, ModuleContext, all_rules

__all__ = ["LintReport", "analyze_source", "analyze_paths", "iter_python_files"]


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    #: Files that failed to parse, as (path, error) — reported as
    #: findings too (rule id PARSE) so they can never pass silently.
    parse_errors: list[tuple[str, str]] = field(default_factory=list)
    #: Call-graph / summary-cache counters (``functions``, ``edges``,
    #: ``summaries_cached``, ...) — the CI artifact payload.
    callgraph: dict = field(default_factory=dict)

    def extend(self, other: "LintReport") -> None:
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.files_scanned += other.files_scanned
        self.parse_errors.extend(other.parse_errors)

    def sorted_findings(self) -> list[Finding]:
        return sorted(self.findings, key=lambda finding: finding.sort_key)


def _parse_into(report: LintReport, source: str, path: str) -> SourceModule | None:
    """Parse one file into the shared cache; record PARSE findings."""
    report.files_scanned += 1
    try:
        return SourceModule.parse(source, path)
    except SyntaxError as exc:
        report.parse_errors.append((path, str(exc)))
        report.findings.append(
            Finding(
                rule_id="PARSE",
                severity=Severity.ERROR,
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"file does not parse: {exc.msg}",
            )
        )
        return None


def _run_rules(
    report: LintReport,
    rules: list,
    module: SourceModule,
    config: LintConfig,
    project: ProjectContext,
) -> None:
    ctx = ModuleContext(
        path=module.path,
        source=module.source,
        tree=module.tree,
        annotations=module.annotations,
        config=config,
        project=project,
    )
    for rule in rules:
        for finding in rule.check(ctx):
            if module.annotations.is_disabled(finding.rule_id, finding.line):
                report.suppressed.append(finding)
            else:
                report.findings.append(finding)


def analyze_source(
    source: str, path: str, config: LintConfig | None = None
) -> LintReport:
    """Lint one module given its source text and display path.

    The module is wrapped in a single-file project, so whole-program
    rules still run (module-local resolution only).
    """
    config = config if config is not None else LintConfig()
    report = LintReport()
    module = _parse_into(report, source, path)
    if module is None:
        return report
    project = ProjectContext([module])
    _run_rules(report, all_rules(), module, config, project)
    report.callgraph = project.stats()
    return report


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for path in paths:
        if path.is_dir():
            out.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


def analyze_paths(
    paths: list[Path],
    config: LintConfig | None = None,
    root: Path | None = None,
) -> LintReport:
    """Lint every ``.py`` file under ``paths``.

    Finding paths are rendered posix-relative to ``root`` (default: the
    current working directory) so baselines are stable across checkouts.
    All files are parsed up front into one project; the call graph and
    taint summaries are whole-program even when ``paths`` is a subset.
    """
    config = config if config is not None else LintConfig()
    root = root if root is not None else Path.cwd()
    report = LintReport()
    modules: list[SourceModule] = []
    for file_path in iter_python_files(paths):
        try:
            display = file_path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            display = file_path.as_posix()
        source = file_path.read_text(encoding="utf-8")
        module = _parse_into(report, source, display)
        if module is not None:
            modules.append(module)
    project = ProjectContext(modules)
    rules = all_rules()
    for module in modules:
        _run_rules(report, rules, module, config, project)
    report.callgraph = project.stats()
    return report
