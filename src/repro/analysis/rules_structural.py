"""Protocol/observability structural rules: SER001, OBS001, EXC001.

These rules cut across layers: the wire format (serialisation pairs),
the obs dump contract (metric names must be catalogued or the dump
schema silently grows unreviewed keys), and the failure-semantics
discipline of §7 (protocol services must not swallow arbitrary
exceptions — a typo in a handler should crash a test, not be
misreported as "malformed input").
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import is_dataclass_decorated, literal_env, literal_strings
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import ModuleContext, Rule, register

__all__ = ["SerialisationPairRule", "MetricCatalogueRule", "OverbroadExceptRule"]


@register
class SerialisationPairRule(Rule):
    """SER001: wire dataclasses must pair ``to_bytes``/``from_bytes``."""

    rule_id = "SER001"
    severity = Severity.ERROR
    title = "unpaired to_bytes/from_bytes on a dataclass"
    rationale = (
        "A wire dataclass with only half of the to_bytes/from_bytes pair "
        "cannot round-trip; the chaos/property suites (and any peer) "
        "need both directions."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not is_dataclass_decorated(node):
                continue
            methods = {
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            has_to = "to_bytes" in methods
            has_from = "from_bytes" in methods
            if has_to != has_from:
                present, missing = (
                    ("to_bytes", "from_bytes") if has_to else ("from_bytes", "to_bytes")
                )
                yield ctx.finding(
                    self,
                    node,
                    f"dataclass {node.name} defines {present} but not "
                    f"{missing}; wire types must round-trip",
                )


#: Registry factory methods whose first argument is a full metric name.
_NAME_FACTORIES = {"counter", "gauge", "histogram", "timer"}


@register
class MetricCatalogueRule(Rule):
    """OBS001: metric names created in code must be in the dump schema."""

    rule_id = "OBS001"
    severity = Severity.ERROR
    title = "metric name missing from the obs dump schema"
    rationale = (
        "repro.obs.schema catalogues every metric the canonical dump may "
        "contain; a name minted in code but absent from the catalogue is "
        "an unreviewed schema change consumers cannot anticipate."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        known, prefixes = ctx.config.resolved_metrics()

        def name_ok(name: str) -> bool:
            return name in known or any(
                name.startswith(prefix) for prefix in prefixes
            )

        module_env = literal_env(ctx.tree.body)
        functions = [
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        # Function scopes first (their env shadows the module's), then
        # the module itself so class-body or module-level registrations
        # are still checked; ``claimed`` stops double-reporting.
        scopes: list[tuple[dict, ast.AST]] = [
            (literal_env(ctx.tree.body, function.body), function)
            for function in functions
        ]
        scopes.append((module_env, ctx.tree))
        claimed: set[int] = set()
        for env, scope in scopes:
            for node in ast.walk(scope):
                if scope is ctx.tree and isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue  # handled with its own env
                if not isinstance(node, ast.Call) or id(node) in claimed:
                    continue
                if not isinstance(node.func, ast.Attribute):
                    continue
                yield from self._check_call(ctx, node, env, name_ok, claimed)

    def _check_call(self, ctx, node, env, name_ok, claimed) -> Iterator[Finding]:
        method = node.func.attr
        if method in _NAME_FACTORIES:
            claimed.add(id(node))
            for name, anchor in self._resolve_names(node.args[:1], env):
                if not name_ok(name):
                    yield self._miss(ctx, anchor or node, name)
        elif method == "stats_dict":
            claimed.add(id(node))
            yield from self._check_stats_dict(ctx, node, env, name_ok)

    def _check_stats_dict(self, ctx, node, env, name_ok) -> Iterator[Finding]:
        args = list(node.args)
        keywords = {kw.arg: kw.value for kw in node.keywords if kw.arg}
        prefix_node = args[0] if args else keywords.get("prefix")
        keys_node = args[1] if len(args) > 1 else keywords.get("keys")
        names_node = args[2] if len(args) > 2 else keywords.get("names")
        prefix = self._resolve_prefix(prefix_node, env)
        overridden: set[str] = set()
        if names_node is not None:
            resolved = self._resolve_dict(names_node, env)
            if resolved is not None:
                overridden = set(resolved)
                for key, full_name in resolved.items():
                    if not name_ok(full_name):
                        yield self._miss(ctx, names_node, full_name)
        if prefix is None:
            return  # dynamic prefix: cannot check statically
        keys: list[str] = []
        if keys_node is not None:
            resolved_keys = self._resolve_collection(keys_node, env)
            if resolved_keys is None:
                return  # dynamic keys under a static prefix: skip
            keys = resolved_keys
        for key in keys:
            if key in overridden:
                continue
            full_name = f"{prefix}{key}" if prefix.endswith(".") else f"{prefix}.{key}"
            if not name_ok(full_name):
                yield self._miss(ctx, keys_node or node, full_name)

    def _miss(self, ctx, node, name: str) -> Finding:
        return ctx.finding(
            self,
            node,
            f"metric {name!r} is not in repro.obs.schema; add it to the "
            "catalogue (and docs/OBSERVABILITY.md) or fix the name",
        )

    @staticmethod
    def _resolve_names(nodes, env) -> list[tuple[str, ast.AST | None]]:
        out: list[tuple[str, ast.AST | None]] = []
        for node in nodes:
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                out.append((node.value, node))
            elif isinstance(node, ast.Name) and node.id in env:
                for value in env[node.id]:
                    out.append((value, node))
        return out

    @staticmethod
    def _resolve_prefix(node, env) -> str | None:
        """A static prefix: literal str, resolvable Name, or f-string head.

        An f-string like ``f"client.rc.{rc_id}"`` resolves to its static
        head ``client.rc.`` which is then matched against the catalogue's
        prefix families.
        """
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            values = env.get(node.id)
            if values is not None and len(values) == 1:
                return values[0]
            return None
        if isinstance(node, ast.JoinedStr) and node.values:
            head = node.values[0]
            if isinstance(head, ast.Constant) and isinstance(head.value, str):
                return head.value
        return None

    @staticmethod
    def _resolve_collection(node, env) -> list[str] | None:
        strings = literal_strings(node)
        if strings is not None:
            return strings
        if isinstance(node, ast.Name):
            return env.get(node.id)
        return None

    @staticmethod
    def _resolve_dict(node, env) -> dict[str, str] | None:
        if isinstance(node, ast.Dict):
            out: dict[str, str] = {}
            for key, value in zip(node.keys, node.values):
                if not (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ):
                    return None
                out[key.value] = value.value
            return out
        if isinstance(node, ast.Name):
            # literal_env keeps dict *values*; good enough to check the
            # names, though per-key override tracking is lost.
            values = env.get(node.id)
            if values is not None:
                return {value: value for value in values}
        return None


@register
class OverbroadExceptRule(Rule):
    """EXC001: bare/overbroad excepts in protocol service code."""

    rule_id = "EXC001"
    severity = Severity.WARNING
    title = "bare or overbroad except in a protocol service"
    rationale = (
        "except Exception in mws/, pkg/ or clients/ swallows genuine bugs "
        "(AttributeError, TypeError) and misreports them as protocol "
        "failures; catch ReproError (or a narrower subclass) so defects "
        "crash tests instead of corrupting accounting."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.config.exc_scoped(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield ctx.finding(
                    self,
                    node,
                    "bare except: catches everything including KeyboardInterrupt; "
                    "catch repro.errors.ReproError or narrower",
                )
                continue
            names = []
            targets = (
                node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    names.append(target.id)
                elif isinstance(target, ast.Attribute):
                    names.append(target.attr)
            overbroad = [
                name for name in names if name in ("Exception", "BaseException")
            ]
            if overbroad and not self._reraises(node):
                yield ctx.finding(
                    self,
                    node,
                    f"except {overbroad[0]} swallows non-protocol bugs; catch "
                    "repro.errors.ReproError (or a narrower subclass)",
                )

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        """True when the handler re-raises the caught exception bare."""
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise) and node.exc is None:
                return True
        return False
