"""Rule base class, rule registry and the per-module analysis context.

Every rule has a stable ID (``CT001``, ``RNG001``, ...) that baselines,
suppressions and CI reports key on; IDs are never reused.  Rules are
registered at import time via :func:`register` and looked up through
:func:`all_rules` — the engine instantiates each once per run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.suppress import FileAnnotations

__all__ = [
    "LintConfig",
    "ModuleContext",
    "Rule",
    "register",
    "all_rules",
    "rule_ids",
]


@dataclass
class LintConfig:
    """Scoping knobs for a lint run.

    The defaults encode this repository's layout; fixture tests override
    them to exercise rules in isolation.  Path membership is tested with
    posix-suffix matching, so configs stay valid regardless of where the
    tree is checked out.
    """

    #: Files allowed to touch ambient RNG (``random``/``os.urandom``/...).
    rng_allowed_suffixes: tuple[str, ...] = ("mathlib/rand.py",)
    #: Files allowed to read the wall clock.
    time_allowed_suffixes: tuple[str, ...] = ("sim/clock.py",)
    #: Directories where EXC001 polices bare/overbroad excepts.
    exc_scoped_parts: tuple[str, ...] = ("mws", "pkg", "clients")
    #: Files exempt from the constant-time rules (the comparison
    #: primitive itself lives here).
    ct_allowed_suffixes: tuple[str, ...] = ("hashes/hmac.py",)
    #: Full metric names the obs dump schema declares.  ``None`` loads
    #: the repository catalogue (:mod:`repro.obs.schema`) lazily.
    known_metrics: frozenset[str] | None = None
    #: Name prefixes for per-instance metric families (trailing dot).
    known_metric_prefixes: tuple[str, ...] | None = None
    #: Shard-state container attributes CONC001 polices inside worker
    #: tasks (``self._queues[i]`` etc. must be owner-indexed).
    conc_state_names: tuple[str, ...] = ("_shards", "_queues", "_inflight")
    #: Name fragments identifying the worker-count in ``s % workers``
    #: ownership expressions and guards.
    conc_workers_fragments: tuple[str, ...] = ("workers",)
    #: Name fragments a CONC002 lease/interlock guard must mention.
    conc_lease_fragments: tuple[str, ...] = ("live_workers", "_prev_ring")
    #: Files allowed to hold raw Montgomery-form arithmetic (the REDC
    #: kernel itself).
    back_allowed_suffixes: tuple[str, ...] = ("pairing/montgomery.py",)

    def resolved_metrics(self) -> tuple[frozenset, tuple]:
        """The (names, prefixes) pair, defaulting to the repo catalogue."""
        if self.known_metrics is not None:
            return self.known_metrics, tuple(self.known_metric_prefixes or ())
        from repro.obs.schema import KNOWN_METRIC_PREFIXES, KNOWN_METRICS

        prefixes = self.known_metric_prefixes
        if prefixes is None:
            prefixes = KNOWN_METRIC_PREFIXES
        return KNOWN_METRICS, tuple(prefixes)

    @staticmethod
    def _matches(path: str, suffixes: Iterable[str]) -> bool:
        return any(path.endswith(suffix) for suffix in suffixes)

    def rng_allowed(self, path: str) -> bool:
        return self._matches(path, self.rng_allowed_suffixes)

    def time_allowed(self, path: str) -> bool:
        return self._matches(path, self.time_allowed_suffixes)

    def ct_allowed(self, path: str) -> bool:
        return self._matches(path, self.ct_allowed_suffixes)

    def exc_scoped(self, path: str) -> bool:
        parts = path.split("/")
        return any(part in self.exc_scoped_parts for part in parts[:-1])

    def back_allowed(self, path: str) -> bool:
        return self._matches(path, self.back_allowed_suffixes)


@dataclass
class ModuleContext:
    """Everything a rule needs to analyse one module."""

    #: Display path (posix, relative to the lint root) used in findings.
    path: str
    source: str
    tree: ast.Module
    annotations: FileAnnotations
    config: LintConfig = field(default_factory=LintConfig)
    #: The whole-program context (call graph, taint summaries) shared
    #: by every module in the run; ``None`` only in bare unit tests
    #: that construct a context by hand.
    project: object | None = None
    #: Per-module scratch shared between rules in one run (e.g. the
    #: taint scan CT001 and CT002 both need is built once).
    cache: dict = field(default_factory=dict)

    def finding(
        self,
        rule: "Rule",
        node: ast.AST | None,
        message: str,
        line: int | None = None,
        col: int | None = None,
    ) -> Finding:
        """Build a finding for ``node`` (or an explicit location)."""
        return Finding(
            rule_id=rule.rule_id,
            severity=rule.severity,
            path=self.path,
            line=line if line is not None else getattr(node, "lineno", 1),
            col=col if col is not None else getattr(node, "col_offset", 0),
            message=message,
        )


class Rule:
    """Base class: subclasses set the metadata and implement ``check``."""

    rule_id: str = ""
    severity: Severity = Severity.ERROR
    title: str = ""
    rationale: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding ``cls`` to the global rule registry."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    existing = _REGISTRY.get(cls.rule_id)
    if existing is not None and existing is not cls:
        raise ValueError(f"duplicate rule id {cls.rule_id!r}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> list[Rule]:
    """One instance of every registered rule, in rule-ID order."""
    _load_builtin_rules()
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def rule_ids() -> list[str]:
    """Sorted stable IDs of every registered rule."""
    _load_builtin_rules()
    return sorted(_REGISTRY)


def _load_builtin_rules() -> None:
    """Import the rule modules so their ``@register`` decorators run."""
    from repro.analysis import (  # noqa: F401  (import for side effects)
        rules_backend,
        rules_concurrency,
        rules_determinism,
        rules_hygiene,
        rules_replication,
        rules_structural,
        taint,
    )
