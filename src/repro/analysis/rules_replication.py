"""Replication-discipline rules: REPL001, REPL002.

The replication layer's safety story is an ordering story:

* **REPL001** — inside a WAL-holding replica set, every mutation of a
  member database must flow through the WAL append path.  A direct
  ``replica.db.store_record(...)`` that the WAL never saw diverges the
  copies silently: the next failover promotes a follower that never
  heard about the write.  The sanctioned exceptions (frame application,
  snapshot re-seed) all *mention the WAL* — they read positions from it
  or replay its frames — which is the heuristic the rule keys on.

* **REPL002** — LSN state only ever moves forward.  A persisted LSN
  (``something.applied_lsn = ...``) must be provably monotone: guarded
  by an LSN comparison, computed via ``max(...)``, or derived from a
  fresh WAL append (whose LSNs are monotone by construction).  The WAL
  kernel itself (``storage/wal.py``) owns the counter and is exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.dataflow import guard_dominates, test_mentions
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import ModuleContext, Rule, register

__all__ = ["WalBypassRule", "MonotoneLsnRule"]

#: Method names that mutate a member MessageDatabase.
_MUTATORS = ("store", "store_record", "delete")

#: Name fragment identifying WAL state (``self._wal``, ``wal_record``).
_WAL_FRAGMENTS = ("wal",)

#: The WAL kernel owns the LSN counter; REPL002 does not police it.
_LSN_ALLOWED_SUFFIXES = ("storage/wal.py",)


def _class_holds_wal(node: ast.ClassDef) -> bool:
    """Whether the class assigns a ``self.<...wal...>`` attribute."""
    for child in ast.walk(node):
        if not isinstance(child, ast.Assign):
            continue
        for target in child.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and any(f in target.attr for f in _WAL_FRAGMENTS)
            ):
                return True
    return False


@register
class WalBypassRule(Rule):
    """REPL001: replica-database mutations must go through the WAL."""

    rule_id = "REPL001"
    severity = Severity.ERROR
    title = "replica database mutated without the WAL append path"
    rationale = (
        "A mutation applied to a member database that the shard WAL "
        "never recorded cannot be shipped, replayed or recovered; the "
        "next failover silently loses it.  All mutations must go "
        "through the append-ship-ack path (or a WAL-aware re-seed)."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef) or not _class_holds_wal(node):
                continue
            for method in node.body:
                if not isinstance(
                    method, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if test_mentions(method, _WAL_FRAGMENTS):
                    # The function reads WAL positions or replays WAL
                    # frames — the sanctioned apply/re-seed paths.
                    continue
                for child in ast.walk(method):
                    if (
                        isinstance(child, ast.Call)
                        and isinstance(child.func, ast.Attribute)
                        and child.func.attr in _MUTATORS
                        and isinstance(child.func.value, ast.Attribute)
                        and child.func.value.attr == "db"
                    ):
                        yield ctx.finding(
                            self,
                            child,
                            f"{method.name!r} calls "
                            f".db.{child.func.attr}(...) directly, "
                            "bypassing the WAL append path; route the "
                            "mutation through the replicated write path",
                        )


@register
class MonotoneLsnRule(Rule):
    """REPL002: persisted LSNs must be provably monotone."""

    rule_id = "REPL002"
    severity = Severity.ERROR
    title = "LSN persisted without a monotonicity proof"
    rationale = (
        "An LSN that can move backwards breaks every replication "
        "invariant downstream: catch-up targets, quorum watermarks and "
        "read-your-writes cursors all assume the log position only "
        "advances.  Guard the store with an LSN comparison, use "
        "max(old, new), or derive the value from a fresh WAL append."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if any(ctx.path.endswith(s) for s in _LSN_ALLOWED_SUFFIXES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            wal_derived = self._wal_derived_names(node)
            for child in ast.walk(node):
                if not isinstance(child, ast.Assign):
                    continue
                for target in child.targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and "lsn" in target.attr
                    ):
                        continue
                    if self._monotone(node, child, wal_derived):
                        continue
                    yield ctx.finding(
                        self,
                        child,
                        f"assignment to {target.attr!r} has no "
                        "monotonicity proof (no dominating LSN guard, no "
                        "max(), not derived from a WAL append); a replayed "
                        "or stale frame could move the log position "
                        "backwards",
                    )

    @staticmethod
    def _wal_derived_names(node: ast.AST) -> set[str]:
        """Names assigned from a call on a WAL-ish receiver."""
        derived: set[str] = set()
        for child in ast.walk(node):
            if not (
                isinstance(child, ast.Assign)
                and isinstance(child.value, ast.Call)
                and isinstance(child.value.func, ast.Attribute)
                and test_mentions(child.value.func.value, _WAL_FRAGMENTS)
            ):
                continue
            for target in child.targets:
                if isinstance(target, ast.Name):
                    derived.add(target.id)
        return derived

    def _monotone(
        self, func: ast.AST, assign: ast.Assign, wal_derived: set[str]
    ) -> bool:
        value = assign.value
        if isinstance(value, ast.Constant):
            return True  # initialisation, not an advance
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "max"
        ):
            return True
        if test_mentions(value, _WAL_FRAGMENTS):
            return True  # read straight off the WAL (monotone source)
        root = value
        while isinstance(root, ast.Attribute):
            root = root.value
        if isinstance(root, ast.Name) and root.id in wal_derived:
            return True
        return guard_dominates(
            func, assign, lambda test: test_mentions(test, ("lsn",))
        )
