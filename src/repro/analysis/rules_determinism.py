"""Determinism rules: ambient randomness (RNG001) and wall-clock (TIME001).

PR 1's fault engine and PR 2's byte-identical obs dumps both rest on the
property that a deployment seeded with the same bytes replays the same
trajectory.  A single ``random.random()`` or ``time.time()`` smuggled
into a protocol path silently breaks that, and nothing at runtime will
notice — the run just stops being reproducible.  These rules make the
two funnels (:mod:`repro.mathlib.rand` and :mod:`repro.sim.clock`) the
only doors.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import import_map, resolve_qualified
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import ModuleContext, Rule, register

__all__ = ["AmbientRngRule", "WallClockRule"]

#: Modules whose *import alone* is banned outside the RNG funnel: any
#: use of them yields process-dependent entropy.
_BANNED_RNG_MODULES = {"random", "secrets"}

#: Individual callables banned outside the funnel even though their
#: parent module is fine in general.
_BANNED_RNG_CALLS = {
    "os.urandom": "os.urandom",
    "os.getrandom": "os.getrandom",
    "uuid.uuid1": "uuid.uuid1",
    "uuid.uuid4": "uuid.uuid4",
    "numpy.random": "numpy.random",
}

#: Wall-clock reads banned outside sim/clock.py.  Monotonic performance
#: counters (``time.perf_counter``) stay allowed: they feed benchmark
#: reports, never protocol state, and cannot be made deterministic.
_BANNED_TIME_CALLS = {
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "time.asctime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


@register
class AmbientRngRule(Rule):
    """RNG001: ambient randomness outside :mod:`repro.mathlib.rand`."""

    rule_id = "RNG001"
    severity = Severity.ERROR
    title = "ambient RNG outside mathlib/rand.py"
    rationale = (
        "All randomness must flow through a repro.mathlib.rand.RandomSource "
        "so seeded deployments replay byte-identically; random/secrets/"
        "os.urandom bypass the seedable funnel."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.config.rng_allowed(ctx.path):
            return
        imports = import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _BANNED_RNG_MODULES:
                        yield ctx.finding(
                            self,
                            node,
                            f"import of {alias.name!r} bypasses the seedable "
                            "RandomSource funnel (repro.mathlib.rand)",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module:
                root = node.module.split(".")[0]
                if root in _BANNED_RNG_MODULES:
                    yield ctx.finding(
                        self,
                        node,
                        f"import from {node.module!r} bypasses the seedable "
                        "RandomSource funnel (repro.mathlib.rand)",
                    )
                elif node.module == "os" and any(
                    alias.name in ("urandom", "getrandom") for alias in node.names
                ):
                    yield ctx.finding(
                        self,
                        node,
                        "import of os.urandom bypasses the seedable "
                        "RandomSource funnel (repro.mathlib.rand)",
                    )
            elif isinstance(node, ast.Attribute):
                qualified = resolve_qualified(node, imports)
                if qualified in _BANNED_RNG_CALLS or (
                    qualified is not None
                    and qualified.split(".")[0] in _BANNED_RNG_MODULES
                ):
                    yield ctx.finding(
                        self,
                        node,
                        f"{qualified} is ambient randomness; take a "
                        "repro.mathlib.rand.RandomSource instead",
                    )


@register
class WallClockRule(Rule):
    """TIME001: wall-clock reads outside :mod:`repro.sim.clock`."""

    rule_id = "TIME001"
    severity = Severity.ERROR
    title = "wall-clock read outside sim/clock.py"
    rationale = (
        "Timestamps feed tickets, replay windows and obs dumps; reading "
        "the wall clock directly instead of an injected Clock makes runs "
        "non-reproducible and untestable."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.config.time_allowed(ctx.path):
            return
        imports = import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            # Only the *outermost* chain matters; nested Names inside an
            # Attribute are visited separately and resolve to partials.
            qualified = resolve_qualified(node, imports)
            if qualified in _BANNED_TIME_CALLS:
                yield ctx.finding(
                    self,
                    node,
                    f"{qualified} reads the wall clock; take a "
                    "repro.sim.clock.Clock (now_us) instead",
                )
