"""Finding and severity types shared by every lint rule.

A :class:`Finding` is one diagnostic anchored to a file location.  The
identity used for baseline matching is ``(rule_id, path, line)`` — the
message is carried for humans but deliberately excluded from matching so
wording improvements do not invalidate a committed baseline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Severity", "Finding"]


class Severity(enum.Enum):
    """How bad a finding is; ordering is ERROR > WARNING > INFO."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 2, "warning": 1, "info": 0}[self.value]


@dataclass(frozen=True)
class Finding:
    """One diagnostic emitted by a rule."""

    rule_id: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    @property
    def baseline_key(self) -> tuple[str, str, int]:
        """The identity a baseline entry matches on."""
        return (self.rule_id, self.path, self.line)

    @property
    def sort_key(self) -> tuple:
        """Deterministic report order: file, then line, then rule id.

        The rule id sorts before the column so two rules firing on the
        same statement render in a stable, registration-independent
        order even when their anchor columns differ.
        """
        return (self.path, self.line, self.rule_id, self.col)

    def render(self) -> str:
        """Human one-liner: ``path:line:col: RULE severity: message``."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} {self.severity.value}: {self.message}"
        )

    def to_dict(self) -> dict:
        """JSON-able rendering (stable key order via sort_keys at dump)."""
        return {
            "rule_id": self.rule_id,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        """Parse a finding from its :meth:`to_dict` form."""
        return cls(
            rule_id=data["rule_id"],
            severity=Severity(data["severity"]),
            path=data["path"],
            line=int(data["line"]),
            col=int(data.get("col", 0)),
            message=data.get("message", ""),
        )
