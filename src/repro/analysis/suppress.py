"""Inline lint annotations: ``# repro-lint: disable=...`` / ``nonsecret=...``.

Two annotation forms, both attached to the physical line they appear on:

* ``# repro-lint: disable=CT002`` (or ``disable=CT002,RNG001``) —
  suppress those rule IDs on this line.  A finding suppressed this way
  is counted but not reported.
* ``# repro-lint: nonsecret=tag`` (or ``nonsecret=tag,mac``) — declare
  the named local variables non-secret *for this file*, clearing both
  taint propagation and the CT002 secret-shaped-name heuristic.  Use it
  where a name that looks like MAC material is actually public (a wire
  dispatch byte, a test vector).  Everything after ``--`` or the next
  comment is free-text rationale, kept for humans.

Annotations are parsed textually (not via the tokenizer) so they work on
any line, including continuation lines and lines inside expressions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["FileAnnotations", "parse_annotations"]

_ANNOTATION_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable|nonsecret)\s*=\s*"
    r"(?P<names>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


@dataclass
class FileAnnotations:
    """All annotations found in one file."""

    #: line number -> set of rule IDs disabled on that line.
    disabled: dict[int, set[str]] = field(default_factory=dict)
    #: variable names declared non-secret anywhere in the file, with the
    #: line each declaration appeared on (for reporting).
    nonsecret: dict[str, int] = field(default_factory=dict)

    def is_disabled(self, rule_id: str, line: int) -> bool:
        return rule_id in self.disabled.get(line, ())

    def is_nonsecret(self, name: str) -> bool:
        return name in self.nonsecret


def parse_annotations(source: str) -> FileAnnotations:
    """Extract every ``repro-lint`` annotation from ``source``."""
    annotations = FileAnnotations()
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "repro-lint" not in line:
            continue
        for match in _ANNOTATION_RE.finditer(line):
            names = [n.strip() for n in match.group("names").split(",")]
            if match.group("kind") == "disable":
                annotations.disabled.setdefault(lineno, set()).update(names)
            else:
                for name in names:
                    annotations.nonsecret.setdefault(name, lineno)
    return annotations
