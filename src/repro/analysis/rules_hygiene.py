"""Generic hygiene rules: API001 (mutable defaults), API002 (__all__ drift).

Small, mechanical, and exactly the class of bug that slips through
review in a 14k-line hand-rolled codebase: a shared default list, or an
``__all__`` that silently stops matching the module surface the docs and
star-imports rely on.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import ModuleContext, Rule, register

__all__ = ["MutableDefaultRule", "DunderAllDriftRule"]

_MUTABLE_FACTORIES = {"list", "dict", "set", "bytearray"}


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_FACTORIES and not node.args
    return False


@register
class MutableDefaultRule(Rule):
    """API001: mutable default argument values."""

    rule_id = "API001"
    severity = Severity.WARNING
    title = "mutable default argument"
    rationale = (
        "A mutable default is evaluated once and shared across calls; "
        "state leaks between invocations.  Use None and construct inside."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                if _is_mutable_literal(default):
                    yield ctx.finding(
                        self,
                        default,
                        f"mutable default in {node.name}(); use None and "
                        "construct per call",
                    )


@register
class DunderAllDriftRule(Rule):
    """API002: ``__all__`` out of sync with the module surface."""

    rule_id = "API002"
    severity = Severity.WARNING
    title = "__all__ drift"
    rationale = (
        "__all__ is the documented public surface; a name listed but not "
        "defined breaks star-imports, and a public def/class not listed "
        "is invisible API."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        declared: list[str] | None = None
        declared_node: ast.AST | None = None
        defined: set[str] = set()
        public_defs: dict[str, ast.AST] = {}
        for node in ctx.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        defined.add(target.id)
                        if target.id == "__all__" and isinstance(
                            node.value, (ast.List, ast.Tuple)
                        ):
                            declared_node = node
                            declared = [
                                element.value
                                for element in node.value.elts
                                if isinstance(element, ast.Constant)
                                and isinstance(element.value, str)
                            ]
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                defined.add(node.target.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                defined.add(node.name)
                if not node.name.startswith("_"):
                    public_defs[node.name] = node
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    defined.add(alias.asname or alias.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    defined.add((alias.asname or alias.name).split(".")[0])
        if declared is None:
            return
        for name in declared:
            if name not in defined:
                yield ctx.finding(
                    self,
                    declared_node,
                    f"__all__ lists {name!r} but the module does not define it",
                )
        for name, node in sorted(public_defs.items()):
            if name not in declared:
                yield ctx.finding(
                    self,
                    node,
                    f"public {type(node).__name__.replace('Def', '').lower()} "
                    f"{name!r} missing from __all__",
                )
