"""The ``repro lint`` subcommand: run the analyzer, gate on the baseline.

Exit codes: 0 — clean (every finding baselined or suppressed);
1 — at least one non-baselined finding; 2 — operational error (bad
baseline file, unreadable path).

``--json`` emits a machine-readable report (the CI artifact); the
baseline workflow is ``--baseline FILE`` to apply and
``--write-baseline`` to (re)generate the file from the current findings.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.errors import DecodeError

from repro.analysis.baseline import load_baseline, render_baseline, split_findings
from repro.analysis.engine import analyze_paths
from repro.analysis.rules import LintConfig, rule_ids

__all__ = ["add_lint_arguments", "run_lint"]

REPORT_VERSION = 1


def add_lint_arguments(parser) -> None:
    """Attach the ``lint`` options to an argparse (sub)parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the machine-readable JSON report on stdout",
    )
    parser.add_argument(
        "--baseline",
        default="lint_baseline.json",
        help="baseline file of grandfathered findings "
        "(default: lint_baseline.json; missing file = empty baseline)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="also write the JSON report to this path",
    )


def _build_report(report, new, baselined) -> dict:
    return {
        "version": REPORT_VERSION,
        "rule_ids": rule_ids(),
        "files_scanned": report.files_scanned,
        "counts": {
            "new": len(new),
            "baselined": len(baselined),
            "suppressed": len(report.suppressed),
        },
        "findings": [finding.to_dict() for finding in new],
        "baselined": [finding.to_dict() for finding in baselined],
        "suppressed": [finding.to_dict() for finding in report.suppressed],
    }


def run_lint(args) -> int:
    """Execute the lint run described by parsed ``args``."""
    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"lint: no such path: {', '.join(map(str, missing))}", file=sys.stderr)
        return 2
    report = analyze_paths(paths, LintConfig())
    findings = report.sorted_findings()

    baseline_path = Path(args.baseline)
    if args.write_baseline:
        baseline_path.write_text(render_baseline(findings), encoding="utf-8")
        print(f"wrote {len(findings)} finding(s) to {baseline_path}")
        return 0

    baseline_keys: set = set()
    if baseline_path.exists():
        try:
            baseline_keys = load_baseline(baseline_path.read_text(encoding="utf-8"))
        except DecodeError as exc:
            print(f"lint: {exc}", file=sys.stderr)
            return 2
    new, baselined = split_findings(findings, baseline_keys)

    payload = _build_report(report, new, baselined)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
    if args.as_json:
        sys.stdout.write(text)
    else:
        for finding in new:
            print(finding.render())
        print(
            f"lint: {len(new)} finding(s) ({len(baselined)} baselined, "
            f"{len(report.suppressed)} suppressed) across "
            f"{report.files_scanned} file(s)"
        )
    return 1 if new else 0
