"""The ``repro lint`` subcommand: run the analyzer, gate on the baseline.

Exit codes: 0 — clean (every finding baselined or suppressed);
1 — at least one non-baselined finding; 2 — operational error (bad
baseline file, unreadable path).

``--json`` emits a machine-readable report (the CI artifact); the
baseline workflow is ``--baseline FILE`` to apply and
``--write-baseline`` to (re)generate the file from the current findings.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.errors import DecodeError

from repro.analysis.baseline import load_baseline, render_baseline, split_findings
from repro.analysis.engine import analyze_paths
from repro.analysis.rules import LintConfig, rule_ids

__all__ = ["add_lint_arguments", "run_lint"]

#: v2: report gains the ``callgraph`` stats section and findings sort
#: by (path, line, rule_id, col) — byte-stable ``--json`` output.
REPORT_VERSION = 2


def add_lint_arguments(parser) -> None:
    """Attach the ``lint`` options to an argparse (sub)parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the machine-readable JSON report on stdout",
    )
    parser.add_argument(
        "--baseline",
        default="lint_baseline.json",
        help="baseline file of grandfathered findings "
        "(default: lint_baseline.json; missing file = empty baseline)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="also write the JSON report to this path",
    )
    parser.add_argument(
        "--changed-only",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help="report findings only in files changed vs REF (default "
        "HEAD) plus untracked files; the analysis itself stays "
        "whole-program so cross-function findings keep their traces",
    )


def _changed_files(ref: str) -> set[str] | None:
    """Posix cwd-relative paths changed vs ``ref`` plus untracked files.

    Returns ``None`` when git fails (not a repository, bad ref) — the
    caller reports the operational error and exits 2.
    """
    try:
        toplevel = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
        diff = subprocess.run(
            ["git", "diff", "--name-only", ref],
            capture_output=True, text=True, check=True,
        ).stdout
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True, text=True, check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError):
        return None
    cwd = Path.cwd().resolve()
    out: set[str] = set()
    for name in (diff + untracked).splitlines():
        if not name:
            continue
        # git paths are toplevel-relative; findings are cwd-relative.
        absolute = (Path(toplevel) / name).resolve()
        try:
            out.add(absolute.relative_to(cwd).as_posix())
        except ValueError:
            continue
    return out


def _build_report(report, new, baselined) -> dict:
    return {
        "version": REPORT_VERSION,
        "rule_ids": rule_ids(),
        "files_scanned": report.files_scanned,
        "callgraph": report.callgraph,
        "counts": {
            "new": len(new),
            "baselined": len(baselined),
            "suppressed": len(report.suppressed),
        },
        "findings": [finding.to_dict() for finding in new],
        "baselined": [finding.to_dict() for finding in baselined],
        "suppressed": [finding.to_dict() for finding in report.suppressed],
    }


def run_lint(args) -> int:
    """Execute the lint run described by parsed ``args``."""
    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"lint: no such path: {', '.join(map(str, missing))}", file=sys.stderr)
        return 2
    report = analyze_paths(paths, LintConfig())
    findings = report.sorted_findings()

    changed_ref = getattr(args, "changed_only", None)
    if changed_ref is not None:
        changed = _changed_files(changed_ref)
        if changed is None:
            print(
                f"lint: --changed-only {changed_ref}: git failed "
                "(not a repository, or bad ref)",
                file=sys.stderr,
            )
            return 2
        findings = [f for f in findings if f.path in changed]
        report.suppressed = [
            f for f in report.suppressed if f.path in changed
        ]

    baseline_path = Path(args.baseline)
    if args.write_baseline:
        baseline_path.write_text(render_baseline(findings), encoding="utf-8")
        print(f"wrote {len(findings)} finding(s) to {baseline_path}")
        return 0

    baseline_keys: set = set()
    if baseline_path.exists():
        try:
            baseline_keys = load_baseline(baseline_path.read_text(encoding="utf-8"))
        except DecodeError as exc:
            print(f"lint: {exc}", file=sys.stderr)
            return 2
    new, baselined = split_findings(findings, baseline_keys)

    payload = _build_report(report, new, baselined)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
    if args.as_json:
        sys.stdout.write(text)
    else:
        for finding in new:
            print(finding.render())
        print(
            f"lint: {len(new)} finding(s) ({len(baselined)} baselined, "
            f"{len(report.suppressed)} suppressed) across "
            f"{report.files_scanned} file(s)"
        )
    return 1 if new else 0
