"""Binary writer/reader with length-prefixed fields.

All multi-byte integers are big-endian.  Variable-length fields carry a
4-byte length prefix; strings are UTF-8.  The reader validates every
length against the remaining buffer and raises
:class:`repro.errors.DecodeError` on any truncation or trailing bytes,
so malformed network input cannot produce a half-parsed message.
"""

from __future__ import annotations

from repro.errors import DecodeError, EncodingError

__all__ = ["Writer", "Reader"]

_U64_MAX = 2**64 - 1
_U32_MAX = 2**32 - 1


class Writer:
    """Append-only builder for canonical message encodings."""

    def __init__(self) -> None:
        self._chunks: list[bytes] = []

    def u8(self, value: int) -> "Writer":
        if not 0 <= value <= 0xFF:
            raise EncodingError(f"u8 out of range: {value}")
        self._chunks.append(bytes([value]))
        return self

    def u32(self, value: int) -> "Writer":
        if not 0 <= value <= _U32_MAX:
            raise EncodingError(f"u32 out of range: {value}")
        self._chunks.append(value.to_bytes(4, "big"))
        return self

    def u64(self, value: int) -> "Writer":
        if not 0 <= value <= _U64_MAX:
            raise EncodingError(f"u64 out of range: {value}")
        self._chunks.append(value.to_bytes(8, "big"))
        return self

    def bool(self, value: bool) -> "Writer":
        return self.u8(1 if value else 0)

    def blob(self, value: bytes) -> "Writer":
        if len(value) > _U32_MAX:
            raise EncodingError(f"blob too long: {len(value)} bytes")
        self._chunks.append(len(value).to_bytes(4, "big"))
        self._chunks.append(bytes(value))
        return self

    def text(self, value: str) -> "Writer":
        return self.blob(value.encode("utf-8"))

    def bigint(self, value: int) -> "Writer":
        if value < 0:
            raise EncodingError(f"bigint must be non-negative, got {value}")
        raw = value.to_bytes((value.bit_length() + 7) // 8 or 1, "big")
        return self.blob(raw)

    def blob_list(self, values: list[bytes]) -> "Writer":
        self.u32(len(values))
        for value in values:
            self.blob(value)
        return self

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)


class Reader:
    """Sequential decoder over a byte buffer with strict bounds checks."""

    def __init__(self, data: bytes) -> None:
        self._data = bytes(data)
        self._offset = 0

    def _take(self, count: int) -> bytes:
        if count < 0 or self._offset + count > len(self._data):
            raise DecodeError(
                f"truncated message: need {count} bytes at offset {self._offset}, "
                f"have {len(self._data) - self._offset}"
            )
        chunk = self._data[self._offset : self._offset + count]
        self._offset += count
        return chunk

    def u8(self) -> int:
        return self._take(1)[0]

    def u32(self) -> int:
        return int.from_bytes(self._take(4), "big")

    def u64(self) -> int:
        return int.from_bytes(self._take(8), "big")

    def bool(self) -> bool:
        value = self.u8()
        if value not in (0, 1):
            raise DecodeError(f"invalid boolean byte {value}")
        return value == 1

    def blob(self) -> bytes:
        length = self.u32()
        return self._take(length)

    def text(self) -> str:
        raw = self.blob()
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise DecodeError(f"invalid UTF-8 text field: {exc}") from exc

    def bigint(self) -> int:
        return int.from_bytes(self.blob(), "big")

    def blob_list(self) -> list[bytes]:
        count = self.u32()
        # Each entry needs at least its 4-byte length prefix; reject
        # counts that could not possibly fit to avoid huge allocations.
        if count * 4 > len(self._data) - self._offset:
            raise DecodeError(f"blob list count {count} exceeds remaining buffer")
        return [self.blob() for _ in range(count)]

    def finish(self) -> None:
        """Assert the whole buffer was consumed."""
        remaining = len(self._data) - self._offset
        if remaining:
            raise DecodeError(f"{remaining} trailing bytes after message")

    @property
    def remaining(self) -> int:
        return len(self._data) - self._offset
