"""Typed protocol messages for the three phases of the paper's protocol.

Each dataclass mirrors a line of the paper's §V.D notation:

* :class:`DepositRequest`    — ``rP || C || (A || Nonce) || ID_SD || T || MAC``
* :class:`RetrieveRequest`   — ``ID_RC || PubK_RC || E(HashPassword, ID_RC || T || N)``
* :class:`StoredMessage` / :class:`RetrieveResponse`
                              — ``rP || C || (AID || Nonce) || N`` plus the Token
* :class:`Ticket`            — ``E(SecK_MWS-PKG, AID-A pairs || SecK_RC-PKG ...)``
  (this class is the *plaintext* structure; the MWS token generator
  seals it)
* :class:`Token`             — ``E(PubK_RC, SecK_RC-PKG || Ticket)`` (plaintext
  structure, sealed by the token generator under the RC's public key)
* :class:`Authenticator`     — ``E(SecK_RC-PKG, ID_RC || T)`` (plaintext structure)
* :class:`KeyRequest` / :class:`KeyResponse`
                              — the ``AID || Nonce -> sI`` exchange with the PKG

``mac_payload``/``auth_payload`` helpers return the exact byte strings
MACs and authenticators are computed over, so the signer and the
verifier cannot drift apart.

Key-lifecycle epochs (docs/REVOCATION.md) ride as **optional trailing
fields**, the same interop pattern the batch envelope introduced: a
message at epoch 0 serialises to the exact pre-epoch byte string (the
field is simply not emitted), and parsers read the suffix only when
``reader.remaining`` says it is present.  A pre-epoch peer therefore
round-trips unchanged, and an epoch-0 encoding is indistinguishable
from a legacy one — which is precisely the interop rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.wire.encoding import Reader, Writer

__all__ = [
    "DepositRequest",
    "DepositResponse",
    "RetrieveRequest",
    "RetrieveResponse",
    "StoredMessage",
    "Ticket",
    "Token",
    "Authenticator",
    "PkgAuthRequest",
    "PkgAuthResponse",
    "KeyRequest",
    "KeyResponse",
    "BatchEntry",
    "BatchDepositRequest",
    "BatchDepositResponse",
    "BatchItemStatus",
    "BatchDepositReceipt",
    "PagedRetrieveRequest",
    "PagedRetrieveResponse",
    "BATCH_ITEM_OK",
    "BATCH_ITEM_EMPTY_ATTRIBUTE",
    "BATCH_ITEM_EMPTY_CIPHERTEXT",
    "BATCH_ITEM_ENVELOPE_REJECTED",
    "BATCH_ITEM_EPOCH_REJECTED",
]


# ---------------------------------------------------------------------------
# Phase 1: SD -> MWS
# ---------------------------------------------------------------------------


@dataclass
class DepositRequest:
    """A smart device depositing one encrypted message.

    ``ciphertext`` is the serialised hybrid ciphertext (it embeds ``rP``;
    the paper writes ``rP || C`` separately, we keep them in the one
    container the IBE layer produced).  ``attribute`` and ``nonce`` are
    stored by the MWS for routing; the MWS cannot decrypt with them.
    """

    device_id: str
    attribute: str
    nonce: bytes
    ciphertext: bytes
    timestamp_us: int
    mac: bytes = b""
    #: Optional identity-based signature over :meth:`mac_payload` —
    #: the §VIII future-work alternative to the shared-key MAC.
    signature: bytes = b""
    #: Key-lifecycle epoch the ciphertext was encrypted under; 0 is the
    #: legacy single-epoch encoding and is not emitted on the wire.
    epoch: int = 0

    def mac_payload(self) -> bytes:
        """The exact bytes the paper MACs: rP || C || (A || Nonce) || ID_SD || T.

        A non-zero epoch extends the covered bytes (so a relay cannot
        re-stamp a deposit into another epoch); epoch 0 covers the
        legacy payload exactly, keeping pre-epoch MACs verifiable.
        """
        writer = (
            Writer()
            .blob(self.ciphertext)
            .text(self.attribute)
            .blob(self.nonce)
            .text(self.device_id)
            .u64(self.timestamp_us)
        )
        if self.epoch:
            writer.u32(self.epoch)
        return writer.getvalue()

    def to_bytes(self) -> bytes:
        """Serialise to the canonical byte encoding."""
        writer = (
            Writer()
            .text(self.device_id)
            .text(self.attribute)
            .blob(self.nonce)
            .blob(self.ciphertext)
            .u64(self.timestamp_us)
            .blob(self.mac)
            .blob(self.signature)
        )
        if self.epoch:
            writer.u32(self.epoch)
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "DepositRequest":
        """Parse an instance from its canonical byte encoding."""
        reader = Reader(data)
        message = cls(
            device_id=reader.text(),
            attribute=reader.text(),
            nonce=reader.blob(),
            ciphertext=reader.blob(),
            timestamp_us=reader.u64(),
            mac=reader.blob(),
            signature=reader.blob(),
        )
        if reader.remaining:
            message.epoch = reader.u32()
        reader.finish()
        return message


@dataclass
class DepositResponse:
    """MWS acknowledgement: accepted + message id, or a rejection reason."""

    accepted: bool
    message_id: int = 0
    error: str = ""

    def to_bytes(self) -> bytes:
        """Serialise to the canonical byte encoding."""
        return (
            Writer()
            .bool(self.accepted)
            .u64(self.message_id)
            .text(self.error)
            .getvalue()
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "DepositResponse":
        """Parse an instance from its canonical byte encoding."""
        reader = Reader(data)
        message = cls(
            accepted=reader.bool(),
            message_id=reader.u64(),
            error=reader.text(),
        )
        reader.finish()
        return message


# ---------------------------------------------------------------------------
# Phase 2: MWS <-> RC
# ---------------------------------------------------------------------------


@dataclass
class RetrieveRequest:
    """RC authentication + retrieval request.

    ``auth_blob`` is ``E(HashPassword, ID_RC || T || N)`` — the gatekeeper
    decrypts it with the stored password hash and checks the inner id.
    """

    rc_id: str
    rc_public_key: bytes
    auth_blob: bytes
    #: Only messages deposited at or after this time are returned —
    #: lets an RC poll incrementally instead of re-downloading history.
    since_us: int = 0
    #: Alternative credential: a serialised signed identity assertion
    #: (repro.policy.assertions).  When present, ``auth_blob`` may be
    #: empty and the gatekeeper validates the assertion instead.
    assertion: bytes = b""

    def to_bytes(self) -> bytes:
        """Serialise to the canonical byte encoding."""
        return (
            Writer()
            .text(self.rc_id)
            .blob(self.rc_public_key)
            .blob(self.auth_blob)
            .u64(self.since_us)
            .blob(self.assertion)
            .getvalue()
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "RetrieveRequest":
        """Parse an instance from its canonical byte encoding."""
        reader = Reader(data)
        message = cls(
            rc_id=reader.text(),
            rc_public_key=reader.blob(),
            auth_blob=reader.blob(),
            since_us=reader.u64(),
            assertion=reader.blob(),
        )
        reader.finish()
        return message

    @staticmethod
    def auth_payload(rc_id: str, timestamp_us: int, nonce: bytes) -> bytes:
        """Plaintext of the auth blob: ``ID_RC || T || N``."""
        return Writer().text(rc_id).u64(timestamp_us).blob(nonce).getvalue()

    @staticmethod
    def parse_auth_payload(data: bytes) -> tuple[str, int, bytes]:
        reader = Reader(data)
        rc_id = reader.text()
        timestamp_us = reader.u64()
        nonce = reader.blob()
        reader.finish()
        return rc_id, timestamp_us, nonce


@dataclass
class StoredMessage:
    """One warehoused message as delivered to an RC.

    The RC sees the opaque ``attribute_id`` (AID), never the attribute
    string — the paper hides attributes from RCs so revocation never
    requires re-keying smart devices.
    """

    message_id: int
    attribute_id: int
    nonce: bytes
    ciphertext: bytes
    deposited_at_us: int
    #: Epoch whose identity the *outermost* ciphertext layer is
    #: encrypted under (re-encryption advances it); 0 = legacy.
    epoch: int = 0

    def to_bytes(self) -> bytes:
        """Serialise to the canonical byte encoding."""
        writer = (
            Writer()
            .u64(self.message_id)
            .u64(self.attribute_id)
            .blob(self.nonce)
            .blob(self.ciphertext)
            .u64(self.deposited_at_us)
        )
        if self.epoch:
            writer.u32(self.epoch)
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "StoredMessage":
        """Parse an instance from its canonical byte encoding."""
        reader = Reader(data)
        message = cls(
            message_id=reader.u64(),
            attribute_id=reader.u64(),
            nonce=reader.blob(),
            ciphertext=reader.blob(),
            deposited_at_us=reader.u64(),
        )
        if reader.remaining:
            message.epoch = reader.u32()
        reader.finish()
        return message


@dataclass
class RetrieveResponse:
    """Messages for the RC plus the sealed token for the PKG round-trip."""

    token: bytes
    rc_nonce: bytes
    messages: list[StoredMessage] = field(default_factory=list)

    def to_bytes(self) -> bytes:
        """Serialise to the canonical byte encoding."""
        writer = Writer().blob(self.token).blob(self.rc_nonce)
        writer.blob_list([m.to_bytes() for m in self.messages])
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "RetrieveResponse":
        """Parse an instance from its canonical byte encoding."""
        reader = Reader(data)
        token = reader.blob()
        rc_nonce = reader.blob()
        raw_messages = reader.blob_list()
        reader.finish()
        return cls(
            token=token,
            rc_nonce=rc_nonce,
            messages=[StoredMessage.from_bytes(raw) for raw in raw_messages],
        )


# ---------------------------------------------------------------------------
# Phase 3: RC <-> PKG (ticket, token, authenticator)
# ---------------------------------------------------------------------------


@dataclass
class Ticket:
    """Plaintext ticket contents, sealed under ``SecK_MWS-PKG``.

    Contains the AID -> attribute mapping (so the PKG can resolve the
    opaque ids the RC presents), the RC-PKG session key, the RC identity
    it was issued to, and an expiry for freshness.
    """

    rc_id: str
    session_key: bytes
    attribute_map: dict[int, str]
    issued_at_us: int
    lifetime_us: int
    #: Key-lifecycle epoch the ticket was issued at (0 = legacy) —
    #: the PKG refuses extraction requests for *later* epochs, so a
    #: pre-revocation ticket cannot reach post-revocation key material.
    epoch: int = 0
    #: Policy-DB version the attribute map was snapshotted at: the
    #: version-stamped read proving the ticket reflects one coherent,
    #: untorn policy state.
    policy_version: int = 0

    def to_bytes(self) -> bytes:
        """Serialise to the canonical byte encoding."""
        writer = (
            Writer()
            .text(self.rc_id)
            .blob(self.session_key)
            .u64(self.issued_at_us)
            .u64(self.lifetime_us)
            .u32(len(self.attribute_map))
        )
        for attribute_id in sorted(self.attribute_map):
            writer.u64(attribute_id).text(self.attribute_map[attribute_id])
        if self.epoch or self.policy_version:
            writer.u32(self.epoch).u64(self.policy_version)
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "Ticket":
        """Parse an instance from its canonical byte encoding."""
        reader = Reader(data)
        rc_id = reader.text()
        session_key = reader.blob()
        issued_at_us = reader.u64()
        lifetime_us = reader.u64()
        count = reader.u32()
        attribute_map = {}
        for _ in range(count):
            attribute_id = reader.u64()
            attribute_map[attribute_id] = reader.text()
        epoch = reader.u32() if reader.remaining else 0
        policy_version = reader.u64() if reader.remaining else 0
        reader.finish()
        return cls(
            rc_id=rc_id,
            session_key=session_key,
            attribute_map=attribute_map,
            issued_at_us=issued_at_us,
            lifetime_us=lifetime_us,
            epoch=epoch,
            policy_version=policy_version,
        )


@dataclass
class Token:
    """Plaintext token contents, sealed under the RC's public key.

    ``session_key`` duplicates the ticket's session key so the RC learns
    it; ``sealed_ticket`` stays opaque to the RC (it cannot read the
    attribute strings inside).
    """

    session_key: bytes
    sealed_ticket: bytes

    def to_bytes(self) -> bytes:
        """Serialise to the canonical byte encoding."""
        return Writer().blob(self.session_key).blob(self.sealed_ticket).getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "Token":
        """Parse an instance from its canonical byte encoding."""
        reader = Reader(data)
        token = cls(session_key=reader.blob(), sealed_ticket=reader.blob())
        reader.finish()
        return token


@dataclass
class Authenticator:
    """Plaintext authenticator ``ID_RC || T``, sealed under the session key."""

    rc_id: str
    timestamp_us: int

    def to_bytes(self) -> bytes:
        """Serialise to the canonical byte encoding."""
        return Writer().text(self.rc_id).u64(self.timestamp_us).getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "Authenticator":
        """Parse an instance from its canonical byte encoding."""
        reader = Reader(data)
        message = cls(rc_id=reader.text(), timestamp_us=reader.u64())
        reader.finish()
        return message


@dataclass
class PkgAuthRequest:
    """``ID_RC || Ticket || Authenticator`` sent to the PKG."""

    rc_id: str
    sealed_ticket: bytes
    sealed_authenticator: bytes

    def to_bytes(self) -> bytes:
        """Serialise to the canonical byte encoding."""
        return (
            Writer()
            .text(self.rc_id)
            .blob(self.sealed_ticket)
            .blob(self.sealed_authenticator)
            .getvalue()
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "PkgAuthRequest":
        """Parse an instance from its canonical byte encoding."""
        reader = Reader(data)
        message = cls(
            rc_id=reader.text(),
            sealed_ticket=reader.blob(),
            sealed_authenticator=reader.blob(),
        )
        reader.finish()
        return message


@dataclass
class PkgAuthResponse:
    """PKG confirmation; ``session_id`` names the established session."""

    ok: bool
    session_id: bytes = b""
    error: str = ""

    def to_bytes(self) -> bytes:
        """Serialise to the canonical byte encoding."""
        return Writer().bool(self.ok).blob(self.session_id).text(self.error).getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "PkgAuthResponse":
        """Parse an instance from its canonical byte encoding."""
        reader = Reader(data)
        message = cls(ok=reader.bool(), session_id=reader.blob(), error=reader.text())
        reader.finish()
        return message


@dataclass
class KeyRequest:
    """``AID || Nonce`` — asks the PKG to extract ``sI`` for H1(A || Nonce)."""

    session_id: bytes
    attribute_id: int
    nonce: bytes
    #: Epoch to extract for (0 = legacy identity encoding).  The PKG
    #: enforces ``epoch <= session epoch`` and the revocation list.
    epoch: int = 0

    def to_bytes(self) -> bytes:
        """Serialise to the canonical byte encoding."""
        writer = (
            Writer()
            .blob(self.session_id)
            .u64(self.attribute_id)
            .blob(self.nonce)
        )
        if self.epoch:
            writer.u32(self.epoch)
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "KeyRequest":
        """Parse an instance from its canonical byte encoding."""
        reader = Reader(data)
        message = cls(
            session_id=reader.blob(),
            attribute_id=reader.u64(),
            nonce=reader.blob(),
        )
        if reader.remaining:
            message.epoch = reader.u32()
        reader.finish()
        return message


@dataclass
class KeyResponse:
    """The extracted private key point ``sI`` (sealed under the session key
    by the PKG service before transmission), or an error."""

    ok: bool
    sealed_key: bytes = b""
    error: str = ""

    def to_bytes(self) -> bytes:
        """Serialise to the canonical byte encoding."""
        return Writer().bool(self.ok).blob(self.sealed_key).text(self.error).getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "KeyResponse":
        """Parse an instance from its canonical byte encoding."""
        reader = Reader(data)
        message = cls(ok=reader.bool(), sealed_key=reader.blob(), error=reader.text())
        reader.finish()
        return message


# ---------------------------------------------------------------------------
# Batched deposits (device-side buffering: N readings, one MAC, one trip)
# ---------------------------------------------------------------------------


@dataclass
class BatchEntry:
    """One message inside a batch: its attribute, nonce and ciphertext."""

    attribute: str
    nonce: bytes
    ciphertext: bytes
    #: Key-lifecycle epoch the entry was encrypted under (0 = legacy,
    #: not emitted — a pre-epoch batch round-trips byte-identically).
    epoch: int = 0

    def to_bytes(self) -> bytes:
        """Serialise to the canonical byte encoding."""
        writer = (
            Writer()
            .text(self.attribute)
            .blob(self.nonce)
            .blob(self.ciphertext)
        )
        if self.epoch:
            writer.u32(self.epoch)
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "BatchEntry":
        """Parse an instance from its canonical byte encoding."""
        reader = Reader(data)
        entry = cls(
            attribute=reader.text(),
            nonce=reader.blob(),
            ciphertext=reader.blob(),
        )
        if reader.remaining:
            entry.epoch = reader.u32()
        reader.finish()
        return entry


@dataclass
class BatchDepositRequest:
    """A buffered batch of deposits under a single MAC.

    Devices that report on a schedule can amortise the MAC and the
    network round-trip over many readings; each entry still has its own
    attribute, nonce and independently encrypted ciphertext, so
    confidentiality and revocation granularity are unchanged.
    """

    device_id: str
    timestamp_us: int
    entries: list = field(default_factory=list)
    mac: bytes = b""

    def mac_payload(self) -> bytes:
        """The exact bytes covered by the MAC."""
        writer = Writer().text(self.device_id).u64(self.timestamp_us)
        writer.blob_list([entry.to_bytes() for entry in self.entries])
        return writer.getvalue()

    def to_bytes(self) -> bytes:
        """Serialise to the canonical byte encoding."""
        writer = Writer().text(self.device_id).u64(self.timestamp_us)
        writer.blob_list([entry.to_bytes() for entry in self.entries])
        writer.blob(self.mac)
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "BatchDepositRequest":
        """Parse an instance from its canonical byte encoding."""
        reader = Reader(data)
        device_id = reader.text()
        timestamp_us = reader.u64()
        entries = [BatchEntry.from_bytes(raw) for raw in reader.blob_list()]
        mac = reader.blob()
        reader.finish()
        return cls(
            device_id=device_id,
            timestamp_us=timestamp_us,
            entries=entries,
            mac=mac,
        )


@dataclass
class BatchDepositResponse:
    """All-or-nothing acknowledgement of a batch."""

    accepted: bool
    message_ids: list = field(default_factory=list)
    error: str = ""

    def to_bytes(self) -> bytes:
        """Serialise to the canonical byte encoding."""
        writer = Writer().bool(self.accepted)
        writer.u32(len(self.message_ids))
        for message_id in self.message_ids:
            writer.u64(message_id)
        writer.text(self.error)
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "BatchDepositResponse":
        """Parse an instance from its canonical byte encoding."""
        reader = Reader(data)
        accepted = reader.bool()
        count = reader.u32()
        message_ids = [reader.u64() for _ in range(count)]
        error = reader.text()
        reader.finish()
        return cls(accepted=accepted, message_ids=message_ids, error=error)


# ---------------------------------------------------------------------------
# Per-item batch pipeline (sharded warehouse: partial acceptance + paging)
# ---------------------------------------------------------------------------

#: Per-item status codes carried in :class:`BatchItemStatus`.  ``OK``
#: means the entry was stored; the rest name the reason the individual
#: entry was rejected while the remainder of the batch committed.
BATCH_ITEM_OK = 0
BATCH_ITEM_EMPTY_ATTRIBUTE = 1
BATCH_ITEM_EMPTY_CIPHERTEXT = 2
#: The whole envelope was rejected (bad MAC, stale timestamp, replay):
#: every item carries this code and nothing was stored.
BATCH_ITEM_ENVELOPE_REJECTED = 3
#: The entry's epoch stamp was refused: either from the future (ahead
#: of the warehouse's current epoch) or below the retirement threshold.
#: Siblings with valid stamps still commit — how a revocation landing
#: mid-batch surfaces per item instead of failing the envelope.
BATCH_ITEM_EPOCH_REJECTED = 4


@dataclass
class BatchItemStatus:
    """Outcome of one entry in a batched deposit.

    ``shard`` is the warehouse shard the message landed on (0 for an
    unsharded deployment) — surfaced so fleet tooling can audit the
    spread without another round-trip.
    """

    status: int
    message_id: int = 0
    shard: int = 0
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status == BATCH_ITEM_OK

    def to_bytes(self) -> bytes:
        """Serialise to the canonical byte encoding."""
        return (
            Writer()
            .u8(self.status)
            .u64(self.message_id)
            .u32(self.shard)
            .text(self.error)
            .getvalue()
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "BatchItemStatus":
        """Parse an instance from its canonical byte encoding."""
        reader = Reader(data)
        status = cls(
            status=reader.u8(),
            message_id=reader.u64(),
            shard=reader.u32(),
            error=reader.text(),
        )
        reader.finish()
        return status


@dataclass
class BatchDepositReceipt:
    """Per-item acknowledgement of a batched deposit.

    Unlike the all-or-nothing :class:`BatchDepositResponse`, a receipt
    reports each entry's fate independently: a structurally invalid
    entry is rejected on its own while valid siblings commit.  Envelope
    authentication stays all-or-nothing — a bad MAC rejects every item
    with :data:`BATCH_ITEM_ENVELOPE_REJECTED` and ``error`` set.
    """

    statuses: list = field(default_factory=list)
    error: str = ""

    @property
    def accepted_count(self) -> int:
        return sum(1 for status in self.statuses if status.ok)

    @property
    def accepted(self) -> bool:
        """Whether the envelope itself was accepted (items may still fail)."""
        return not self.error

    def message_ids(self) -> list[int]:
        """Ids of the stored entries, in batch order."""
        return [status.message_id for status in self.statuses if status.ok]

    def to_bytes(self) -> bytes:
        """Serialise to the canonical byte encoding."""
        writer = Writer()
        writer.blob_list([status.to_bytes() for status in self.statuses])
        writer.text(self.error)
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "BatchDepositReceipt":
        """Parse an instance from its canonical byte encoding."""
        reader = Reader(data)
        statuses = [BatchItemStatus.from_bytes(raw) for raw in reader.blob_list()]
        error = reader.text()
        reader.finish()
        return cls(statuses=statuses, error=error)


@dataclass
class PagedRetrieveRequest:
    """A chunked retrieval: one page of at most ``page_size`` messages.

    Carries the same credential surface as :class:`RetrieveRequest`
    (password blob or IdP assertion) plus a cursor — the highest message
    id already received; the MWS returns messages with strictly greater
    ids, oldest first, so an RC pages through an arbitrarily large
    backlog in bounded responses.
    """

    rc_id: str
    rc_public_key: bytes
    auth_blob: bytes
    page_size: int
    cursor: int = 0
    since_us: int = 0
    assertion: bytes = b""

    def to_retrieve_request(self) -> RetrieveRequest:
        """The equivalent single-shot request (gatekeeper reuse)."""
        return RetrieveRequest(
            rc_id=self.rc_id,
            rc_public_key=self.rc_public_key,
            auth_blob=self.auth_blob,
            since_us=self.since_us,
            assertion=self.assertion,
        )

    def to_bytes(self) -> bytes:
        """Serialise to the canonical byte encoding."""
        return (
            Writer()
            .text(self.rc_id)
            .blob(self.rc_public_key)
            .blob(self.auth_blob)
            .u32(self.page_size)
            .u64(self.cursor)
            .u64(self.since_us)
            .blob(self.assertion)
            .getvalue()
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "PagedRetrieveRequest":
        """Parse an instance from its canonical byte encoding."""
        reader = Reader(data)
        message = cls(
            rc_id=reader.text(),
            rc_public_key=reader.blob(),
            auth_blob=reader.blob(),
            page_size=reader.u32(),
            cursor=reader.u64(),
            since_us=reader.u64(),
            assertion=reader.blob(),
        )
        reader.finish()
        return message


@dataclass
class PagedRetrieveResponse:
    """One page of messages plus the paging state.

    ``next_cursor`` is the highest message id in this page (echoed back
    as the next request's ``cursor``); ``has_more`` tells the RC whether
    another page is waiting.  Every page carries a fresh token so the
    RC can start PKG key extraction before the backlog is drained.
    """

    token: bytes
    rc_nonce: bytes
    next_cursor: int = 0
    has_more: bool = False
    messages: list = field(default_factory=list)

    def to_bytes(self) -> bytes:
        """Serialise to the canonical byte encoding."""
        writer = (
            Writer()
            .blob(self.token)
            .blob(self.rc_nonce)
            .u64(self.next_cursor)
            .bool(self.has_more)
        )
        writer.blob_list([m.to_bytes() for m in self.messages])
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "PagedRetrieveResponse":
        """Parse an instance from its canonical byte encoding."""
        reader = Reader(data)
        token = reader.blob()
        rc_nonce = reader.blob()
        next_cursor = reader.u64()
        has_more = reader.bool()
        raw_messages = reader.blob_list()
        reader.finish()
        return cls(
            token=token,
            rc_nonce=rc_nonce,
            next_cursor=next_cursor,
            has_more=has_more,
            messages=[StoredMessage.from_bytes(raw) for raw in raw_messages],
        )
