"""Wire format: a small TLV-style codec plus the typed protocol messages.

The paper's prototype serialised Perl structures over raw sockets; here
every protocol unit (deposit, retrieve, ticket, token, authenticator,
key request) is a dataclass with a canonical byte encoding.  Canonical
matters: MACs are computed over these bytes, so encoding ambiguity would
translate directly into forgery room.
"""

from repro.wire.encoding import Reader, Writer
from repro.wire.messages import (
    Authenticator,
    DepositRequest,
    DepositResponse,
    KeyRequest,
    KeyResponse,
    PkgAuthRequest,
    PkgAuthResponse,
    RetrieveRequest,
    RetrieveResponse,
    StoredMessage,
    Ticket,
    Token,
)

__all__ = [
    "Writer",
    "Reader",
    "DepositRequest",
    "DepositResponse",
    "RetrieveRequest",
    "RetrieveResponse",
    "StoredMessage",
    "Ticket",
    "Token",
    "Authenticator",
    "PkgAuthRequest",
    "PkgAuthResponse",
    "KeyRequest",
    "KeyResponse",
]
