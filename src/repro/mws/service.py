"""The Message Warehousing Service facade: Fig. 3 wired together.

Owns the four databases (message, policy, user, device-key), the SDA,
MMS, TG and Gatekeeper components, and exposes two byte-level handlers
matching the paper's two servers (MWS-SD and MWS-Client) plus an
administrative API (register/revoke devices and RCs, grant/revoke
attributes).

The MWS never holds IBE key material: it can verify device MACs and
route by attribute but cannot decrypt a single message — requirement i.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProtocolError, ReproError
from repro.mathlib.rand import RandomSource, SystemRandomSource
from repro.mws.authenticator import SmartDeviceAuthenticator
from repro.mws.gatekeeper import Gatekeeper
from repro.mws.mms import MessageManagementSystem
from repro.mws.token_gen import TokenGenerator
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import NULL_TRACER
from repro.pki.rsa import RsaPublicKey
from repro.sim.clock import Clock, SimClock
from repro.storage.engine import RecordStore
from repro.storage.keystore import DeviceKeyStore
from repro.storage.message_db import MessageDatabase
from repro.storage.policy_db import PolicyDatabase
from repro.storage.sharding import ShardedMessageDatabase
from repro.storage.user_db import UserDatabase
from repro.wire.messages import (
    BATCH_ITEM_EMPTY_ATTRIBUTE,
    BATCH_ITEM_EMPTY_CIPHERTEXT,
    BATCH_ITEM_ENVELOPE_REJECTED,
    BATCH_ITEM_EPOCH_REJECTED,
    BATCH_ITEM_OK,
    BatchDepositReceipt,
    BatchDepositRequest,
    BatchDepositResponse,
    BatchItemStatus,
    DepositRequest,
    DepositResponse,
    PagedRetrieveRequest,
    PagedRetrieveResponse,
    RetrieveRequest,
    RetrieveResponse,
)

__all__ = ["MwsConfig", "MessageWarehousingService", "BATCH_SIZE_BOUNDS"]

#: Fixed bucket edges for batch-size and page-size histograms (counts of
#: messages, powers of two up to the protocol's practical envelope cap).
BATCH_SIZE_BOUNDS: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


@dataclass
class MwsConfig:
    """Deployment knobs for the MWS."""

    #: Cipher for RC auth blobs (paper: DES).
    gatekeeper_cipher: str = "DES"
    #: Cipher for token/ticket sealing.
    token_cipher: str = "AES-128"
    #: Freshness window for deposits and RC auth.
    max_skew_us: int = 300 * 1_000_000
    #: Ticket lifetime handed to the token generator.
    ticket_lifetime_us: int = 3600 * 1_000_000
    #: Optional stores; None means in-memory.
    message_store: RecordStore | None = None
    policy_store: RecordStore | None = None
    user_store: RecordStore | None = None
    keystore_store: RecordStore | None = None
    #: Number of message-warehouse shards.  1 keeps the classic single
    #: ``MessageDatabase``; >1 routes deposits across that many backends
    #: by consistent hash of the attribute (docs/SCALING.md).
    message_shards: int = 1
    #: Explicit per-shard backends (overrides ``message_shards``; None
    #: entries mean in-memory).  Ignored when sharding is off.
    message_shard_stores: list | None = None
    #: Copies kept per shard.  1 keeps the classic unreplicated layout;
    #: >1 turns every shard into a WAL-shipped ReplicaSet with quorum
    #: acks and leader failover (docs/REPLICATION.md).
    message_replicas: int = 1
    #: Acks required per mutation when replicated; None means majority.
    replication_quorum: int | None = None
    alerts: list = field(default_factory=list)
    #: Optional IbeVerifier: deposits may carry identity-based signatures
    #: (§VIII future work); with ``require_device_signature`` they must.
    device_signature_verifier: object | None = None
    require_device_signature: bool = False
    #: Optional AssertionValidator: the gatekeeper additionally accepts
    #: IdP-signed assertions as RC credentials (§VIII "SAML").
    assertion_validator: object | None = None
    #: Optional :class:`repro.policy.revocation.RevocationRegistry`
    #: shared with the PKG.  When set, deposits are validated against
    #: the epoch window, retrievals filter revoked grants, and tickets
    #: carry the epoch + policy version they were issued under.
    revocation: object | None = None


class MessageWarehousingService:
    """The complete MWS with admin, deposit and retrieve surfaces."""

    def __init__(
        self,
        mws_pkg_key: bytes,
        clock: Clock | None = None,
        rng: RandomSource | None = None,
        config: MwsConfig | None = None,
        policy_engine=None,
        registry: MetricsRegistry | None = None,
        tracer=None,
    ) -> None:
        self._clock = clock if clock is not None else SimClock()
        self._rng = rng if rng is not None else SystemRandomSource()
        self._config = config if config is not None else MwsConfig()
        #: One registry backs every component counter; a standalone MWS
        #: gets its own so the admin surface works without a deployment.
        self.registry = (
            registry if registry is not None else MetricsRegistry(self._clock)
        )
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._malformed = self.registry.counter("mws.deposits.malformed")
        self._batch_size = self.registry.histogram(
            "mws.deposits.batch_size", bounds=BATCH_SIZE_BOUNDS
        )
        self._batch_items_rejected = self.registry.counter(
            "mws.deposits.batch_items_rejected"
        )
        replicas = self._config.message_replicas
        quorum = self._config.replication_quorum
        if self._config.message_shard_stores is not None:
            self.message_db = ShardedMessageDatabase(
                self._config.message_shard_stores,
                registry=self.registry,
                replicas=replicas,
                quorum=quorum,
            )
        elif self._config.message_shards > 1 or replicas > 1:
            # Replication without explicit sharding still routes through
            # the shard layer (a one-shard ring) so failover, watermarks
            # and the lease surface are uniform.
            self.message_db = ShardedMessageDatabase(
                self._config.message_shards,
                registry=self.registry,
                replicas=replicas,
                quorum=quorum,
            )
        else:
            self.message_db = MessageDatabase(self._config.message_store)
        self.policy_db = PolicyDatabase(self._config.policy_store)
        self.user_db = UserDatabase(self._config.user_store)
        self.device_keys = DeviceKeyStore(self._config.keystore_store, rng=self._rng)
        self.alerts: list[tuple[str, str]] = self._config.alerts
        self.sda = SmartDeviceAuthenticator(
            self.device_keys,
            self._clock,
            max_skew_us=self._config.max_skew_us,
            alert_sink=lambda device, reason: self.alerts.append((device, reason)),
            signature_verifier=self._config.device_signature_verifier,
            require_signature=self._config.require_device_signature,
            registry=self.registry,
            tracer=self.tracer,
        )
        self.revocation = self._config.revocation
        #: Optional ReencryptionEngine, attached by the deployment once
        #: the public parameters exist (:meth:`attach_reencryptor`).
        self.reencryptor = None
        self.mms = MessageManagementSystem(
            self.message_db,
            self.policy_db,
            policy_engine=policy_engine,
            registry=self.registry,
            revocation=self.revocation,
        )
        self.token_generator = TokenGenerator(
            mws_pkg_key,
            self._clock,
            self._rng,
            cipher_name=self._config.token_cipher,
            ticket_lifetime_us=self._config.ticket_lifetime_us,
            registry=self.registry,
            tracer=self.tracer,
        )
        self.gatekeeper = Gatekeeper(
            self.user_db,
            self._clock,
            cipher_name=self._config.gatekeeper_cipher,
            max_skew_us=self._config.max_skew_us,
            assertion_validator=self._config.assertion_validator,
            registry=self.registry,
            tracer=self.tracer,
        )

    @property
    def clock(self) -> Clock:
        return self._clock

    @property
    def config(self) -> MwsConfig:
        return self._config

    # -- administrative API (the paper's "administrative operations") -----

    def register_device(self, device_id: str) -> bytes:
        """Register an SD; returns the shared MAC key for provisioning."""
        return self.device_keys.register(device_id)

    def revoke_device(self, device_id: str) -> None:
        self.device_keys.revoke(device_id)

    def register_rc(self, rc_id: str, password: str, display_name: str = "") -> None:
        self.user_db.register(rc_id, password, display_name)

    def grant(self, rc_id: str, attribute: str) -> int:
        """Authorize an RC for an attribute; returns the opaque AID."""
        return self.policy_db.grant(rc_id, attribute)

    def revoke(self, rc_id: str, attribute: str) -> None:
        self.policy_db.revoke(rc_id, attribute)

    def attach_reencryptor(self, engine) -> None:
        """Wire the lazy re-encryption engine into the serve path."""
        self.reencryptor = engine
        self.mms.reencryptor = engine

    # -- epoch admission ----------------------------------------------------

    def _epoch_problem(self, epoch: int, view) -> str | None:
        """Why a deposit stamped ``epoch`` is inadmissible (None = fine).

        ``view`` is one atomic revocation snapshot taken per request, so
        every item in a batch is judged against the same policy state
        even if a revocation lands mid-batch.  Stale-but-live epochs
        (``min_deposit_epoch <= epoch <= view.epoch``) are accepted —
        that is the in-flight window that lets traffic built just before
        a roll land instead of bouncing.
        """
        if view is None:
            return None
        if epoch > view.epoch:
            return f"epoch {epoch} is ahead of warehouse epoch {view.epoch}"
        if epoch < view.min_deposit_epoch:
            return (
                f"epoch {epoch} retired "
                f"(threshold {view.min_deposit_epoch})"
            )
        return None

    def _revocation_view(self):
        return self.revocation.view() if self.revocation is not None else None

    def _count_epoch_rejection(self) -> None:
        if (
            self.revocation is not None
            and self.revocation.deposits_rejected is not None
        ):
            self.revocation.deposits_rejected.inc()

    # -- deposit path (MWS-SD server) --------------------------------------

    def handle_deposit(self, request: DepositRequest) -> DepositResponse:
        """SDA-check then store; mirrors the paper's accept/discard flow.

        A retransmit of an already-committed deposit (same device id,
        same MAC) replays the original acknowledgement instead of
        storing twice or rejecting — see
        :meth:`SmartDeviceAuthenticator.cached_response`.
        """
        try:
            cached = self.sda.cached_response(request.device_id, request.mac)
        except ProtocolError as exc:
            return DepositResponse(accepted=False, error=str(exc))
        if cached is not None:
            return DepositResponse.from_bytes(cached)
        try:
            self.sda.authenticate(request)
        except ProtocolError as exc:
            return DepositResponse(accepted=False, error=str(exc))
        problem = self._epoch_problem(request.epoch, self._revocation_view())
        if problem is not None:
            self._count_epoch_rejection()
            return DepositResponse(accepted=False, error=problem)
        record = self.message_db.store(
            device_id=request.device_id,
            attribute=request.attribute,
            nonce=request.nonce,
            ciphertext=request.ciphertext,
            deposited_at_us=self._clock.now_us(),
            epoch=request.epoch,
        )
        response = DepositResponse(accepted=True, message_id=record.message_id)
        self.sda.record_response(request.mac, response.to_bytes())
        return response

    def handle_batch_deposit(self, request: BatchDepositRequest) -> BatchDepositResponse:
        """All-or-nothing batch ingest under a single MAC.

        Retransmitted batches replay the committed acknowledgement
        exactly like single deposits.
        """
        try:
            cached = self.sda.cached_response(request.device_id, request.mac)
        except ProtocolError as exc:
            return BatchDepositResponse(accepted=False, error=str(exc))
        if cached is not None:
            return BatchDepositResponse.from_bytes(cached)
        try:
            self.sda.authenticate_batch(request)
        except ProtocolError as exc:
            return BatchDepositResponse(accepted=False, error=str(exc))
        view = self._revocation_view()
        for entry in request.entries:
            # All-or-nothing surface: one inadmissible epoch voids the
            # whole batch (the per-item pipeline is handle_deposit_many).
            problem = self._epoch_problem(entry.epoch, view)
            if problem is not None:
                self._count_epoch_rejection()
                return BatchDepositResponse(accepted=False, error=problem)
        message_ids = []
        now_us = self._clock.now_us()
        for entry in request.entries:
            record = self.message_db.store(
                device_id=request.device_id,
                attribute=entry.attribute,
                nonce=entry.nonce,
                ciphertext=entry.ciphertext,
                deposited_at_us=now_us,
                epoch=entry.epoch,
            )
            message_ids.append(record.message_id)
        response = BatchDepositResponse(accepted=True, message_ids=message_ids)
        self.sda.record_response(request.mac, response.to_bytes())
        return response

    def _rejected_receipt(
        self, request: BatchDepositRequest, error: str
    ) -> BatchDepositReceipt:
        """Every item stamped ENVELOPE_REJECTED; nothing was stored."""
        statuses = [
            BatchItemStatus(BATCH_ITEM_ENVELOPE_REJECTED, error=error)
            for _ in request.entries
        ]
        return BatchDepositReceipt(statuses=statuses, error=error)

    def handle_deposit_many(self, request: BatchDepositRequest) -> BatchDepositReceipt:
        """Per-item batch ingest: one MAC check, independent item fates.

        Envelope authentication (MAC, freshness, replay) is amortised —
        verified once for the whole batch — and stays all-or-nothing: a
        bad envelope stores nothing and stamps every item
        ENVELOPE_REJECTED.  Past that gate each entry commits or fails
        on its own, so one malformed reading does not void its
        siblings.  Retransmits replay the committed receipt.
        """
        try:
            cached = self.sda.cached_response(request.device_id, request.mac)
        except ProtocolError as exc:
            return self._rejected_receipt(request, str(exc))
        if cached is not None:
            return BatchDepositReceipt.from_bytes(cached)
        try:
            self.sda.authenticate_batch(request)
        except ProtocolError as exc:
            return self._rejected_receipt(request, str(exc))
        sharded = isinstance(self.message_db, ShardedMessageDatabase)
        now_us = self._clock.now_us()
        # One view for the whole batch: a revocation landing mid-batch
        # changes the *next* request's fate, never splits this one.
        view = self._revocation_view()
        statuses = []
        for entry in request.entries:
            if not entry.attribute:
                self._batch_items_rejected.inc()
                statuses.append(
                    BatchItemStatus(
                        BATCH_ITEM_EMPTY_ATTRIBUTE, error="empty attribute"
                    )
                )
                continue
            if not entry.ciphertext:
                self._batch_items_rejected.inc()
                statuses.append(
                    BatchItemStatus(
                        BATCH_ITEM_EMPTY_CIPHERTEXT, error="empty ciphertext"
                    )
                )
                continue
            problem = self._epoch_problem(entry.epoch, view)
            if problem is not None:
                self._batch_items_rejected.inc()
                self._count_epoch_rejection()
                statuses.append(
                    BatchItemStatus(BATCH_ITEM_EPOCH_REJECTED, error=problem)
                )
                continue
            record = self.message_db.store(
                device_id=request.device_id,
                attribute=entry.attribute,
                nonce=entry.nonce,
                ciphertext=entry.ciphertext,
                deposited_at_us=now_us,
                epoch=entry.epoch,
            )
            shard = self.message_db.shard_for(entry.attribute) if sharded else 0
            statuses.append(
                BatchItemStatus(
                    BATCH_ITEM_OK, message_id=record.message_id, shard=shard
                )
            )
        self._batch_size.observe(len(request.entries))
        receipt = BatchDepositReceipt(statuses=statuses)
        self.sda.record_response(request.mac, receipt.to_bytes())
        return receipt

    # -- retrieve path (MWS-Client server) -----------------------------------

    def handle_retrieve(self, request: RetrieveRequest) -> RetrieveResponse:
        """Gatekeeper-auth, MMS-fetch, TG-issue — the full §V.D MWS-RC phase.

        Raises the specific protocol error on failure (the transport
        layer maps it to an error response).
        """
        rc_nonce = self.gatekeeper.authenticate(request)
        view = self._revocation_view()
        attribute_map, messages = self.mms.retrieve_for(
            request.rc_id, self._clock.now_us(), since_us=request.since_us
        )
        rc_public_key = RsaPublicKey.from_bytes(request.rc_public_key)
        token = self.token_generator.issue(
            request.rc_id,
            rc_public_key,
            attribute_map,
            epoch=view.epoch if view is not None else 0,
            policy_version=self.policy_db.version,
        )
        return RetrieveResponse(token=token, rc_nonce=rc_nonce, messages=messages)

    def handle_retrieve_page(
        self, request: PagedRetrieveRequest
    ) -> PagedRetrieveResponse:
        """One bounded page of the RC's backlog (gatekeeper-auth per page).

        The credential surface is identical to :meth:`handle_retrieve`
        — each page carries a fresh auth blob, so the gatekeeper's
        nonce replay cache never trips on a paging loop.
        """
        rc_nonce = self.gatekeeper.authenticate(request.to_retrieve_request())
        limit = max(1, request.page_size)
        view = self._revocation_view()
        attribute_map, messages, next_cursor, has_more = self.mms.retrieve_page(
            request.rc_id,
            self._clock.now_us(),
            since_us=request.since_us,
            cursor=request.cursor,
            limit=limit,
        )
        rc_public_key = RsaPublicKey.from_bytes(request.rc_public_key)
        token = self.token_generator.issue(
            request.rc_id,
            rc_public_key,
            attribute_map,
            epoch=view.epoch if view is not None else 0,
            policy_version=self.policy_db.version,
        )
        return PagedRetrieveResponse(
            token=token,
            rc_nonce=rc_nonce,
            next_cursor=next_cursor,
            has_more=has_more,
            messages=messages,
        )

    # -- byte-level network handlers ------------------------------------------

    def deposit_handler(self, payload: bytes) -> bytes:
        """Network endpoint: bytes in, bytes out (MWS-SD server)."""
        try:
            request = DepositRequest.from_bytes(payload)
        except ReproError as exc:
            self._malformed.inc()
            return DepositResponse(accepted=False, error=f"malformed: {exc}").to_bytes()
        return self.handle_deposit(request).to_bytes()

    def batch_deposit_handler(self, payload: bytes) -> bytes:
        """Network endpoint for batched deposits."""
        try:
            request = BatchDepositRequest.from_bytes(payload)
        except ReproError as exc:
            self._malformed.inc()
            return BatchDepositResponse(
                accepted=False, error=f"malformed: {exc}"
            ).to_bytes()
        return self.handle_batch_deposit(request).to_bytes()

    def deposit_many_handler(self, payload: bytes) -> bytes:
        """Network endpoint for the per-item batch pipeline."""
        try:
            request = BatchDepositRequest.from_bytes(payload)
        except ReproError as exc:
            self._malformed.inc()
            return BatchDepositReceipt(error=f"malformed: {exc}").to_bytes()
        return self.handle_deposit_many(request).to_bytes()

    def retrieve_handler(self, payload: bytes) -> bytes:
        """Network endpoint: bytes in, bytes out (MWS-Client server).

        Errors are returned as an empty response with the token field
        carrying a tagged error string — the RC client surfaces them as
        exceptions.
        """
        try:
            request = RetrieveRequest.from_bytes(payload)
            response = self.handle_retrieve(request)
        except ReproError as exc:
            return b"ERR:" + type(exc).__name__.encode() + b":" + str(exc).encode()
        return b"OK:" + response.to_bytes()

    def retrieve_page_handler(self, payload: bytes) -> bytes:
        """Network endpoint for paged retrieval (same OK:/ERR: framing)."""
        try:
            request = PagedRetrieveRequest.from_bytes(payload)
            response = self.handle_retrieve_page(request)
        except ReproError as exc:
            return b"ERR:" + type(exc).__name__.encode() + b":" + str(exc).encode()
        return b"OK:" + response.to_bytes()

    def close(self) -> None:
        """Release underlying resources."""
        self.message_db.close()
        self.policy_db.close()
        self.user_db.close()
        self.device_keys.close()
