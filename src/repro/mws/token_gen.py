"""The Token Generator (TG) of Fig. 3.

"This component generates a ticket, which a RC uses to authenticate
with PKG. ... The Token Generator component of MWS generates a token
which is a cipher text of a ticket and a session key SecK_RC-PKG ...
encrypted with the public key PubK_RC of RC."

The ticket is sealed under the MWS–PKG shared secret; the RC can carry
it but not open it, which is how attribute strings stay hidden from RCs
(only AIDs travel in the clear).  The token wraps the session key and
the sealed ticket under the RC's public key via RSA hybrid sealing.
"""

from __future__ import annotations

from repro.core.conventions import SESSION_KEY_LENGTH
from repro.mathlib.rand import RandomSource
from repro.obs.tracing import NULL_TRACER
from repro.pki.rsa import RsaPublicKey, hybrid_seal
from repro.sim.clock import Clock
from repro.symciph.cipher import SymmetricScheme
from repro.wire.messages import Ticket, Token

__all__ = ["TokenGenerator"]


class TokenGenerator:
    """Issues (sealed token, session key) pairs for authenticated RCs."""

    DEFAULT_TICKET_LIFETIME_US = 3600 * 1_000_000  # 1 hour

    def __init__(
        self,
        mws_pkg_key: bytes,
        clock: Clock,
        rng: RandomSource,
        cipher_name: str = "AES-128",
        ticket_lifetime_us: int | None = None,
        registry=None,
        tracer=None,
    ) -> None:
        self._mws_pkg_key = mws_pkg_key
        self._clock = clock
        self._rng = rng
        self._cipher_name = cipher_name
        self._ticket_lifetime_us = (
            ticket_lifetime_us
            if ticket_lifetime_us is not None
            else self.DEFAULT_TICKET_LIFETIME_US
        )
        self._tracer = tracer if tracer is not None else NULL_TRACER
        if registry is not None:
            self.stats = registry.stats_dict("mws.tg", ["tokens_issued"])
        else:
            self.stats = {"tokens_issued": 0}

    def issue(
        self,
        rc_id: str,
        rc_public_key: RsaPublicKey,
        attribute_map: dict[int, str],
        epoch: int = 0,
        policy_version: int = 0,
    ) -> bytes:
        """Build the sealed token for ``rc_id``.

        Generates a fresh RC–PKG session key, embeds it (with the AID ->
        attribute mapping) in a ticket sealed under the MWS–PKG secret,
        then seals ``session_key || ticket`` under the RC's public key.
        Returns the sealed token bytes ready for transmission.

        ``epoch`` and ``policy_version`` are the version-stamped read
        the MWS took at the top of the retrieval: the ticket proves
        exactly which key epoch and Policy-DB state it was issued
        under, and the PKG bounds extraction requests by the former.
        """
        with self._tracer.span("tg.issue_token") as span:
            span.annotate("attributes", len(attribute_map))
            session_key = self._rng.randbytes(SESSION_KEY_LENGTH)
            ticket = Ticket(
                rc_id=rc_id,
                session_key=session_key,
                attribute_map=dict(attribute_map),
                issued_at_us=self._clock.now_us(),
                lifetime_us=self._ticket_lifetime_us,
                epoch=epoch,
                policy_version=policy_version,
            )
            ticket_scheme = SymmetricScheme(
                "AES-256", self._ticket_key(), mac=True, rng=self._rng
            )
            sealed_ticket = ticket_scheme.seal(ticket.to_bytes())
            token = Token(session_key=session_key, sealed_ticket=sealed_ticket)
            sealed_token = hybrid_seal(
                rc_public_key, token.to_bytes(), self._cipher_name, self._rng
            )
            self.stats["tokens_issued"] += 1
            return sealed_token

    def _ticket_key(self) -> bytes:
        """The MWS-PKG shared key, sized for AES-256 by construction."""
        return self._mws_pkg_key
