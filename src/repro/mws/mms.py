"""The Message Management System (MMS): Fig. 3's core component.

"It is responsible for maintaining and retrieving messages from the
message database depending on identity-attribute mapping maintained in
the policy database."

The MMS is the only component that sees both databases.  For a
retrieval it resolves the RC's granted attributes from the PD, pulls
matching ciphertexts from the MD, and rewrites each message's attribute
string into the RC-specific opaque attribute id before anything leaves
the MWS — the RC must never see attribute strings (paper §V.A).
An optional :class:`repro.policy.evaluator.PolicyEngine` adds the
XACML-style rule layer the paper lists as future work.
"""

from __future__ import annotations

from repro.errors import AccessDeniedError, RevokedError
from repro.storage.message_db import MessageDatabase
from repro.storage.policy_db import PolicyDatabase
from repro.wire.messages import StoredMessage

__all__ = ["MessageManagementSystem", "PAGE_SIZE_BOUNDS"]

#: Bucket edges for the page-size histogram (message counts per page).
PAGE_SIZE_BOUNDS: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


class MessageManagementSystem:
    """Policy-mediated access to the message database."""

    def __init__(
        self,
        message_db: MessageDatabase,
        policy_db: PolicyDatabase,
        policy_engine=None,
        registry=None,
        revocation=None,
    ) -> None:
        self._message_db = message_db
        self._policy_db = policy_db
        self._policy_engine = policy_engine
        #: Optional :class:`repro.policy.revocation.RevocationRegistry`;
        #: when set, revoked (RC, attribute) pairs are filtered out of
        #: every retrieval before anything leaves the MWS.
        self._revocation = revocation
        #: Optional :class:`repro.mws.reencrypt.ReencryptionEngine`
        #: (attached by the service) — the lazy re-keying hook every
        #: served record passes through.
        self.reencryptor = None
        if registry is not None:
            self.stats = registry.stats_dict(
                "mws.mms",
                ["retrievals", "messages_served", "policy_denials", "pages_served"],
            )
            self._page_size = registry.histogram(
                "mws.mms.page_size", bounds=PAGE_SIZE_BOUNDS
            )
        else:
            self.stats = {
                "retrievals": 0,
                "messages_served": 0,
                "policy_denials": 0,
                "pages_served": 0,
            }
            self._page_size = None

    @property
    def policy_db(self) -> PolicyDatabase:
        return self._policy_db

    @property
    def message_db(self) -> MessageDatabase:
        return self._message_db

    def attributes_for(self, rc_id: str, now_us: int) -> dict[int, str]:
        """The RC's AID -> attribute map after policy filtering.

        Revocation is applied first, against one atomic view: a
        wholesale-revoked RC is refused outright, attribute-scoped
        revocations silently drop the affected grants (the RC simply
        stops seeing those messages — it never learns which attribute
        string was involved).
        """
        granted = self._policy_db.attributes_for(rc_id)
        if self._revocation is not None:
            view = self._revocation.view()
            revoked = view.revoked_attributes(rc_id)
            if revoked is None:
                if self._revocation.retrieval_filtered is not None:
                    self._revocation.retrieval_filtered.inc(len(granted))
                raise RevokedError(f"{rc_id!r} is revoked")
            if revoked:
                kept = {
                    attribute_id: attribute
                    for attribute_id, attribute in granted.items()
                    if attribute not in revoked
                }
                if self._revocation.retrieval_filtered is not None:
                    self._revocation.retrieval_filtered.inc(
                        len(granted) - len(kept)
                    )
                granted = kept
                if not granted:
                    raise RevokedError(
                        f"every grant for {rc_id!r} is revoked"
                    )
        if self._policy_engine is None:
            return granted
        allowed = {}
        for attribute_id, attribute in granted.items():
            if self._policy_engine.is_permitted(rc_id, attribute, now_us):
                allowed[attribute_id] = attribute
            else:
                self.stats["policy_denials"] += 1
        if not allowed:
            raise AccessDeniedError(
                f"policy engine denied every grant for {rc_id!r}"
            )
        return allowed

    def _to_stored(
        self, record, attribute_to_id: dict[str, int]
    ) -> StoredMessage:
        """Record -> wire message, re-keying lazily on the way out.

        With a re-encryption engine attached, any record whose
        outermost layer lags the current epoch is wrapped (and
        persisted) *before* it is served — an RC only ever sees
        current-epoch ciphertexts once an epoch rolls.
        """
        if self.reencryptor is not None:
            record = self.reencryptor.maybe_reencrypt(record)
        return StoredMessage(
            message_id=record.message_id,
            attribute_id=attribute_to_id[record.attribute],
            nonce=record.nonce,
            ciphertext=record.ciphertext,
            deposited_at_us=record.deposited_at_us,
            epoch=record.epoch,
        )

    def retrieve_for(
        self,
        rc_id: str,
        now_us: int,
        since_us: int = 0,
    ) -> tuple[dict[int, str], list[StoredMessage]]:
        """Resolve grants and fetch matching messages.

        Returns ``(attribute_map, messages)`` where every message's
        attribute string has been replaced by the RC's AID.  ``since_us``
        lets an RC poll incrementally.
        """
        attribute_map = self.attributes_for(rc_id, now_us)
        attribute_to_id = {attr: aid for aid, attr in attribute_map.items()}
        records = self._message_db.by_attributes(list(attribute_to_id))
        messages = [
            self._to_stored(record, attribute_to_id)
            for record in records
            if record.deposited_at_us >= since_us
        ]
        self.stats["retrievals"] += 1
        self.stats["messages_served"] += len(messages)
        return attribute_map, messages

    def retrieve_page(
        self,
        rc_id: str,
        now_us: int,
        since_us: int = 0,
        cursor: int = 0,
        limit: int = 100,
    ) -> tuple[dict[int, str], list[StoredMessage], int, bool]:
        """One bounded page of the RC's backlog, oldest first.

        ``cursor`` is the highest message id the RC has already
        received; only strictly newer messages are returned, at most
        ``limit`` of them.  Returns ``(attribute_map, messages,
        next_cursor, has_more)`` — the RC echoes ``next_cursor`` into
        its next request until ``has_more`` goes False.  Against a
        sharded warehouse the underlying :meth:`by_attributes` already
        groups the lookups so each shard is scanned once per page.
        """
        attribute_map = self.attributes_for(rc_id, now_us)
        attribute_to_id = {attr: aid for aid, attr in attribute_map.items()}
        records = [
            record
            for record in self._message_db.by_attributes(list(attribute_to_id))
            if record.deposited_at_us >= since_us and record.message_id > cursor
        ]
        page = records[:limit]
        messages = [self._to_stored(record, attribute_to_id) for record in page]
        next_cursor = page[-1].message_id if page else cursor
        self.stats["pages_served"] += 1
        self.stats["messages_served"] += len(messages)
        if self._page_size is not None:
            self._page_size.observe(len(messages))
        return attribute_map, messages, next_cursor, len(records) > limit
