"""The Smart Device Authenticator (SDA) of the paper's Fig. 3.

"This component authenticates the SD by examining the Message
Authentication Code ... If a message is not authenticated properly, the
message is discarded and optionally an alert is sent to the
administrator."

Beyond the paper's prototype (which skipped timestamps entirely) the
SDA enforces a freshness window and a seen-MAC cache, so replaying a
captured deposit is rejected even inside the window.

The seen-MAC cache doubles as an **idempotent retransmit cache**: the
committed response for each accepted deposit is stored alongside the
MAC, so a device retransmitting after a lost acknowledgement gets the
original response replayed instead of a :class:`ReplayError` — without
that, a single dropped ack would turn an honest retry into data loss.
True replays stay fail-closed: a cached MAC presented under a different
device id, or one whose cache entry has been evicted, is rejected.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

from repro.core.conventions import compute_deposit_mac
from repro.errors import (
    MacMismatchError,
    ReplayError,
    ReproError,
    UnknownIdentityError,
)
from repro.hashes.hmac import constant_time_equal
from repro.obs.tracing import NULL_TRACER
from repro.sim.clock import Clock
from repro.storage.keystore import DeviceKeyStore
from repro.wire.messages import DepositRequest

__all__ = ["SmartDeviceAuthenticator"]

AlertSink = Callable[[str, str], None]

#: Registry names for the SDA's stats keys.  Every rejection reason is
#: parked under ``mws.sda.rejections.`` so aggregate totals can be
#: derived with ``sum_prefix`` instead of a hand-maintained key list.
_STAT_NAMES = {
    "accepted": "mws.sda.accepted",
    "retransmits_replayed": "mws.sda.retransmits_replayed",
    "bad_mac": "mws.sda.rejections.bad_mac",
    "replayed": "mws.sda.rejections.replayed",
    "stale_timestamp": "mws.sda.rejections.stale_timestamp",
    "unknown_device": "mws.sda.rejections.unknown_device",
    "bad_signature": "mws.sda.rejections.bad_signature",
}


class SmartDeviceAuthenticator:
    """Verifies deposit MACs, freshness and non-replay."""

    def __init__(
        self,
        keystore: DeviceKeyStore,
        clock: Clock,
        max_skew_us: int = 300 * 1_000_000,
        replay_cache_size: int = 65536,
        alert_sink: AlertSink | None = None,
        signature_verifier=None,
        require_signature: bool = False,
        registry=None,
        tracer=None,
    ) -> None:
        self._keystore = keystore
        self._clock = clock
        self._max_skew_us = max_skew_us
        #: MAC -> (device_id, committed response bytes or None).  Doubles
        #: as the replay guard and the idempotent retransmit cache.
        self._replay_cache: OrderedDict[bytes, tuple[str, bytes | None]] = (
            OrderedDict()
        )
        self._replay_cache_size = replay_cache_size
        self._alert_sink = alert_sink
        #: Optional :class:`repro.ibe.signatures.IbeVerifier` for the
        #: §VIII future-work mode where deposits carry identity-based
        #: signatures in addition to the MAC.
        self._signature_verifier = signature_verifier
        self._require_signature = require_signature
        self._tracer = tracer if tracer is not None else NULL_TRACER
        #: Counters for the FIG3 component bench and admin dashboards.
        #: Dict-shaped either way; with a registry they are live views of
        #: ``mws.sda.*`` counters (see :data:`_STAT_NAMES`).
        if registry is not None:
            self.stats = registry.stats_dict("mws.sda", names=_STAT_NAMES)
        else:
            self.stats = {key: 0 for key in _STAT_NAMES}

    def _alert(self, device_id: str, reason: str) -> None:
        if self._alert_sink is not None:
            self._alert_sink(device_id, reason)

    def authenticate(self, request: DepositRequest) -> None:
        """Raise a specific :class:`repro.errors.ProtocolError` subclass on
        any failure; returns None for an authentic, fresh deposit."""
        self._verify_mac_and_freshness(
            request.device_id, request.mac, request.mac_payload(),
            request.timestamp_us,
        )
        self._check_signature(request)
        self._commit(request.device_id, request.mac)

    def authenticate_batch(self, request) -> None:
        """Authenticate a :class:`repro.wire.messages.BatchDepositRequest`.

        One MAC covers the whole batch; freshness and replay are checked
        exactly as for single deposits.  (Batches are MAC-only: a device
        that needs non-repudiation signs individual deposits.)
        """
        self._verify_mac_and_freshness(
            request.device_id, request.mac, request.mac_payload(),
            request.timestamp_us,
        )
        self._commit(request.device_id, request.mac)

    def _verify_mac_and_freshness(
        self, device_id: str, mac: bytes, payload: bytes, timestamp_us: int
    ) -> None:
        try:
            shared_key = self._keystore.shared_key(device_id)
        except UnknownIdentityError:
            self.stats["unknown_device"] += 1
            self._alert(device_id, "unknown device")
            raise
        with self._tracer.span("sda.mac_verify") as span:
            span.annotate("payload_bytes", len(payload))
            expected = compute_deposit_mac(shared_key, payload)
            if not constant_time_equal(expected, mac):
                self.stats["bad_mac"] += 1
                self._alert(device_id, "MAC mismatch")
                raise MacMismatchError(
                    f"deposit from {device_id!r} failed MAC verification"
                )
        now_us = self._clock.now_us()
        if abs(now_us - timestamp_us) > self._max_skew_us:
            self.stats["stale_timestamp"] += 1
            self._alert(device_id, "stale timestamp")
            raise ReplayError(
                f"deposit timestamp {timestamp_us} outside the "
                f"{self._max_skew_us}us freshness window (now {now_us})"
            )
        if mac in self._replay_cache:
            self.stats["replayed"] += 1
            self._alert(device_id, "replayed deposit")
            raise ReplayError(f"deposit from {device_id!r} replayed")

    def _commit(self, device_id: str, mac: bytes) -> None:
        self._replay_cache[mac] = (device_id, None)
        while len(self._replay_cache) > self._replay_cache_size:
            self._replay_cache.popitem(last=False)
        self.stats["accepted"] += 1

    # -- idempotent retransmits -------------------------------------------

    def cached_response(self, device_id: str, mac: bytes) -> bytes | None:
        """Resolve a possibly-retransmitted deposit before authenticating.

        Returns ``None`` for a first-seen MAC (proceed with
        :meth:`authenticate`), the committed response bytes for an
        honest retransmit (same device id, response recorded), and
        raises :class:`ReplayError` fail-closed for everything else: a
        replay under a different device id, or a MAC seen before any
        response was recorded.
        """
        entry = self._replay_cache.get(mac)
        if entry is None:
            return None
        source, response = entry
        if source != device_id or response is None:
            self.stats["replayed"] += 1
            self._alert(device_id, "replayed deposit")
            raise ReplayError(f"deposit MAC replayed by {device_id!r}")
        self._replay_cache.move_to_end(mac)
        self.stats["retransmits_replayed"] += 1
        return response

    def record_response(self, mac: bytes, response: bytes) -> None:
        """Attach the committed response to an authenticated MAC so a
        future retransmit can replay it byte-identically."""
        entry = self._replay_cache.get(mac)
        if entry is not None:
            self._replay_cache[mac] = (entry[0], response)

    def _check_signature(self, request: DepositRequest) -> None:
        """Verify the optional identity-based signature when configured."""
        if self._signature_verifier is None:
            return
        if not request.signature:
            if self._require_signature:
                self.stats["bad_signature"] += 1
                self._alert(request.device_id, "missing signature")
                raise MacMismatchError(
                    f"deposit from {request.device_id!r} lacks the required "
                    "identity-based signature"
                )
            return
        from repro.ibe.signatures import IbeSignature

        try:
            signature = IbeSignature.from_bytes(
                request.signature, self._signature_verifier.public.params
            )
            valid = self._signature_verifier.verify(
                request.device_id.encode("utf-8"),
                request.mac_payload(),
                signature,
            )
        except ReproError:
            # Malformed signature blob or curve arithmetic rejecting the
            # encoded point: either way the signature is invalid.
            valid = False
        if not valid:
            self.stats["bad_signature"] += 1
            self._alert(request.device_id, "bad signature")
            raise MacMismatchError(
                f"deposit from {request.device_id!r} failed identity-based "
                "signature verification"
            )
