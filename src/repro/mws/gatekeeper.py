"""The Gatekeeper of Fig. 3: RC authentication and request routing.

"The main role of the Gatekeeper is to authenticate the user ... The
Gatekeeper then forwards the request to the Message Management System."

Authentication follows §V.D exactly: the RC sends
``ID_RC || PubK_RC || E(HashPassword, ID_RC || T || N)``; the gatekeeper
fetches the stored hash, opens the blob, checks the inner identity
matches the outer one, the timestamp is fresh and the nonce unseen.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.conventions import derive_password_key
from repro.errors import (
    AuthenticationError,
    DecryptionError,
    ReplayError,
    ReproError,
)
from repro.obs.tracing import NULL_TRACER
from repro.sim.clock import Clock
from repro.storage.user_db import UserDatabase
from repro.symciph.cipher import SymmetricScheme
from repro.wire.messages import RetrieveRequest

__all__ = ["Gatekeeper"]


class Gatekeeper:
    """Authenticates retrieval requests against the User Database."""

    def __init__(
        self,
        user_db: UserDatabase,
        clock: Clock,
        cipher_name: str = "DES",
        max_skew_us: int = 300 * 1_000_000,
        nonce_cache_size: int = 65536,
        assertion_validator=None,
        registry=None,
        tracer=None,
    ) -> None:
        self._user_db = user_db
        self._clock = clock
        self._cipher_name = cipher_name
        self._max_skew_us = max_skew_us
        self._nonce_cache: OrderedDict[tuple[str, bytes], None] = OrderedDict()
        self._nonce_cache_size = nonce_cache_size
        #: Optional repro.policy.assertions.AssertionValidator enabling
        #: IdP-issued assertions as an alternative credential (§VIII SAML).
        self._assertion_validator = assertion_validator
        self._tracer = tracer if tracer is not None else NULL_TRACER
        if registry is not None:
            self.stats = registry.stats_dict(
                "mws.gatekeeper", ["authenticated", "rejected", "assertion_auths"]
            )
        else:
            self.stats = {"authenticated": 0, "rejected": 0, "assertion_auths": 0}

    @property
    def cipher_name(self) -> str:
        return self._cipher_name

    def authenticate(self, request: RetrieveRequest) -> bytes:
        """Validate the credential; returns the RC's fresh nonce ``N``.

        Two credential forms: the paper's password blob, or (when an
        assertion validator is configured) a signed IdP assertion.
        Raises :class:`AuthenticationError` (bad credentials),
        :class:`ReplayError` (stale T / reused N) with specific messages.
        """
        with self._tracer.span("gatekeeper.auth"):
            return self._authenticate(request)

    def _authenticate(self, request: RetrieveRequest) -> bytes:
        if request.assertion:
            return self._authenticate_assertion(request)
        password_hash = self._user_db.password_key(request.rc_id)
        key = derive_password_key(password_hash, self._cipher_name)
        scheme = SymmetricScheme(self._cipher_name, key, mac=True)
        try:
            payload = scheme.open(request.auth_blob)
        except DecryptionError as exc:
            self.stats["rejected"] += 1
            raise AuthenticationError(
                f"auth blob for {request.rc_id!r} failed to open (wrong password?)"
            ) from exc
        inner_id, timestamp_us, nonce = RetrieveRequest.parse_auth_payload(payload)
        if inner_id != request.rc_id:
            self.stats["rejected"] += 1
            raise AuthenticationError(
                f"auth blob identity {inner_id!r} does not match outer "
                f"identity {request.rc_id!r}"
            )
        now_us = self._clock.now_us()
        if abs(now_us - timestamp_us) > self._max_skew_us:
            self.stats["rejected"] += 1
            raise ReplayError(
                f"RC auth timestamp {timestamp_us} outside freshness window"
            )
        cache_key = (request.rc_id, nonce)
        if cache_key in self._nonce_cache:
            self.stats["rejected"] += 1
            raise ReplayError(f"RC auth nonce replayed for {request.rc_id!r}")
        self._nonce_cache[cache_key] = None
        while len(self._nonce_cache) > self._nonce_cache_size:
            self._nonce_cache.popitem(last=False)
        self.stats["authenticated"] += 1
        return nonce

    def _authenticate_assertion(self, request: RetrieveRequest) -> bytes:
        """Validate an IdP-issued assertion credential."""
        from repro.policy.assertions import IdentityAssertion

        if self._assertion_validator is None:
            self.stats["rejected"] += 1
            raise AuthenticationError(
                "assertion credentials are not accepted by this gatekeeper"
            )
        try:
            assertion = IdentityAssertion.from_bytes(request.assertion)
        except ReproError as exc:
            self.stats["rejected"] += 1
            raise AuthenticationError(f"malformed assertion: {exc}") from exc
        try:
            self._assertion_validator.validate(assertion)
        except AuthenticationError:
            self.stats["rejected"] += 1
            raise
        if assertion.subject != request.rc_id:
            self.stats["rejected"] += 1
            raise AuthenticationError(
                f"assertion subject {assertion.subject!r} does not match "
                f"requesting identity {request.rc_id!r}"
            )
        self.stats["authenticated"] += 1
        self.stats["assertion_auths"] += 1
        # The single-use assertion id doubles as the response nonce.
        return assertion.assertion_id
