"""Distribution points: the paper's §VIII distributed-MWS sketch.

"A more distributed infrastructure can also be proposed, so the MWS-SD
and MWS-Client can be located in different areas, and when required
pull messages. In such a case, distribution points can be considered to
improve the scalability of the system."

A :class:`DistributionPoint` is an edge ingest node: it runs its own
Smart Device Authenticator against a (replicated, read-only) view of
the device key store, buffers accepted ciphertexts locally, and hands
them to the central MWS when the coordinator *pulls* — exactly the
pull model the paper describes.  Because messages are end-to-end
encrypted, a distribution point is no more trusted than the MWS itself:
it sees ciphertexts and attributes, never plaintext or IBE keys.

Delivery semantics: at-least-once from point to centre (a pull that
fails mid-batch re-delivers on the next pull); the centre deduplicates
on the (device, MAC) pair which is unique per message.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DecodeError, ProtocolError
from repro.mws.authenticator import SmartDeviceAuthenticator
from repro.mws.service import MessageWarehousingService
from repro.sim.clock import Clock
from repro.storage.keystore import DeviceKeyStore
from repro.wire.messages import DepositRequest, DepositResponse

__all__ = ["BufferedDeposit", "DistributionPoint", "DistributionCoordinator"]


@dataclass
class BufferedDeposit:
    """An edge-accepted deposit awaiting pull."""

    request: DepositRequest
    accepted_at_us: int


class DistributionPoint:
    """Edge ingest node with local authentication and buffering."""

    def __init__(
        self,
        name: str,
        keystore: DeviceKeyStore,
        clock: Clock,
        max_buffer: int = 100_000,
    ) -> None:
        self.name = name
        self._clock = clock
        self._buffer: list[BufferedDeposit] = []
        self._max_buffer = max_buffer
        self.sda = SmartDeviceAuthenticator(keystore, clock)
        self.stats = {"accepted": 0, "rejected": 0, "pulled": 0}

    def handle_deposit(self, request: DepositRequest) -> DepositResponse:
        """Authenticate locally; buffer on success.

        The device gets an immediate acknowledgement from its nearby
        point — the latency win the paper is after — while the message
        reaches the central warehouse on the next pull.
        """
        try:
            self.sda.authenticate(request)
        except ProtocolError as exc:
            self.stats["rejected"] += 1
            return DepositResponse(accepted=False, error=str(exc))
        if len(self._buffer) >= self._max_buffer:
            self.stats["rejected"] += 1
            return DepositResponse(accepted=False, error="buffer full")
        self._buffer.append(
            BufferedDeposit(request=request, accepted_at_us=self._clock.now_us())
        )
        self.stats["accepted"] += 1
        return DepositResponse(accepted=True, message_id=0)

    def deposit_handler(self, payload: bytes) -> bytes:
        """Byte-level endpoint, same contract as the central MWS-SD server."""
        try:
            request = DepositRequest.from_bytes(payload)
        except DecodeError as exc:
            return DepositResponse(accepted=False, error=f"malformed: {exc}").to_bytes()
        return self.handle_deposit(request).to_bytes()

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    def peek_batch(self, limit: int) -> list[BufferedDeposit]:
        """The next ``limit`` deposits, *without* removing them (the
        coordinator acknowledges after the centre has stored them)."""
        return list(self._buffer[:limit])

    def acknowledge(self, count: int) -> None:
        """Drop the first ``count`` deposits after a successful pull."""
        del self._buffer[:count]
        self.stats["pulled"] += count


class DistributionCoordinator:
    """Central puller: drains distribution points into the MWS."""

    def __init__(self, mws: MessageWarehousingService) -> None:
        self._mws = mws
        self._points: dict[str, DistributionPoint] = {}
        self._seen: set[tuple[str, bytes]] = set()
        self.stats = {"pulled": 0, "duplicates": 0}

    def register_point(self, point: DistributionPoint) -> None:
        self._points[point.name] = point

    @property
    def points(self) -> list[str]:
        return sorted(self._points)

    def pull(self, point_name: str, batch_size: int = 1000) -> int:
        """Pull one batch from one point; returns new messages stored.

        Peek-store-acknowledge ordering makes delivery at-least-once;
        the (device_id, MAC) dedup set makes it effectively exactly-once
        at the warehouse.
        """
        point = self._points[point_name]
        batch = point.peek_batch(batch_size)
        stored = 0
        for buffered in batch:
            request = buffered.request
            key = (request.device_id, request.mac)
            if key in self._seen:
                self.stats["duplicates"] += 1
                continue
            self._mws.message_db.store(
                device_id=request.device_id,
                attribute=request.attribute,
                nonce=request.nonce,
                ciphertext=request.ciphertext,
                deposited_at_us=buffered.accepted_at_us,
            )
            self._seen.add(key)
            stored += 1
        point.acknowledge(len(batch))
        self.stats["pulled"] += stored
        return stored

    def pull_all(self, batch_size: int = 1000) -> int:
        """One pull round across every registered point."""
        return sum(self.pull(name, batch_size) for name in self.points)
