"""The Message Warehousing Service: the paper's Fig. 3 box by box.

* :class:`SmartDeviceAuthenticator` (SDA) — MAC verification + replay
  window for incoming deposits.
* :class:`MessageManagementSystem` (MMS) — policy-driven retrieval from
  the Message Database.
* :class:`TokenGenerator` (TG) — tickets (sealed for the PKG) and tokens
  (sealed for the RC).
* :class:`Gatekeeper` — RC authentication and request routing.
* :class:`MessageWarehousingService` — the facade wiring them together
  with their databases, exposing byte-level network handlers.
"""

from repro.mws.authenticator import SmartDeviceAuthenticator
from repro.mws.gatekeeper import Gatekeeper
from repro.mws.mms import MessageManagementSystem
from repro.mws.runtime import (
    DepositJob,
    ParallelDepositRunner,
    RuntimeResult,
    ShardWorkerPool,
)
from repro.mws.service import MessageWarehousingService, MwsConfig
from repro.mws.token_gen import TokenGenerator

__all__ = [
    "SmartDeviceAuthenticator",
    "MessageManagementSystem",
    "TokenGenerator",
    "Gatekeeper",
    "MessageWarehousingService",
    "MwsConfig",
    "DepositJob",
    "RuntimeResult",
    "ShardWorkerPool",
    "ParallelDepositRunner",
]
