"""Administrative operations and monitoring for the MWS.

The paper mentions "a set of administrative operations to manage client
identities" and alerts "sent to the administrator"; this module
collects them behind one object: a status report aggregating every
component's counters, the alert feed, and a retention policy that
purges warehoused ciphertexts past their useful life (meter readings
age out; the policy database does not).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mws.service import MessageWarehousingService

__all__ = ["MwsStatus", "MwsAdmin"]


@dataclass
class MwsStatus:
    """A point-in-time snapshot of MWS health."""

    messages_stored: int
    attributes_in_use: int
    devices_registered: int
    clients_registered: int
    grants: int
    deposits_accepted: int
    deposits_rejected: int
    #: Stale-timestamp rejections, broken out of the replay count (a
    #: slow clock is an operational fault, not an attack signal).
    deposits_stale: int
    #: True replay rejections (seen MAC from a different source, or
    #: post-eviction).
    deposits_replayed: int
    #: Honest retransmits served from the idempotent response cache.
    retransmits_served: int
    retrievals_served: int
    tokens_issued: int
    alerts: int
    #: Deposits that failed to parse before reaching the SDA (the field
    #: set below this line extends the pre-observability report; new
    #: fields append so ``as_rows()`` keeps the historical order).
    deposits_malformed: int = 0
    messages_served: int = 0
    policy_denials: int = 0
    gatekeeper_rejections: int = 0

    def as_rows(self) -> list[tuple[str, int]]:
        """(name, value) rows for rendering."""
        return list(self.__dict__.items())


class MwsAdmin:
    """Operator surface over a running MWS."""

    def __init__(self, mws: MessageWarehousingService) -> None:
        self._mws = mws

    def status(self) -> MwsStatus:
        """Aggregate counters from every Fig. 3 component."""
        sda = self._mws.sda.stats
        # Derive the rejection total from the registry's name prefix
        # rather than summing a hard-coded key list: a rejection counter
        # added (or renamed) under ``mws.sda.rejections.`` can no longer
        # silently drop out of the report.
        rejected = self._mws.registry.sum_prefix("mws.sda.rejections.")
        return MwsStatus(
            messages_stored=len(self._mws.message_db),
            attributes_in_use=len(self._mws.message_db.attributes()),
            devices_registered=len(self._mws.device_keys),
            clients_registered=len(self._mws.user_db),
            grants=len(self._mws.policy_db),
            deposits_accepted=sda["accepted"],
            deposits_rejected=rejected,
            deposits_stale=sda.get("stale_timestamp", 0),
            deposits_replayed=sda["replayed"],
            retransmits_served=sda.get("retransmits_replayed", 0),
            retrievals_served=self._mws.mms.stats["retrievals"],
            tokens_issued=self._mws.token_generator.stats["tokens_issued"],
            alerts=len(self._mws.alerts),
            deposits_malformed=self._mws.registry.counter(
                "mws.deposits.malformed"
            ).value,
            messages_served=self._mws.mms.stats["messages_served"],
            policy_denials=self._mws.mms.stats["policy_denials"],
            gatekeeper_rejections=self._mws.gatekeeper.stats["rejected"],
        )

    def metrics(self) -> dict[str, int]:
        """Every counter the MWS registry knows, by canonical name."""
        return self._mws.registry.counter_values()

    def recent_alerts(self, limit: int = 20) -> list[tuple[str, str]]:
        """The latest (device, reason) alerts, newest last."""
        return list(self._mws.alerts[-limit:])

    def purge_messages_older_than(self, cutoff_us: int) -> int:
        """Retention: delete warehoused messages deposited before
        ``cutoff_us``.  Returns the number removed.

        Only ciphertexts are purged; grants, users and device keys are
        untouched (they are registrations, not data).
        """
        victims = self._mws.message_db.by_time_range(0, cutoff_us - 1)
        for record in victims:
            self._mws.message_db.delete(record.message_id)
        return len(victims)

    def purge_attribute(self, attribute: str) -> int:
        """Delete every message stored under one attribute (e.g. a
        decommissioned apartment complex).  Returns the count removed."""
        victims = self._mws.message_db.by_attribute(attribute)
        for record in victims:
            self._mws.message_db.delete(record.message_id)
        return len(victims)

    def compact_stores(self) -> None:
        """Run compaction on any log-structured backing stores."""
        for database in (self._mws.message_db, self._mws.policy_db):
            store = getattr(database, "_store", None)
            if hasattr(store, "compact"):
                store.compact()
