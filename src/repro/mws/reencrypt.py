"""The warehouse's lazy re-encryption engine (epoch roll follow-through).

An epoch roll changes which identity new deposits are encrypted under;
this engine brings *stored* ciphertexts along.  It owns the only two
call sites that re-key the warehouse:

* **Lazy** — the MMS routes every record it is about to serve through
  :meth:`maybe_reencrypt`, so anything an RC touches is already at the
  current epoch.
* **Background** — :meth:`drain` sweeps the whole warehouse in id
  order; the shard-worker runtime drives it as a scheduler task so the
  sweep interleaves with live deposits and retrievals.

Both paths funnel into :meth:`reencrypt_record`, which wraps the stored
blob (see :mod:`repro.ibe.reencrypt` — the warehouse encrypts, never
decrypts) and persists through ``update_record``.  Against a replicated
warehouse that update ships as an ordinary store frame over the WAL, so
followers converge on the re-wrapped bytes and a post-failover leader
never resurrects a pre-roll ciphertext.

Conservation bookkeeping: the engine records the SHA-256 of the
pre-wrap bytes the first time it touches a record.  Wrapped bytes are
not comparable across fault plans (the wrap draws from the run's RNG,
and fault schedules perturb draw order), but the *origin* digests are —
the revocation bench compares their multiset across plans exactly the
way the availability bench compares raw ciphertext digests.
"""

from __future__ import annotations

from repro.core.conventions import identity_string
from repro.hashes.sha256 import sha256
from repro.ibe.reencrypt import wrap
from repro.mathlib.rand import RandomSource, SystemRandomSource
from repro.storage.message_db import MessageRecord

__all__ = ["ReencryptionEngine"]


class ReencryptionEngine:
    """Re-wraps stored ciphertexts to the revocation registry's epoch."""

    def __init__(
        self,
        public,
        message_db,
        revocation,
        rng: RandomSource | None = None,
        cipher_name: str = "AES-128",
    ) -> None:
        self._public = public
        self._db = message_db
        self._revocation = revocation
        self._rng = rng if rng is not None else SystemRandomSource()
        self._cipher_name = cipher_name
        #: message_id -> sha256 hex of the ciphertext bytes *before* the
        #: first wrap — the record's conserved identity across re-keys.
        self.origin_digests: dict[int, str] = {}

    def needs_reencrypt(self, record: MessageRecord) -> bool:
        """Whether ``record``'s outermost layer lags the current epoch."""
        return record.epoch < self._revocation.current_epoch

    def maybe_reencrypt(self, record: MessageRecord) -> MessageRecord:
        """The lazy path: re-wrap iff stale, else hand the record back."""
        if not self.needs_reencrypt(record):
            return record
        return self.reencrypt_record(record)

    def reencrypt_record(self, record: MessageRecord) -> MessageRecord:
        """Wrap ``record`` up to the current epoch and persist the result."""
        target = self._revocation.current_epoch
        if record.message_id not in self.origin_digests:
            # # repro-lint: nonsecret=digest -- fingerprints an
            # already-public ciphertext for the conservation check.
            self.origin_digests[record.message_id] = sha256(
                record.ciphertext
            ).hex()
        identity = identity_string(record.attribute, record.nonce, target)
        wrapped = wrap(
            self._public,
            record.attribute,
            record.nonce,
            record.ciphertext,
            outer_epoch=target,
            inner_epoch=record.epoch,
            identity=identity,
            cipher_name=self._cipher_name,
            rng=self._rng,
        )
        updated = MessageRecord(
            message_id=record.message_id,
            device_id=record.device_id,
            attribute=record.attribute,
            nonce=record.nonce,
            ciphertext=wrapped,
            deposited_at_us=record.deposited_at_us,
            epoch=target,
        )
        self._db.update_record(updated)
        if self._revocation.reencryptions is not None:
            self._revocation.reencryptions.inc()
        return updated

    def drain(self, limit: int | None = None) -> int:
        """Background sweep: re-wrap up to ``limit`` stale records.

        Scans in message-id order so the sweep is deterministic for a
        given warehouse state; returns the number of records re-wrapped
        (0 means the warehouse is fully at the current epoch).
        """
        moved = 0
        for record in self._db.records():
            if not self.needs_reencrypt(record):
                continue
            self.reencrypt_record(record)
            moved += 1
            if limit is not None and moved >= limit:
                break
        return moved

    def origin_digest_of(self, record: MessageRecord) -> str:
        """The conserved digest for ``record`` (wrapped or not).

        Falls back to hashing the stored bytes for records this engine
        never touched — for those, stored bytes *are* the origin.
        """
        known = self.origin_digests.get(record.message_id)
        if known is not None:
            return known
        # # repro-lint: nonsecret=digest -- see reencrypt_record.
        return sha256(record.ciphertext).hex()
