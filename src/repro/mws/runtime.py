"""Shard-parallel worker runtime for the message warehousing service.

The paper's MWS is a SaaS front door for fleets of smart meters; PR 5
gave the warehouse shards and a batched pipeline but still executed
every deposit serially.  This module adds the worker layer in two lanes
that share one job model:

* **Simulated-concurrent lane** — :class:`ShardWorkerPool` runs
  shard-local deposit workers and an interleaved paged-retrieval task
  as cooperative generators under a seeded
  :class:`~repro.sim.scheduler.DeterministicScheduler`.  Every
  interleaving, crash and retransmit replays byte-for-byte from the
  seed, so the Hypothesis conservation suite can sweep schedules and
  worker-crash fault plans while asserting obs-dump determinism.
* **Real-parallel lane** — :class:`ParallelDepositRunner` fans the
  KEM/pairing work of ``hybrid_encrypt_many`` out over a
  ``concurrent.futures`` process pool.  Each worker process rebuilds
  the public parameters from the deployment seed with the exact
  derivation ``Deployment.build`` uses, and each encryption group gets
  its own derived DRBG, so the produced ciphertext bytes are identical
  to the serial lane regardless of process scheduling — parallelism
  changes wall-clock, never bytes.

Crash semantics in the simulated lane lean on the SDA's idempotent
replay cache: a worker killed between send and acknowledgement requeues
its in-flight sub-batch, and the replacement's byte-identical
retransmit is answered with the *committed* receipt — at-most-once
storage even under worker death, which is what the conservation
property tests pin.

Jobs are split **per shard** (via the warehouse's consistent-hash ring)
and each worker owns a fixed set of shards, so two workers never race
on one shard's indexes — the same ownership discipline a real
multi-process MWS would need.  The pool holds the warehouse's worker
lease for the whole run, which makes ``rebalance()`` refuse to run
underneath it (offline-only, ROADMAP item 4).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

from repro.errors import DecodeError, NetworkError, ProtocolError
from repro.core.conventions import (
    NONCE_LENGTH,
    compute_deposit_mac,
    identity_string,
)
from repro.hashes.sha256 import sha256
from repro.ibe.kem import hybrid_encrypt_many
from repro.mathlib.rand import HmacDrbg, derive_seed
from repro.sim.sanitizer import ANY_OWNER, active as _sanitizer_active
from repro.sim.scheduler import DeterministicScheduler, SchedulerTask, TaskState
from repro.wire.messages import (
    BatchDepositReceipt,
    BatchDepositRequest,
    BatchEntry,
)

__all__ = [
    "DepositJob",
    "RuntimeResult",
    "ShardWorkerPool",
    "ParallelDepositRunner",
    "QUEUE_DEPTH_BOUNDS",
    "BUSY_STEP_BOUNDS",
]

#: Histogram bounds for worker queue depth at dequeue time.
QUEUE_DEPTH_BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128)

#: Histogram bounds for per-worker-generation busy steps.
BUSY_STEP_BOUNDS = (4, 16, 64, 256, 1024, 4096)

#: A sub-job is retried on transport loss; beyond this the run fails
#: loudly instead of spinning (only reachable under link-fault plans).
MAX_SUBJOB_ATTEMPTS = 16


@dataclass
class DepositJob:
    """One shard-local sub-batch: prebuilt request bytes plus bookkeeping.

    Requests are built *before* the scheduler starts, in job order, so
    nonce and IV draws depend only on the workload — never on the
    interleaving or the worker count.
    """

    device_id: str
    shard: int
    items: list
    raw: bytes
    attempts: int = 0
    #: Bound send channel, attached when the job is queued.
    channel: object = None


@dataclass
class RuntimeResult:
    """Outcome of one simulated-concurrent run."""

    accepted_ids: list[int] = field(default_factory=list)
    rejected: int = 0
    #: message_id -> times seen across all retrieval pages.
    retrieved_counts: dict[int, int] = field(default_factory=dict)
    #: message_id -> sha256 hex of the retrieved ciphertext bytes.  The
    #: availability suite compares these across fault plans to pin that
    #: replication and rebalance never rewrite a stored ciphertext.
    #: Under revocation churn, re-encryption legitimately rewrites bytes
    #: once per epoch — the digest kept here is the *newest epoch's*,
    #: and a conflict is only counted within one epoch.
    retrieved_digests: dict[int, str] = field(default_factory=dict)
    #: message_id -> epoch of the retrieved copy behind the digest.
    retrieved_epochs: dict[int, int] = field(default_factory=dict)
    shard_counts: list[int] = field(default_factory=list)
    crashes: int = 0
    restarts: int = 0
    #: Shard-leader failovers the chaos task injected this run.
    failovers: int = 0
    #: Records drained by the online rebalance task (if one ran).
    rebalance_moves: int = 0
    #: Stored ciphertexts re-wrapped by the background drain task.
    reencrypt_moves: int = 0
    #: Epoch rolls the revocation-churn task applied this run.
    epoch_rolls: int = 0
    steps: int = 0
    pages: int = 0
    #: Times a re-retrieved message came back with different bytes.
    digest_conflicts: int = 0
    transcript: list[str] = field(default_factory=list)

    @property
    def duplicate_ids(self) -> list[int]:
        """Message ids a retrieval pass returned more than once."""
        return sorted(
            message_id
            for message_id, count in self.retrieved_counts.items()
            if count > 1
        )

    @property
    def lost_ids(self) -> list[int]:
        """Accepted message ids retrieval never returned."""
        return sorted(set(self.accepted_ids) - set(self.retrieved_counts))

    def conservation_ok(self) -> bool:
        """The PR 5 law under concurrency: no loss, no duplication.

        Every accepted deposit is retrieved exactly once with its
        original bytes, nothing extra is retrieved, and the shards
        account for exactly the accepted set — even across failovers
        and a live rebalance.
        """
        return (
            not self.duplicate_ids
            and not self.lost_ids
            and set(self.retrieved_counts) == set(self.accepted_ids)
            and len(self.accepted_ids) == len(set(self.accepted_ids))
            and sum(self.shard_counts) == len(self.accepted_ids)
            and self.digest_conflicts == 0
        )

    def fingerprint(self) -> str:
        """SHA-256 over the canonical transcript (hex).

        The transcript records every scheduler step and every runtime
        event in order, so two runs with the same seed must produce the
        same fingerprint — and any schedule divergence changes it.
        """
        return sha256("\n".join(self.transcript).encode("utf-8")).hex()


class ShardWorkerPool:
    """Deterministic shard-owning worker pool over a deployment.

    ``deployment`` is duck-typed (anything with the
    :class:`repro.core.deployment.Deployment` surface).  Workers are
    cooperative generators: worker ``i`` owns every shard ``s`` with
    ``s % workers == i``, pulls prebuilt shard-local sub-batches off its
    queue and ships them through the per-item batch endpoint.  A
    retrieval task pages the backlog concurrently through the
    gatekeeper, exercising deposit/retrieval interleaving instead of
    serialising the phases.

    Worker crashes come from the network's
    :class:`~repro.sim.faults.FaultPlan` (``set_worker_faults``): the
    scheduler's interrupt hook consults the plan before every worker
    step, kills the condemned worker mid-job, requeues its in-flight
    sub-batch and spawns a replacement generation for the same worker
    index.
    """

    def __init__(
        self,
        deployment,
        workers: int = 2,
        scheduler_seed: bytes = b"runtime-schedule",
        page_size: int = 8,
        retrieve_every: int = 4,
        max_steps: int = 1_000_000,
        failover_every: int = 8,
        rebalance_stores: list | None = None,
        rebalance_after: int = 1,
        rebalance_crash_after: int | None = None,
        revocation_schedule: list | None = None,
        reencrypt_every: int = 0,
        reencrypt_batch: int = 4,
    ) -> None:
        if workers < 1:
            raise ProtocolError(f"worker pool needs >= 1 worker, got {workers}")
        self._deployment = deployment
        self._workers = workers
        self._page_size = page_size
        self._retrieve_every = max(1, retrieve_every)
        self._max_steps = max_steps
        #: Steps between chaos-task leader-kill rolls (fault-plan gated).
        self._failover_every = max(1, failover_every)
        #: When set, an online-rebalance task drains the warehouse onto
        #: these extra shards once ``rebalance_after`` sub-jobs landed.
        self._rebalance_stores = rebalance_stores
        self._rebalance_after = max(0, rebalance_after)
        #: Kill the drain after this many moves (mid-rebalance crash
        #: model); recovery finishes the drain at end of run.
        self._rebalance_crash_after = rebalance_crash_after
        #: Key-lifecycle churn applied while traffic flows: a list of
        #: ``(after_subjobs, rc_id_or_None, attribute_or_None)`` — when
        #: ``after_subjobs`` sub-batches have committed, revoke the RC
        #: (``rc_id is None`` means a bare epoch roll instead).  Actions
        #: still pending when deposits finish are applied immediately.
        self._revocation_schedule = revocation_schedule
        #: When > 0, a background drain task re-wraps up to
        #: ``reencrypt_batch`` stale records every ``reencrypt_every``
        #: scheduler steps — the lazy serve-path re-keying still runs;
        #: the drain covers records no retrieval ever touches.
        self._reencrypt_every = reencrypt_every
        self._reencrypt_batch = max(1, reencrypt_batch)
        self._rng = HmacDrbg(derive_seed(scheduler_seed, b"schedule"))
        registry = deployment.registry
        self._jobs_completed = registry.counter("runtime.jobs.completed")
        self._jobs_requeued = registry.counter("runtime.jobs.requeued")
        self._crashes = registry.counter("runtime.crashes")
        self._restarts = registry.counter("runtime.restarts")
        self._failovers = registry.counter("runtime.failovers")
        self._pages = registry.counter("runtime.retrieval.pages")
        self._retrieval_retries = registry.counter("runtime.retrieval.retries")
        self._steps_gauge = registry.gauge("runtime.steps")
        self._queue_depth = registry.histogram(
            "runtime.queue.depth", QUEUE_DEPTH_BOUNDS
        )
        self._worker_jobs = [
            registry.counter(f"runtime.worker.{index}.jobs")
            for index in range(workers)
        ]
        self._busy_steps = [
            registry.histogram(f"runtime.worker.{index}.busy_steps", BUSY_STEP_BOUNDS)
            for index in range(workers)
        ]

    # -- job preparation --------------------------------------------------

    def _prepare_jobs(
        self, jobs: list[tuple[str, list[tuple[str, bytes]]]]
    ) -> list[DepositJob]:
        """Split each device batch into shard-local prebuilt sub-jobs.

        Devices are created (and their nonce streams drawn) in job
        order, so the produced request bytes are a pure function of the
        deployment seed and the workload — the scheduler seed and the
        worker count cannot reach them.
        """
        warehouse = self._deployment.mws.message_db
        devices: dict[str, object] = {}
        prepared: list[DepositJob] = []
        for device_id, items in jobs:
            device = devices.get(device_id)
            if device is None:
                device = self._deployment.new_smart_device(device_id)
                devices[device_id] = device
            by_shard: dict[int, list[tuple[str, bytes]]] = {}
            for attribute, payload in items:
                shard = (
                    warehouse.shard_for(attribute)
                    if hasattr(warehouse, "shard_for")
                    else 0
                )
                by_shard.setdefault(shard, []).append((attribute, payload))
            for shard in sorted(by_shard):
                sub_items = by_shard[shard]
                raw = device.build_many(sub_items).to_bytes()
                prepared.append(
                    DepositJob(
                        device_id=device_id,
                        shard=shard,
                        items=sub_items,
                        raw=raw,
                    )
                )
        return prepared

    # -- worker generators ------------------------------------------------

    def _worker_loop(self, index: int):
        queue = self._queues[index]
        sanitizer = _sanitizer_active()
        if sanitizer is not None:
            # First-step ownership check: runs inside the task context,
            # so a loop driven for the wrong worker trips immediately.
            sanitizer.check(queue)
        while queue:
            job = queue.popleft()
            self._queue_depth.observe(len(queue) + 1)
            self._inflight[index] = job
            yield  # crash here: job requeued, nothing sent yet
            try:
                raw_response = job.channel.request(job.raw)
            except NetworkError:
                job.attempts += 1
                self._inflight[index] = None
                if job.attempts >= MAX_SUBJOB_ATTEMPTS:
                    raise
                queue.append(job)
                self._jobs_requeued.inc()
                self._note(f"requeue:net:{job.device_id}:s{job.shard}")
                yield
                continue
            yield  # crash here: committed server-side; retransmit replays
            receipt = BatchDepositReceipt.from_bytes(raw_response)
            if receipt.error:
                # Envelope rejection (corrupted on the wire): the clean
                # retransmit of the identical bytes can still succeed.
                job.attempts += 1
                self._inflight[index] = None
                if job.attempts >= MAX_SUBJOB_ATTEMPTS:
                    raise ProtocolError(
                        f"sub-job from {job.device_id!r} rejected "
                        f"{job.attempts} times: {receipt.error}"
                    )
                queue.append(job)
                self._jobs_requeued.inc()
                self._note(f"requeue:envelope:{job.device_id}:s{job.shard}")
                yield
                continue
            for status in receipt.statuses:
                if status.ok:
                    self._result.accepted_ids.append(status.message_id)
                else:
                    self._result.rejected += 1
            self._completed_subs += 1
            self._inflight[index] = None
            self._jobs_completed.inc()
            self._worker_jobs[index].inc()
            self._note(
                f"done:{job.device_id}:s{job.shard}:"
                f"n{receipt.accepted_count}/{len(receipt.statuses)}"
            )
            yield

    def _retrieval_loop(self, channel):
        cursor = 0
        while True:
            for _ in range(self._retrieve_every):
                yield
            try:
                page = self._client.retrieve_page(
                    channel, self._page_size, cursor=cursor
                )
            except (NetworkError, DecodeError):
                self._retrieval_retries.inc()
                self._note("page:retry")
                continue
            self._result.pages += 1
            self._pages.inc()
            for message in page.messages:
                counts = self._result.retrieved_counts
                counts[message.message_id] = counts.get(message.message_id, 0) + 1
                # The digest fingerprints an already-public ciphertext for
                # the conservation check; comparing it leaks nothing.
                # Re-encryption advances the epoch when it rewrites the
                # bytes, so only a *same-epoch* mismatch is a conflict.
                # # repro-lint: nonsecret=digest,known
                digest = sha256(message.ciphertext).hex()
                known = self._result.retrieved_digests.get(message.message_id)
                known_epoch = self._result.retrieved_epochs.get(
                    message.message_id
                )
                if known is None or message.epoch > known_epoch:
                    self._result.retrieved_digests[message.message_id] = digest
                    self._result.retrieved_epochs[message.message_id] = (
                        message.epoch
                    )
                elif message.epoch == known_epoch and known != digest:
                    self._result.digest_conflicts += 1
                    self._note(f"digest-conflict:{message.message_id}")
            self._note(f"page:c{cursor}:n{len(page.messages)}")
            cursor = page.next_cursor
            if not page.has_more and self._deposits_done():
                return

    def _chaos_loop(self, warehouse):
        """Roll the fault plan for shard-leader kills while deposits run.

        Each tick consults ``decide_leader_kill`` (its own seeded
        stream), fails over the chosen shard's leader, and records the
        post-promotion watermark in the transcript — the promoted
        follower is already caught up to it, which is the
        read-your-writes guarantee the retrieval task rides on.
        """
        plan = getattr(self._deployment.network, "fault_plan", None)
        shard_count = warehouse.shard_count
        while not self._deposits_done():
            for _ in range(self._failover_every):
                if self._deposits_done():
                    return
                yield
            victim = plan.decide_leader_kill(shard_count)
            if victim is None:
                continue
            promoted = warehouse.fail_shard_leader(victim)
            self._result.failovers += 1
            self._failovers.inc()
            watermark = warehouse.shard_watermarks()[victim]
            self._note(f"failover:s{victim}:r{promoted}:w{watermark}")

    def _rebalance_loop(self, warehouse):
        """Drive an online drain one move per step while traffic flows.

        With ``rebalance_crash_after`` the drain abandons mid-flight
        (the crash model); the run's recovery path finishes the drain
        after the scheduler stops, and the dual-ring read path keeps
        every record retrievable in between.
        """
        while self._completed_subs < self._rebalance_after:
            if self._deposits_done():
                break
            yield
        self._note(f"rebalance:start:+{len(self._rebalance_stores)}")
        drain = warehouse.rebalance_online(list(self._rebalance_stores))
        moved = 0
        for moved in drain:
            self._result.rebalance_moves = moved
            if (
                self._rebalance_crash_after is not None
                and moved >= self._rebalance_crash_after
            ):
                drain.close()
                self._note(f"rebalance:crash:m{moved}")
                return
            yield
        self._note(f"rebalance:done:m{moved}")

    def _revocation_loop(self):
        """Apply the revocation schedule as deposits commit around it.

        Each action waits for its sub-job watermark (or for deposits to
        finish, whichever comes first) and then publishes through the
        deployment's atomic helpers — one step later every component
        reads the new view.
        """
        for trigger, rc_id, attribute in self._revocation_schedule:
            while self._completed_subs < trigger and not self._deposits_done():
                yield
            if rc_id is None:
                epoch = self._deployment.roll_epoch()
                self._result.epoch_rolls += 1
                self._note(f"epoch-roll:e{epoch}")
            else:
                self._deployment.revoke_rc(rc_id, attribute)
                self._result.epoch_rolls += 1
                self._note(
                    f"revoke:{rc_id}:"
                    f"e{self._deployment.revocation.current_epoch}"
                )
            yield

    def _reencrypt_loop(self):
        """Background sweep re-wrapping stale records while traffic flows.

        Exits once deposits are done and a full pass finds nothing
        stale — at that point the warehouse is entirely at the current
        epoch and the origin-digest conservation check can run.
        """
        engine = getattr(self._deployment.mws, "reencryptor", None)
        if engine is None:
            return
        while True:
            for _ in range(self._reencrypt_every):
                yield
            moved = engine.drain(limit=self._reencrypt_batch)
            if moved:
                self._result.reencrypt_moves += moved
                self._note(f"reencrypt:m{moved}")
            elif self._deposits_done():
                return
            yield

    # -- crash plumbing ---------------------------------------------------

    def _interrupt(self, task: SchedulerTask) -> bool:
        plan = getattr(self._deployment.network, "fault_plan", None)
        if plan is None or not task.name.startswith("worker-"):
            return False
        return plan.decide_worker_crash(task.name)

    def _on_kill(self, task: SchedulerTask) -> None:
        index = self._task_workers.pop(task.name, None)
        if index is None:
            return
        self._busy_steps[index].observe(task.steps)
        self._result.crashes += 1
        self._crashes.inc()
        self._note(f"crash:{task.name}")
        job = self._inflight.get(index)
        if job is not None:
            self._inflight[index] = None
            self._queues[index].appendleft(job)
            self._jobs_requeued.inc()
            self._note(f"requeue:crash:{job.device_id}:s{job.shard}")
        plan = self._deployment.network.fault_plan
        if plan is not None:
            plan.note_worker_restart()
        self._result.restarts += 1
        self._restarts.inc()
        self._generations[index] += 1
        name = f"worker-{index}-g{self._generations[index]}"
        self._task_workers[name] = index
        sanitizer = _sanitizer_active()
        if sanitizer is not None:
            # The replacement generation keeps the same owner key, so
            # requeued in-flight work stays legal for it.
            sanitizer.register_task(name, ("worker", index))
        self._scheduler.spawn(name, self._worker_loop(index))
        self._note(f"restart:{name}")

    # -- run --------------------------------------------------------------

    def _deposits_done(self) -> bool:
        return self._completed_subs == self._total_subs

    def _note(self, event: str) -> None:
        self._result.transcript.append(event)

    def _install_sanitizer(self, sanitizer, warehouse):
        """Wire the ownership sanitizer into this run.

        Worker tasks register under ``("worker", index)`` (restarted
        generations keep the key); the chaos and drain tasks are
        maintenance parties allowed to touch any shard.  Queues are
        tagged to their worker; shard backends to the worker that
        ``shard % workers`` routing sends their deposits to.  Returns
        the warehouse's previous mutation hook so ``run`` can restore
        it.
        """
        for name, index in sorted(self._task_workers.items()):
            sanitizer.register_task(name, ("worker", index))
        # The retrieval task is a maintenance party since lazy
        # re-encryption: serving a stale record re-wraps and persists it
        # into whichever shard holds it, so retrieval legitimately
        # writes shards it does not own.  Deposit-worker ownership stays
        # strict — that is the discipline the sanitizer exists to check.
        sanitizer.register_task("retrieval", ANY_OWNER)
        sanitizer.register_task("chaos-failover", ANY_OWNER)
        sanitizer.register_task("rebalance-drain", ANY_OWNER)
        sanitizer.register_task("revocation-churn", ANY_OWNER)
        sanitizer.register_task("reencrypt-drain", ANY_OWNER)
        for index, queue in enumerate(self._queues):
            sanitizer.tag(queue, ("worker", index), f"queue-{index}")
        saved_hook = None
        if hasattr(warehouse, "shard") and hasattr(warehouse, "shard_count"):
            for shard in range(warehouse.shard_count):
                sanitizer.tag(
                    warehouse.shard(shard),
                    ("worker", shard % self._workers),
                    f"shard-{shard}",
                )
        if hasattr(warehouse, "mutation_hook"):
            saved_hook = warehouse.mutation_hook
            warehouse.mutation_hook = sanitizer.check
        return saved_hook

    def run(
        self,
        jobs: list[tuple[str, list[tuple[str, bytes]]]],
        rc_id: str = "runtime-rc",
        rc_password: str = "runtime-password",
    ) -> RuntimeResult:
        """Deposit every job through the pool while paging retrievals.

        ``jobs`` is ``[(device_id, [(attribute, payload), ...]), ...]``.
        Returns a :class:`RuntimeResult`; the caller asserts
        ``conservation_ok()`` and compares ``fingerprint()`` across
        runs.
        """
        self._result = RuntimeResult()
        prepared = self._prepare_jobs(jobs)
        attributes = sorted(
            {attribute for _device, items in jobs for attribute, _payload in items}
        )
        # An empty job list grants the RC nothing; retrieval would be
        # rejected outright, so the run degenerates to workers only.
        self._client = (
            self._deployment.new_receiving_client(
                rc_id, rc_password, attributes=attributes
            )
            if attributes
            else None
        )
        self._queues: list[deque] = [deque() for _ in range(self._workers)]
        self._inflight: dict[int, DepositJob | None] = {
            index: None for index in range(self._workers)
        }
        for job in prepared:
            job.channel = self._deployment.sd_many_channel(job.device_id)
            self._queues[job.shard % self._workers].append(job)
        self._total_subs = len(prepared)
        self._completed_subs = 0
        self._generations = [0] * self._workers
        self._task_workers: dict[str, int] = {}

        clock = self._deployment.clock
        self._scheduler = DeterministicScheduler(
            self._rng,
            clock=clock if hasattr(clock, "advance") else None,
            max_steps=self._max_steps,
            interrupt=self._interrupt,
            on_kill=self._on_kill,
        )
        for index in range(self._workers):
            name = f"worker-{index}-g0"
            self._task_workers[name] = index
            self._scheduler.spawn(name, self._worker_loop(index))
        if self._client is not None:
            self._scheduler.spawn(
                "retrieval",
                self._retrieval_loop(self._deployment.rc_page_channel(rc_id)),
            )

        warehouse = self._deployment.mws.message_db
        plan = getattr(self._deployment.network, "fault_plan", None)
        if plan is not None and hasattr(warehouse, "install_fault_plan"):
            warehouse.install_fault_plan(plan)
        if (
            plan is not None
            and getattr(plan.worker_spec, "leader_kill", 0.0) > 0.0
            and getattr(warehouse, "replicas", 1) > 1
        ):
            self._scheduler.spawn("chaos-failover", self._chaos_loop(warehouse))
        if self._rebalance_stores and hasattr(warehouse, "rebalance_online"):
            self._scheduler.spawn(
                "rebalance-drain", self._rebalance_loop(warehouse)
            )
        if self._revocation_schedule:
            self._scheduler.spawn("revocation-churn", self._revocation_loop())
        if self._reencrypt_every > 0:
            self._scheduler.spawn("reencrypt-drain", self._reencrypt_loop())
        sanitizer = _sanitizer_active()
        saved_hook = None
        if sanitizer is not None:
            saved_hook = self._install_sanitizer(sanitizer, warehouse)
        lease = (
            warehouse.worker_lease(self._workers)
            if hasattr(warehouse, "worker_lease")
            else None
        )
        if lease is not None:
            lease.__enter__()
        try:
            while True:
                task = self._scheduler.step()
                if task is None:
                    break
                self._note(f"step:{task.name}:{task.state}")
            for task in self._scheduler.tasks:
                if task.state == TaskState.FAILED:
                    raise task.error
        finally:
            if sanitizer is not None and hasattr(warehouse, "mutation_hook"):
                warehouse.mutation_hook = saved_hook
            if lease is not None:
                lease.__exit__(None, None, None)

        if getattr(warehouse, "rebalancing", False):
            # A crashed drain left the dual-ring read path active;
            # recovery completes the remaining moves before accounting.
            recovered = warehouse.finish_rebalance()
            self._result.rebalance_moves += recovered
            self._note(f"rebalance:recovered:m{recovered}")

        if self._reencrypt_every > 0:
            # Converge: a roll landing after the drain's last pass can
            # leave stragglers; finish them so every plan ends with the
            # whole warehouse at the final epoch.
            engine = getattr(self._deployment.mws, "reencryptor", None)
            if engine is not None:
                recovered = engine.drain()
                if recovered:
                    self._result.reencrypt_moves += recovered
                    self._note(f"reencrypt:final:m{recovered}")

        for name, index in self._task_workers.items():
            for task in self._scheduler.tasks:
                if task.name == name and task.state == TaskState.DONE:
                    self._busy_steps[index].observe(task.steps)
        self._result.steps = self._scheduler.steps
        self._steps_gauge.set(self._scheduler.steps)
        if hasattr(warehouse, "shard_counts"):
            self._result.shard_counts = list(warehouse.shard_counts())
        else:
            self._result.shard_counts = [len(warehouse)]
        return self._result


# ---------------------------------------------------------------------------
# Real-parallel lane: process-pool KEM fan-out
# ---------------------------------------------------------------------------

#: Per-process public parameters, set by the pool initializer.
_WORKER_PUBLIC = None


def _init_encrypt_worker(
    preset: str,
    seed: bytes,
    pairing_algorithm: str,
    use_fast_pairing: bool,
    cache_size: int,
) -> None:
    """Rebuild the deployment's public parameters in a worker process.

    Uses the exact derivation ``Deployment.build`` uses —
    ``HmacDrbg(seed).fork(b"master")`` into ``setup`` — so ciphertexts
    produced here decrypt under keys the deployment's PKG extracts.
    """
    global _WORKER_PUBLIC
    from repro.ibe import setup
    from repro.ibe.cache import CryptoCache

    master = setup(
        preset,
        rng=HmacDrbg(seed).fork(b"master"),
        pairing_algorithm=pairing_algorithm,
    )
    master.public.params.use_fast_path = use_fast_pairing
    if cache_size > 0:
        master.public.cache = CryptoCache(cache_size)
    _WORKER_PUBLIC = master.public


def _encrypt_group(task: tuple) -> list[bytes]:
    """Encrypt one identity group; runs inside a pool worker.

    ``task`` is ``(identity, messages, cipher_name, group_seed)``.  The
    group gets its own DRBG seeded from the derived ``group_seed``, so
    output bytes do not depend on which worker ran it or in what order.
    """
    identity, messages, cipher_name, group_seed = task
    sealed = hybrid_encrypt_many(
        _WORKER_PUBLIC,
        identity,
        list(messages),
        cipher_name=cipher_name,
        rng=HmacDrbg(group_seed),
    )
    return [ciphertext.to_bytes() for ciphertext in sealed]


class ParallelDepositRunner:
    """Fan deposit encryption out over a process pool, then ship batches.

    ``lane`` selects the executor: ``"process"`` uses a
    ``concurrent.futures.ProcessPoolExecutor`` (the real-parallel lane
    the bench gates); ``"inline"`` runs the identical group tasks
    serially in-process, which the equivalence test uses to prove the
    pool changes wall-clock only, never bytes.
    """

    def __init__(
        self,
        deployment,
        workers: int = 1,
        lane: str = "process",
        seed: bytes = b"runtime-parallel",
    ) -> None:
        if lane not in ("process", "inline"):
            raise ProtocolError(f"unknown parallel lane {lane!r}")
        if workers < 1:
            raise ProtocolError(f"parallel runner needs >= 1 worker, got {workers}")
        self._deployment = deployment
        self._workers = workers
        self._lane = lane
        self._seed = seed

    def _group_tasks(
        self, jobs: list[tuple[str, list[tuple[str, bytes]]]]
    ) -> tuple[list[tuple], list[list]]:
        """Flatten jobs into identity-group tasks plus reassembly plans."""
        config = self._deployment.config
        use_nonce = getattr(config, "use_nonce", False)
        cipher_name = getattr(config, "message_cipher", "DES")
        tasks: list[tuple] = []
        plans: list[list] = []
        for job_index, (device_id, items) in enumerate(jobs):
            nonce_rng = HmacDrbg(
                derive_seed(self._seed, b"nonce:" + device_id.encode("utf-8"))
            )
            nonces = [
                nonce_rng.randbytes(NONCE_LENGTH) if use_nonce else b""
                for _ in items
            ]
            groups: dict[bytes, list[int]] = {}
            for index, (attribute, _payload) in enumerate(items):
                identity = identity_string(attribute, nonces[index])
                groups.setdefault(identity, []).append(index)
            plan = []
            for group_index, (identity, indexes) in enumerate(groups.items()):
                group_seed = derive_seed(
                    self._seed,
                    f"group:{job_index}:{group_index}".encode("ascii"),
                )
                tasks.append(
                    (
                        identity,
                        [items[index][1] for index in indexes],
                        cipher_name,
                        group_seed,
                    )
                )
                plan.append((len(tasks) - 1, indexes))
            plans.append([nonces, plan])
        return tasks, plans

    def run(self, jobs: list[tuple[str, list[tuple[str, bytes]]]]) -> dict:
        """Encrypt all jobs through the lane, deposit, report throughput.

        Returns ``{"accepted", "rejected", "elapsed_s", "throughput",
        "lane", "workers"}``.  Throughput covers encryption *and* the
        deposit round-trips, timed with ``time.perf_counter`` (the one
        wall-clock measurement; everything else stays sim-time).
        """
        deployment = self._deployment
        config = deployment.config
        shared_keys = {
            device_id: deployment.mws.register_device(device_id)
            for device_id, _items in jobs
        }
        tasks, plans = self._group_tasks(jobs)

        started = time.perf_counter()
        if self._lane == "process":
            from concurrent.futures import ProcessPoolExecutor

            init_args = (
                config.preset,
                config.seed,
                getattr(config, "pairing_algorithm", "tate"),
                getattr(config, "use_fast_pairing", True),
                getattr(config, "crypto_cache_size", 256),
            )
            with ProcessPoolExecutor(
                max_workers=self._workers,
                initializer=_init_encrypt_worker,
                initargs=init_args,
            ) as executor:
                # Pool startup + per-worker params setup is inside the
                # timed window at every width — it is a real cost of the
                # lane, and excluding it would flatter wide pools.
                sealed_groups = list(executor.map(_encrypt_group, tasks))
        else:
            _init_encrypt_worker(
                config.preset,
                config.seed,
                getattr(config, "pairing_algorithm", "tate"),
                getattr(config, "use_fast_pairing", True),
                getattr(config, "crypto_cache_size", 256),
            )
            sealed_groups = [_encrypt_group(task) for task in tasks]

        accepted = rejected = 0
        for (device_id, items), (nonces, plan) in zip(jobs, plans):
            ciphertexts: list[bytes] = [b""] * len(items)
            for task_index, indexes in plan:
                for position, index in enumerate(indexes):
                    ciphertexts[index] = sealed_groups[task_index][position]
            entries = [
                BatchEntry(
                    attribute=items[index][0],
                    nonce=nonces[index],
                    ciphertext=ciphertexts[index],
                )
                for index in range(len(items))
            ]
            request = BatchDepositRequest(
                device_id=device_id,
                timestamp_us=deployment.clock.now_us(),
                entries=entries,
            )
            request.mac = compute_deposit_mac(
                shared_keys[device_id], request.mac_payload()
            )
            raw = deployment.sd_many_channel(device_id).request(request.to_bytes())
            receipt = BatchDepositReceipt.from_bytes(raw)
            if receipt.error:
                raise ProtocolError(
                    f"parallel deposit from {device_id!r} rejected: "
                    f"{receipt.error}"
                )
            accepted += receipt.accepted_count
            rejected += len(receipt.statuses) - receipt.accepted_count
        elapsed = time.perf_counter() - started

        return {
            "lane": self._lane,
            "workers": self._workers,
            "accepted": accepted,
            "rejected": rejected,
            "elapsed_s": round(elapsed, 6),
            "throughput": round(accepted / elapsed, 3) if elapsed > 0 else 0.0,
        }
