"""The Private Key Generator (PKG): key escrow and extraction service.

Responsibilities per the paper's Fig. 3:

* maintain the master secret ``s`` (created at :func:`repro.ibe.setup`),
* share a secret key with the Token Generator (``SecK_MWS-PKG``),
* authenticate RCs via tickets + authenticators (Kerberos-style),
* resolve the opaque AID the RC presents back to the attribute string
  (from inside the ticket — the RC never learns it) and extract
  ``sI = s * H1(A || Nonce)``.

Extensions beyond the prototype: ticket expiry, authenticator replay
cache, per-attribute deny list (the paper's future-work "certain
policies may have to be placed at the PKG"), and an extraction audit
log the EXT benches and tests read.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.conventions import identity_string
from repro.errors import (
    AccessDeniedError,
    DecodeError,
    DecryptionError,
    ReplayError,
    TicketError,
    UnknownAttributeError,
)
from repro.ibe.keys import MasterKeyPair
from repro.mathlib.rand import RandomSource, SystemRandomSource
from repro.obs.tracing import NULL_TRACER
from repro.sim.clock import Clock, SimClock
from repro.symciph.cipher import SymmetricScheme
from repro.wire.messages import (
    Authenticator,
    KeyRequest,
    KeyResponse,
    PkgAuthRequest,
    PkgAuthResponse,
    Ticket,
)

__all__ = ["PkgConfig", "PrivateKeyGenerator"]


@dataclass
class PkgConfig:
    """PKG deployment knobs."""

    #: Cipher for sealing extracted keys under the session key.
    session_cipher: str = "AES-256"
    #: Authenticator freshness window.
    max_skew_us: int = 300 * 1_000_000
    #: Attributes the PKG refuses to extract for (PKG-side policy).
    denied_attributes: set = field(default_factory=set)
    #: Maximum live sessions before the oldest is evicted.
    session_cache_size: int = 4096
    #: Optional :class:`repro.policy.revocation.RevocationRegistry`
    #: shared with the MWS (the deployment wires this).  When set, key
    #: requests are checked against the revocation list at the requested
    #: epoch, and that epoch may never exceed the ticket's.
    revocation: object | None = None


@dataclass
class _Session:
    rc_id: str
    session_key: bytes
    attribute_map: dict[int, str]
    expires_at_us: int
    #: Key epoch the ticket was issued under; extraction requests may
    #: not ask for a later one (0 for legacy/pre-lifecycle tickets).
    epoch: int = 0


class PrivateKeyGenerator:
    """Ticket-authenticated extraction of identity private keys."""

    def __init__(
        self,
        master: MasterKeyPair,
        mws_pkg_key: bytes,
        clock: Clock | None = None,
        rng: RandomSource | None = None,
        config: PkgConfig | None = None,
        registry=None,
        tracer=None,
    ) -> None:
        self._master = master
        self._mws_pkg_key = mws_pkg_key
        self._clock = clock if clock is not None else SimClock()
        self._rng = rng if rng is not None else SystemRandomSource()
        self._config = config if config is not None else PkgConfig()
        self._sessions: OrderedDict[bytes, _Session] = OrderedDict()
        self._seen_authenticators: OrderedDict[tuple[str, int], None] = OrderedDict()
        self._tracer = tracer if tracer is not None else NULL_TRACER
        #: (rc_id, attribute, nonce_hex, timestamp) extraction audit trail.
        self.audit_log: list[tuple[str, str, str, int]] = []
        stat_keys = (
            "sessions_established",
            "keys_extracted",
            "auth_failures",
            "extract_denials",
        )
        if registry is not None:
            self.stats = registry.stats_dict("pkg", stat_keys)
        else:
            self.stats = {key: 0 for key in stat_keys}

    @property
    def public_params(self):
        """The public parameters devices and RCs consume."""
        return self._master.public

    def deny_attribute(self, attribute: str) -> None:
        """PKG-side policy: refuse future extractions for ``attribute``."""
        self._config.denied_attributes.add(attribute)

    # -- phase 3a: authentication ------------------------------------------

    def handle_auth(self, request: PkgAuthRequest) -> PkgAuthResponse:
        """Open the ticket, verify the authenticator, establish a session."""
        with self._tracer.span("pkg.auth") as span:
            try:
                session = self._validate(request)
            except (TicketError, ReplayError, DecryptionError) as exc:
                self.stats["auth_failures"] += 1
                span.annotate("rejected", type(exc).__name__)
                return PkgAuthResponse(ok=False, error=str(exc))
            return self._establish(session)

    def _establish(self, session: _Session) -> PkgAuthResponse:
        session_id = self._rng.randbytes(16)
        self._sessions[session_id] = session
        while len(self._sessions) > self._config.session_cache_size:
            self._sessions.popitem(last=False)
        self.stats["sessions_established"] += 1
        return PkgAuthResponse(ok=True, session_id=session_id)

    def _validate(self, request: PkgAuthRequest) -> _Session:
        # # repro-lint: nonsecret=issued_at_us,lifetime_us,rc_id -- the
        # ticket parses out of a sealed blob (so the transitive taint
        # pass marks the whole record secret-derived), but these fields
        # are public header metadata; only session_key is key material.
        ticket_scheme = SymmetricScheme("AES-256", self._mws_pkg_key, mac=True)
        try:
            ticket = Ticket.from_bytes(ticket_scheme.open(request.sealed_ticket))
        except DecryptionError as exc:
            raise TicketError(f"ticket failed to open: {exc}") from exc
        now_us = self._clock.now_us()
        expires_at_us = ticket.issued_at_us + ticket.lifetime_us
        if now_us > expires_at_us:
            raise TicketError(
                f"ticket expired at {expires_at_us} (now {now_us})"
            )
        if ticket.rc_id != request.rc_id:
            raise TicketError(
                f"ticket issued to {ticket.rc_id!r}, presented by {request.rc_id!r}"
            )
        auth_scheme = SymmetricScheme(
            self._config.session_cipher, ticket.session_key, mac=True
        )
        try:
            authenticator = Authenticator.from_bytes(
                auth_scheme.open(request.sealed_authenticator)
            )
        except DecryptionError as exc:
            raise TicketError(f"authenticator failed to open: {exc}") from exc
        if authenticator.rc_id != request.rc_id:
            raise TicketError("authenticator identity mismatch")
        if abs(now_us - authenticator.timestamp_us) > self._config.max_skew_us:
            raise ReplayError("authenticator timestamp outside freshness window")
        replay_key = (request.rc_id, authenticator.timestamp_us)
        if replay_key in self._seen_authenticators:
            raise ReplayError("authenticator replayed")
        self._seen_authenticators[replay_key] = None
        while len(self._seen_authenticators) > 65536:
            self._seen_authenticators.popitem(last=False)
        return _Session(
            rc_id=ticket.rc_id,
            session_key=ticket.session_key,
            attribute_map=dict(ticket.attribute_map),
            expires_at_us=expires_at_us,
            epoch=ticket.epoch,
        )

    # -- phase 3b: extraction --------------------------------------------------

    def handle_key_request(self, request: KeyRequest) -> KeyResponse:
        """Resolve AID -> attribute, extract ``sI``, seal it for the RC."""
        session = self._sessions.get(request.session_id)
        if session is None:
            self.stats["extract_denials"] += 1
            return KeyResponse(ok=False, error="unknown or expired session")
        now_us = self._clock.now_us()
        if now_us > session.expires_at_us:
            self._sessions.pop(request.session_id, None)
            self.stats["extract_denials"] += 1
            return KeyResponse(ok=False, error="session ticket expired")
        attribute = session.attribute_map.get(request.attribute_id)
        if attribute is None:
            self.stats["extract_denials"] += 1
            return KeyResponse(
                ok=False,
                error=f"attribute id {request.attribute_id} not in ticket",
            )
        if attribute in self._config.denied_attributes:
            self.stats["extract_denials"] += 1
            return KeyResponse(
                ok=False, error="attribute denied by PKG policy"
            )
        if request.epoch > session.epoch:
            # A ticket issued at epoch N never authorises epoch-(N+1)
            # keys: the RC must go back through the gatekeeper — where
            # revocation already bit — to obtain a fresher ticket.
            self.stats["extract_denials"] += 1
            return KeyResponse(
                ok=False,
                error=(
                    f"epoch {request.epoch} beyond ticket epoch "
                    f"{session.epoch}"
                ),
            )
        revocation = self._config.revocation
        if revocation is not None and revocation.view().is_revoked(
            session.rc_id, attribute, epoch=request.epoch
        ):
            self.stats["extract_denials"] += 1
            if revocation.extract_denied is not None:
                revocation.extract_denied.inc()
            return KeyResponse(
                ok=False,
                error=(
                    f"identity revoked for epoch {request.epoch} "
                    "and beyond"
                ),
            )
        identity = identity_string(attribute, request.nonce, request.epoch)
        with self._tracer.span("pkg.extract_key"):
            # Cache-aware H1: repeated extractions for a popular identity
            # skip the MapToPoint cube root when a CryptoCache is attached
            # to the public parameters.
            q_point = self._master.public.hash_identity(identity)
            private_point = self._master.extract_point(q_point)
        scheme = SymmetricScheme(
            self._config.session_cipher, session.session_key, mac=True, rng=self._rng
        )
        sealed_key = scheme.seal(private_point.to_bytes())
        self.audit_log.append(
            (session.rc_id, attribute, request.nonce.hex(), now_us)
        )
        self.stats["keys_extracted"] += 1
        return KeyResponse(ok=True, sealed_key=sealed_key)

    # -- byte-level network handler ---------------------------------------------

    #: Message-type tags on the single PKG endpoint.  These are public
    #: wire-framing constants, not MAC material: the first byte of every
    #: request is attacker-chosen and dispatch *must* branch on it.
    #: ``_PUBLIC_WIRE_TAGS`` is the closed allowlist the handler checks
    #: before any parser runs; the lint annotation below records that
    #: ``tag`` in this file always means one of these constants.
    #: # repro-lint: nonsecret=tag
    TAG_AUTH = 0x01
    TAG_KEY = 0x02
    _PUBLIC_WIRE_TAGS = frozenset({TAG_AUTH, TAG_KEY})

    def handler(self, payload: bytes) -> bytes:
        """Single endpoint: first byte selects auth vs key extraction."""
        if not payload:
            return PkgAuthResponse(ok=False, error="empty request").to_bytes()
        tag, body = payload[0], payload[1:]
        if tag not in self._PUBLIC_WIRE_TAGS:
            return PkgAuthResponse(ok=False, error=f"unknown tag {tag}").to_bytes()
        if tag == self.TAG_AUTH:
            try:
                request = PkgAuthRequest.from_bytes(body)
            except DecodeError as exc:
                return PkgAuthResponse(ok=False, error=f"malformed: {exc}").to_bytes()
            return self.handle_auth(request).to_bytes()
        try:
            request = KeyRequest.from_bytes(body)
        except DecodeError as exc:
            return KeyResponse(ok=False, error=f"malformed: {exc}").to_bytes()
        return self.handle_key_request(request).to_bytes()
