"""The Private Key Generator service (the paper's trusted party)."""

from repro.pkg.service import PkgConfig, PrivateKeyGenerator

__all__ = ["PrivateKeyGenerator", "PkgConfig"]
