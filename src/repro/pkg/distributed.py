"""Threshold (distributed) PKG — paper §VIII future work.

"A form of threshold cryptography may also be considered, to create a
distributed PKG, instead of a key escrow."

The master secret ``s`` is Shamir-shared across ``n`` share servers so
that any ``t`` of them jointly extract a private key while ``t - 1``
colluding servers learn nothing about ``s``.  Extraction is
non-interactive on the client side:

* share server ``i`` returns the partial key ``s_i * Q_ID``;
* the combiner multiplies each partial by the Lagrange coefficient
  ``L_i = Δ_{i,S}(0)`` and sums:
  ``Σ L_i * (s_i * Q_ID) = (Σ L_i s_i) * Q_ID = s * Q_ID``.

Partials are verifiable against the public commitments ``s_i * P``
(a pairing check per partial), so a malicious share server cannot
corrupt the combined key undetected.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.abe.access_tree import lagrange_coefficient
from repro.errors import AuthenticationError, ParameterError
from repro.ibe.keys import MasterKeyPair, PublicParams
from repro.mathlib.rand import RandomSource, SystemRandomSource
from repro.pairing.curve import Point
from repro.pairing.hashing import hash_to_point

__all__ = ["PkgShare", "DistributedPkg", "KeyShareCombiner"]


@dataclass
class PkgShare:
    """One share server: index, secret share and public commitment."""

    index: int  # the Shamir x-coordinate, >= 1
    secret_share: int
    commitment: Point  # s_i * P, published at setup

    def extract_partial(self, q_id: Point) -> Point:
        """Return the partial private key ``s_i * Q_ID``."""
        return self.secret_share * q_id


class DistributedPkg:
    """Dealer + registry for a t-of-n shared master secret.

    Built from an existing :class:`MasterKeyPair` (the dealer splits
    ``s``), so a deployment can switch between centralised and
    distributed extraction with identical public parameters — the
    ciphertexts and ``P_pub`` do not change.
    """

    def __init__(
        self,
        master: MasterKeyPair,
        threshold: int,
        share_count: int,
        rng: RandomSource | None = None,
    ) -> None:
        if not 1 <= threshold <= share_count:
            raise ParameterError(
                f"invalid threshold {threshold} of {share_count} shares"
            )
        self._public = master.public
        self.threshold = threshold
        rng = rng if rng is not None else SystemRandomSource()
        q = self._public.params.q
        # Shamir polynomial with constant term s.
        coefficients = [master.master_secret % q] + [
            rng.randbelow(q) for _ in range(threshold - 1)
        ]
        generator = self._public.params.generator
        self.shares: list[PkgShare] = []
        for index in range(1, share_count + 1):
            value = 0
            for power, coefficient in enumerate(coefficients):
                value = (value + coefficient * pow(index, power, q)) % q
            self.shares.append(
                PkgShare(
                    index=index,
                    secret_share=value,
                    commitment=value * generator,
                )
            )

    @property
    def public(self) -> PublicParams:
        return self._public

    def commitments(self) -> dict[int, Point]:
        """Public verification keys, one per share server."""
        return {share.index: share.commitment for share in self.shares}


class KeyShareCombiner:
    """Client-side combination and verification of partial keys."""

    def __init__(self, public: PublicParams, commitments: dict[int, Point],
                 threshold: int) -> None:
        self._public = public
        self._commitments = dict(commitments)
        self._threshold = threshold

    def verify_partial(self, index: int, q_id: Point, partial: Point) -> None:
        """Check ``e(partial, P) == e(Q_ID, commitment_i)``.

        Raises :class:`AuthenticationError` for a corrupt or misrouted
        partial — this is what stops one malicious share server from
        poisoning the combined key.
        """
        commitment = self._commitments.get(index)
        if commitment is None:
            raise AuthenticationError(f"no commitment for share server {index}")
        params = self._public.params
        left = params.pair(partial, params.generator)
        right = params.pair(q_id, commitment)
        if left != right:
            raise AuthenticationError(
                f"partial key from share server {index} failed verification"
            )

    def combine(
        self,
        identity: bytes,
        partials: dict[int, Point],
        verify: bool = True,
    ) -> Point:
        """Lagrange-combine ``threshold`` partials into ``s * H1(identity)``.

        ``partials`` maps share index -> ``s_i * Q_ID``.  Extra partials
        beyond the threshold are ignored deterministically (lowest
        indices win).
        """
        if len(partials) < self._threshold:
            raise ParameterError(
                f"need {self._threshold} partials, got {len(partials)}"
            )
        params = self._public.params
        q_id = hash_to_point(params, identity)
        chosen = sorted(partials)[: self._threshold]
        if verify:
            for index in chosen:
                self.verify_partial(index, q_id, partials[index])
        combined = params.curve.infinity()
        for index in chosen:
            coefficient = lagrange_coefficient(index, chosen, 0, params.q)
            combined = combined + coefficient * partials[index]
        return combined
