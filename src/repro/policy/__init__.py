"""Attribute access-policy language (paper §VIII future work).

"The attributes that are currently used can be improved by considering
an access policy, similar to XACML standards."

A small rule language over (subject, attribute, time) with XACML's
combining algorithms.  The MMS accepts a :class:`PolicyEngine` and
filters each RC's granted attributes through it before issuing tickets,
adding a rule layer on top of the Table 1 grants.
"""

from repro.policy.evaluator import PolicyEngine
from repro.policy.language import (
    CombiningAlgorithm,
    Effect,
    Policy,
    Rule,
    parse_policy,
)
from repro.policy.revocation import (
    RevocationEntry,
    RevocationRegistry,
    RevocationView,
)

__all__ = [
    "Effect",
    "CombiningAlgorithm",
    "Rule",
    "Policy",
    "parse_policy",
    "PolicyEngine",
    "RevocationEntry",
    "RevocationRegistry",
    "RevocationView",
]
