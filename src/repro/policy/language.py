"""The policy rule language: data model and text parser.

A policy is an ordered list of rules under a combining algorithm.  A
rule has an effect (permit/deny) and a target: glob patterns over the
subject (RC identity) and attribute string, plus an optional validity
window.  Example policy text::

    # C-Services may read everything in the complex, business hours only
    permit subject=c-services attribute=*-GLENBROOK-SV-CA
    deny   subject=* attribute=GAS-*   # gas data embargoed for everyone
    permit subject=*-auditor attribute=* from=1000000 until=2000000

The format is line-oriented: ``effect key=value ...`` with ``#``
comments.  Unknown keys and malformed lines raise
:class:`repro.errors.PolicyError` with the line number.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from fnmatch import fnmatchcase

from repro.errors import PolicyError

__all__ = ["Effect", "CombiningAlgorithm", "Rule", "Policy", "parse_policy"]


class Effect(str, Enum):
    PERMIT = "permit"
    DENY = "deny"


class CombiningAlgorithm(str, Enum):
    """How rule decisions combine (the XACML trio)."""

    FIRST_APPLICABLE = "first-applicable"
    DENY_OVERRIDES = "deny-overrides"
    PERMIT_OVERRIDES = "permit-overrides"


@dataclass(frozen=True)
class Rule:
    """One rule: effect + target patterns + optional validity window."""

    effect: Effect
    subject_pattern: str = "*"
    attribute_pattern: str = "*"
    not_before_us: int | None = None
    not_after_us: int | None = None

    def matches(self, subject: str, attribute: str, now_us: int) -> bool:
        """True when this rule's target covers the request."""
        if not fnmatchcase(subject, self.subject_pattern):
            return False
        if not fnmatchcase(attribute, self.attribute_pattern):
            return False
        if self.not_before_us is not None and now_us < self.not_before_us:
            return False
        if self.not_after_us is not None and now_us > self.not_after_us:
            return False
        return True


@dataclass
class Policy:
    """An ordered rule set under a combining algorithm."""

    rules: list[Rule]
    algorithm: CombiningAlgorithm = CombiningAlgorithm.FIRST_APPLICABLE
    default_effect: Effect = Effect.DENY

    def decide(self, subject: str, attribute: str, now_us: int) -> Effect:
        """Evaluate the request; always returns a definite effect."""
        applicable = [
            rule.effect
            for rule in self.rules
            if rule.matches(subject, attribute, now_us)
        ]
        if not applicable:
            return self.default_effect
        if self.algorithm is CombiningAlgorithm.FIRST_APPLICABLE:
            return applicable[0]
        if self.algorithm is CombiningAlgorithm.DENY_OVERRIDES:
            return Effect.DENY if Effect.DENY in applicable else Effect.PERMIT
        return Effect.PERMIT if Effect.PERMIT in applicable else Effect.DENY


_RULE_KEYS = {"subject", "attribute", "from", "until"}


def parse_policy(
    text: str,
    algorithm: CombiningAlgorithm = CombiningAlgorithm.FIRST_APPLICABLE,
    default_effect: Effect = Effect.DENY,
) -> Policy:
    """Parse the line-oriented policy format (see module docstring)."""
    rules: list[Rule] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        effect_word = parts[0].lower()
        if effect_word not in (Effect.PERMIT.value, Effect.DENY.value):
            raise PolicyError(
                f"line {line_number}: expected 'permit' or 'deny', got {parts[0]!r}"
            )
        fields: dict[str, str] = {}
        for part in parts[1:]:
            if "=" not in part:
                raise PolicyError(
                    f"line {line_number}: expected key=value, got {part!r}"
                )
            key, _, value = part.partition("=")
            if key not in _RULE_KEYS:
                raise PolicyError(
                    f"line {line_number}: unknown key {key!r} "
                    f"(known: {sorted(_RULE_KEYS)})"
                )
            if key in fields:
                raise PolicyError(f"line {line_number}: duplicate key {key!r}")
            fields[key] = value
        try:
            not_before = int(fields["from"]) if "from" in fields else None
            not_after = int(fields["until"]) if "until" in fields else None
        except ValueError as exc:
            raise PolicyError(
                f"line {line_number}: from/until must be integer microseconds"
            ) from exc
        rules.append(
            Rule(
                effect=Effect(effect_word),
                subject_pattern=fields.get("subject", "*"),
                attribute_pattern=fields.get("attribute", "*"),
                not_before_us=not_before,
                not_after_us=not_after,
            )
        )
    return Policy(rules=rules, algorithm=algorithm, default_effect=default_effect)
