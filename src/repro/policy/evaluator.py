"""The policy engine the MMS consults per retrieval.

Wraps a :class:`repro.policy.language.Policy` with decision counters and
an audit trail; :meth:`is_permitted` is the single hook the MMS calls
for every (RC, attribute) pair before the attribute enters a ticket.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.policy.language import Effect, Policy

__all__ = ["PolicyEngine", "PolicyDecision"]


@dataclass
class PolicyDecision:
    """Audit record of one evaluation."""

    subject: str
    attribute: str
    now_us: int
    effect: Effect


@dataclass
class PolicyEngine:
    """Stateful wrapper: policy + audit log + counters."""

    policy: Policy
    audit: list[PolicyDecision] = field(default_factory=list)
    audit_limit: int = 100_000

    def is_permitted(self, subject: str, attribute: str, now_us: int) -> bool:
        """Evaluate and record one access decision."""
        effect = self.policy.decide(subject, attribute, now_us)
        if len(self.audit) < self.audit_limit:
            self.audit.append(
                PolicyDecision(
                    subject=subject,
                    attribute=attribute,
                    now_us=now_us,
                    effect=effect,
                )
            )
        return effect is Effect.PERMIT

    def denials(self) -> list[PolicyDecision]:
        return [d for d in self.audit if d.effect is Effect.DENY]

    def replace_policy(self, policy: Policy) -> None:
        """Hot-swap the rule set (policy updates without MWS restart)."""
        self.policy = policy
