"""Epoch-based revocation registry: the key-lifecycle state machine.

The paper's only revocation lever is the per-message nonce (§V.B): a
revoked RC keeps every key it already extracted, and containment relies
on the PKG refusing *future* extractions.  ROADMAP item 1 asks for a
real lifecycle on top — this module is its source of truth:

* **Epochs.**  Time is divided into numbered key epochs.  Identity
  derivation folds the epoch into the hashed string
  (``identity_string(A, nonce, epoch)``), so the private key for
  ``(A, nonce)`` at epoch N and at epoch N+1 are unrelated curve
  points.  Epoch 0 is the legacy single-epoch encoding — byte-identical
  to the pre-lifecycle identity string, which is what keeps old
  ciphertexts and extracted keys working (docs/REVOCATION.md §3).
* **Revocations.**  Revoking an RC (optionally scoped to one attribute)
  records the entry with ``effective_epoch = current_epoch + 1`` and
  rolls the epoch.  Everything deposited from the new epoch on is
  encrypted under identities the revoked RC can never obtain a key
  for; everything from before stays exactly as exposed as it already
  was (the paper's freeze-at-revocation property, now made epoch-wide).
* **Versioned atomic views.**  Every mutation builds a brand-new
  immutable :class:`RevocationView` and publishes it with a single
  reference assignment.  Readers (the Token Generator mid-retrieval,
  the PKG mid-extraction, the warehouse mid-batch) grab one view and
  use it for the whole request — there is no moment at which a torn
  half-applied revocation is visible, and the monotone ``version``
  stamp lets a ticket prove which policy state it was issued under.

The registry is deliberately storage-free: it is policy metadata, tiny
and rebuildable, and sharing one instance between the MWS and the PKG
(the deployment wires this) is what makes a revocation bite everywhere
in the same scheduler step.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError

__all__ = ["RevocationEntry", "RevocationView", "RevocationRegistry"]


@dataclass(frozen=True)
class RevocationEntry:
    """One revocation: ``rc_id`` loses ``attribute`` from ``effective_epoch``.

    ``attribute`` of ``None`` revokes the RC wholesale (every attribute).
    The entry never expires — un-revoking is a new grant under a fresh
    epoch, not an edit of history.
    """

    rc_id: str
    attribute: str | None
    effective_epoch: int


@dataclass(frozen=True)
class RevocationView:
    """An immutable snapshot of the whole lifecycle state.

    One view answers every policy question for one request; because the
    registry swaps views with a single reference assignment, a reader
    holding a view is immune to concurrent revocations and epoch rolls
    (it sees either all of a mutation or none of it).
    """

    #: Monotone policy version; bumps on every mutation.
    version: int
    #: The epoch new deposits/extractions should use.
    epoch: int
    #: All revocations ever recorded, in application order.
    entries: tuple[RevocationEntry, ...] = ()
    #: Deposits stamped with an epoch below this are refused (the
    #: warehouse's retirement threshold; 0 accepts all history).
    min_deposit_epoch: int = 0

    def is_revoked(self, rc_id: str, attribute: str | None = None,
                   epoch: int | None = None) -> bool:
        """Whether ``rc_id`` is revoked for ``attribute`` at ``epoch``.

        ``epoch`` defaults to the view's current epoch.  A wholesale
        entry (``attribute is None``) matches every attribute; asking
        with ``attribute=None`` matches any entry for the RC.  Epochs
        before an entry's ``effective_epoch`` are unaffected — that is
        the freeze-at-revocation property: revocation bounds *future*
        exposure, it does not rewrite the past.
        """
        at = self.epoch if epoch is None else epoch
        for entry in self.entries:
            if entry.rc_id != rc_id:
                continue
            if attribute is not None and entry.attribute is not None \
                    and entry.attribute != attribute:
                continue
            if at >= entry.effective_epoch:
                return True
        return False

    def revoked_attributes(self, rc_id: str, epoch: int | None = None) -> set[str] | None:
        """The attributes revoked for ``rc_id`` at ``epoch``.

        Returns ``None`` when a wholesale revocation applies (everything
        is revoked), otherwise the — possibly empty — set of revoked
        attribute names.
        """
        at = self.epoch if epoch is None else epoch
        revoked: set[str] = set()
        for entry in self.entries:
            if entry.rc_id != rc_id or at < entry.effective_epoch:
                continue
            if entry.attribute is None:
                return None
            revoked.add(entry.attribute)
        return revoked


class RevocationRegistry:
    """Mutable holder publishing immutable :class:`RevocationView` snapshots.

    Counters (minted when built with a :class:`MetricsRegistry`) live in
    the ``revocation.*`` family (obs dump schema v8):

    * ``revocation.revocations`` — entries recorded,
    * ``revocation.epoch_rolls`` — epoch advances,
    * ``revocation.extract_denied`` — PKG refusals on revoked pairs,
    * ``revocation.deposits_rejected`` — warehouse refusals of
      retired/future epoch stamps,
    * ``revocation.reencryptions`` — stored ciphertexts re-wrapped to
      the current epoch (lazy or background),
    * ``revocation.retrieval_filtered`` — messages withheld from a
      ticket because the requesting RC is revoked for their attribute,
    * ``revocation.current_epoch`` — gauge mirroring the epoch.
    """

    def __init__(self, registry=None) -> None:
        self._view = RevocationView(version=0, epoch=0)
        if registry is not None:
            self._revocations = registry.counter("revocation.revocations")
            self._rolls = registry.counter("revocation.epoch_rolls")
            self.extract_denied = registry.counter("revocation.extract_denied")
            self.deposits_rejected = registry.counter(
                "revocation.deposits_rejected"
            )
            self.reencryptions = registry.counter("revocation.reencryptions")
            self.retrieval_filtered = registry.counter(
                "revocation.retrieval_filtered"
            )
            self._epoch_gauge = registry.gauge("revocation.current_epoch")
        else:
            self._revocations = self._rolls = None
            self.extract_denied = self.deposits_rejected = None
            self.reencryptions = self.retrieval_filtered = None
            self._epoch_gauge = None

    # -- reads -------------------------------------------------------------

    def view(self) -> RevocationView:
        """The current snapshot (atomic: one reference read)."""
        return self._view

    @property
    def current_epoch(self) -> int:
        return self._view.epoch

    @property
    def version(self) -> int:
        return self._view.version

    def is_revoked(self, rc_id: str, attribute: str | None = None,
                   epoch: int | None = None) -> bool:
        return self._view.is_revoked(rc_id, attribute, epoch)

    # -- mutations (each publishes one new immutable view) ------------------

    def _publish(self, view: RevocationView) -> RevocationView:
        if self._epoch_gauge is not None:
            self._epoch_gauge.set(view.epoch)
        # Single reference assignment: readers see the old complete view
        # or the new complete view, never a mixture.
        self._view = view
        return view

    def roll_epoch(self) -> int:
        """Advance to the next epoch; returns the new epoch number."""
        old = self._view
        view = self._publish(
            RevocationView(
                version=old.version + 1,
                epoch=old.epoch + 1,
                entries=old.entries,
                min_deposit_epoch=old.min_deposit_epoch,
            )
        )
        if self._rolls is not None:
            self._rolls.inc()
        return view.epoch

    def revoke(self, rc_id: str, attribute: str | None = None,
               roll: bool = True) -> RevocationEntry:
        """Record a revocation effective from the *next* epoch.

        With ``roll`` (the default) the epoch advances in the same
        atomic publish, so the revocation bites immediately: the very
        next deposit is encrypted under an epoch the revoked RC has no
        key path to.  ``roll=False`` queues the entry for an explicit
        later :meth:`roll_epoch` — several revocations can then share
        one roll (the mid-batch churn pattern the bench drives).
        """
        old = self._view
        entry = RevocationEntry(
            rc_id=rc_id,
            attribute=attribute,
            effective_epoch=old.epoch + 1,
        )
        self._publish(
            RevocationView(
                version=old.version + 1,
                epoch=old.epoch + 1 if roll else old.epoch,
                entries=old.entries + (entry,),
                min_deposit_epoch=old.min_deposit_epoch,
            )
        )
        if self._revocations is not None:
            self._revocations.inc()
        if roll and self._rolls is not None:
            self._rolls.inc()
        return entry

    def retire_before(self, epoch: int) -> None:
        """Refuse future deposits stamped with an epoch below ``epoch``.

        Raising the threshold is how an operator ends the interop window
        for long-retired epochs; it never exceeds the current epoch (a
        warehouse that refuses the *current* epoch accepts nothing).
        """
        old = self._view
        if epoch > old.epoch:
            raise ParameterError(
                f"cannot retire epoch {epoch}: current epoch is {old.epoch}"
            )
        if epoch < old.min_deposit_epoch:
            raise ParameterError(
                f"retirement threshold only advances "
                f"({old.min_deposit_epoch} -> {epoch})"
            )
        self._publish(
            RevocationView(
                version=old.version + 1,
                epoch=old.epoch,
                entries=old.entries,
                min_deposit_epoch=epoch,
            )
        )
