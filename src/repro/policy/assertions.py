"""Signed identity assertions — the paper's §VIII "SAML" hook.

"The basic architecture the MWS should be enhanced so that it can
easily encompass Web Security standards such as SAML and XACML."

This module is the SAML-shaped half (XACML-shaped policies live in
:mod:`repro.policy.language`): an identity provider (IdP) issues signed
assertions binding a subject to attributes for a validity window; the
MWS gatekeeper can accept an assertion instead of the password blob, so
enterprise RCs authenticate through their existing IdP while devices
and the rest of the protocol are untouched.

The assertion is deliberately minimal — subject, issuer, audience,
attribute statements, validity, one RSA signature over a canonical
encoding — i.e. the part of SAML the protocol actually consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AuthenticationError, DecodeError
from repro.mathlib.rand import RandomSource
from repro.pki.rsa import RsaKeyPair, RsaPublicKey, generate_rsa_keypair
from repro.sim.clock import Clock
from repro.wire.encoding import Reader, Writer

__all__ = ["IdentityAssertion", "IdentityProvider", "AssertionValidator"]


@dataclass
class IdentityAssertion:
    """A signed statement: ``issuer`` says ``subject`` has ``attributes``."""

    subject: str
    issuer: str
    audience: str
    attributes: dict[str, str]
    not_before_us: int
    not_after_us: int
    assertion_id: bytes = b""
    signature: bytes = b""

    def signed_payload(self) -> bytes:
        """The exact bytes covered by the signature."""
        writer = (
            Writer()
            .text(self.subject)
            .text(self.issuer)
            .text(self.audience)
            .u64(self.not_before_us)
            .u64(self.not_after_us)
            .blob(self.assertion_id)
            .u32(len(self.attributes))
        )
        for key in sorted(self.attributes):
            writer.text(key).text(self.attributes[key])
        return writer.getvalue()

    def to_bytes(self) -> bytes:
        """Serialise to the canonical byte encoding."""
        return Writer().blob(self.signed_payload()).blob(self.signature).getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "IdentityAssertion":
        """Parse an instance from its canonical byte encoding."""
        outer = Reader(data)
        payload = outer.blob()
        signature = outer.blob()
        outer.finish()
        reader = Reader(payload)
        subject = reader.text()
        issuer = reader.text()
        audience = reader.text()
        not_before_us = reader.u64()
        not_after_us = reader.u64()
        assertion_id = reader.blob()
        count = reader.u32()
        attributes = {}
        for _ in range(count):
            key = reader.text()
            attributes[key] = reader.text()
        reader.finish()
        return cls(
            subject=subject,
            issuer=issuer,
            audience=audience,
            attributes=attributes,
            not_before_us=not_before_us,
            not_after_us=not_after_us,
            assertion_id=assertion_id,
            signature=signature,
        )


class IdentityProvider:
    """An IdP: holds a signing key, issues assertions for its subjects."""

    DEFAULT_LIFETIME_US = 600 * 1_000_000  # 10 minutes

    def __init__(
        self,
        name: str,
        clock: Clock,
        rng: RandomSource,
        keypair: RsaKeyPair | None = None,
        rsa_bits: int = 768,
    ) -> None:
        self.name = name
        self._clock = clock
        self._rng = rng
        self._keypair = (
            keypair if keypair is not None else generate_rsa_keypair(rsa_bits, rng=rng)
        )
        self.stats = {"assertions_issued": 0}

    @property
    def public_key(self) -> RsaPublicKey:
        return self._keypair.public

    def issue(
        self,
        subject: str,
        audience: str,
        attributes: dict[str, str] | None = None,
        lifetime_us: int | None = None,
    ) -> IdentityAssertion:
        """Sign a fresh assertion for ``subject`` toward ``audience``."""
        now_us = self._clock.now_us()
        lifetime_us = (
            lifetime_us if lifetime_us is not None else self.DEFAULT_LIFETIME_US
        )
        assertion = IdentityAssertion(
            subject=subject,
            issuer=self.name,
            audience=audience,
            attributes=dict(attributes or {}),
            not_before_us=now_us,
            not_after_us=now_us + lifetime_us,
            assertion_id=self._rng.randbytes(16),
        )
        assertion.signature = self._keypair.private.sign(assertion.signed_payload())
        self.stats["assertions_issued"] += 1
        return assertion


class AssertionValidator:
    """Service-side validation: trusted issuers, audience, window, replay."""

    def __init__(
        self,
        audience: str,
        clock: Clock,
        trusted_issuers: dict[str, RsaPublicKey] | None = None,
        replay_cache_size: int = 65536,
    ) -> None:
        self._audience = audience
        self._clock = clock
        self._trusted: dict[str, RsaPublicKey] = dict(trusted_issuers or {})
        self._seen_ids: dict[bytes, None] = {}
        self._replay_cache_size = replay_cache_size
        self.stats = {"accepted": 0, "rejected": 0}

    def trust(self, issuer: str, public_key: RsaPublicKey) -> None:
        """Register an IdP's verification key."""
        self._trusted[issuer] = public_key

    def validate(self, assertion: IdentityAssertion) -> None:
        """Raise :class:`AuthenticationError` on any defect; None if valid.

        Checks, in order: trusted issuer, signature, audience, validity
        window, single-use assertion id.
        """
        try:
            self._validate(assertion)
        except AuthenticationError:
            self.stats["rejected"] += 1
            raise
        self.stats["accepted"] += 1

    def _validate(self, assertion: IdentityAssertion) -> None:
        issuer_key = self._trusted.get(assertion.issuer)
        if issuer_key is None:
            raise AuthenticationError(
                f"assertion issuer {assertion.issuer!r} is not trusted"
            )
        if not issuer_key.verify(assertion.signed_payload(), assertion.signature):
            raise AuthenticationError("assertion signature invalid")
        if assertion.audience != self._audience:
            raise AuthenticationError(
                f"assertion audience {assertion.audience!r} is not "
                f"{self._audience!r}"
            )
        now_us = self._clock.now_us()
        if not assertion.not_before_us <= now_us <= assertion.not_after_us:
            raise AuthenticationError("assertion outside its validity window")
        if assertion.assertion_id in self._seen_ids:
            raise AuthenticationError("assertion replayed")
        self._seen_ids[assertion.assertion_id] = None
        while len(self._seen_ids) > self._replay_cache_size:
            self._seen_ids.pop(next(iter(self._seen_ids)))
