"""Command-line interface: ``python -m repro <command>``.

The paper's prototype was operated by starting four servers and a web
form; this CLI is the equivalent operational surface:

* ``repro demo``    — run the end-to-end quickstart flow and print each step.
* ``repro serve``   — start the MWS-SD / MWS-Client / PKG TCP servers.
* ``repro params``  — list or validate pairing parameter presets, or
  generate fresh parameters.
* ``repro table1``  — print the reproduced paper Table 1.
* ``repro crypto-check`` — self-test every primitive against its test
  vectors (useful on a new machine).
* ``repro lint``    — run the project static analyzer (crypto hygiene,
  protocol invariants; see docs/ANALYSIS.md).
"""

from __future__ import annotations

import argparse
import sys
import time

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="End-to-end confidential message warehousing with IBE "
        "(ICDE Workshops 2010 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser("demo", help="run the end-to-end demo flow")
    demo.add_argument("--preset", default="TEST80")
    demo.add_argument("--cipher", default="DES",
                      choices=["DES", "3DES", "AES-128", "AES-192", "AES-256"])
    demo.add_argument("--messages", type=int, default=3)

    serve = subparsers.add_parser("serve", help="serve the endpoints over TCP")
    serve.add_argument("--preset", default="TEST80")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--duration", type=float, default=None,
                       help="seconds to serve (default: until Ctrl-C)")

    params = subparsers.add_parser("params", help="inspect pairing parameters")
    params.add_argument("--preset", default=None, help="validate one preset")
    params.add_argument("--generate", action="store_true",
                        help="generate fresh parameters")
    params.add_argument("--q-bits", type=int, default=80)
    params.add_argument("--p-bits", type=int, default=160)

    subparsers.add_parser("table1", help="print the reproduced paper Table 1")
    subparsers.add_parser("crypto-check",
                          help="self-test primitives against known vectors")

    bench = subparsers.add_parser(
        "bench", help="micro-benchmarks; writes a BENCH_*.json trajectory file"
    )
    bench.add_argument("target",
                       choices=["pairing", "scale", "availability",
                                "revocation"],
                       help="'pairing': legacy vs fast-path pairing and the "
                       "FIG4-style deposit phase; 'scale': fleet load "
                       "generation against a sharded warehouse with batched "
                       "deposits and paged retrieval; 'availability': "
                       "replicated-warehouse conservation under seeded "
                       "fault plans plus online-rebalance p99 latency; "
                       "'revocation': epoch rolls and RC revocations "
                       "churning under fleet load — revoked RCs must stay "
                       "blocked and lazy re-encryption must conserve the "
                       "origin-ciphertext multiset on every fault plan")
    bench.add_argument("--preset", default=None,
                       help="pairing preset (default: TEST80 for 'pairing', "
                       "TOY64 for 'scale')")
    bench.add_argument("--pairings", type=int, default=20,
                       help="pairing evaluations per timed variant")
    bench.add_argument("--messages", type=int, default=20,
                       help="deposits per timed deposit-phase variant")
    bench.add_argument("--shards", type=int, default=None,
                       help="message-warehouse shard count (default: 4 for "
                       "'scale', 2 for 'availability' so the rebalance "
                       "plans actually relocate attributes)")
    bench.add_argument("--meters", type=int, default=2,
                       help="scale: meters per kind (fleet size / 3)")
    bench.add_argument("--batch-size", type=int, default=8,
                       help="scale: readings deposited per device batch")
    bench.add_argument("--timing-batch", type=int, default=64,
                       help="scale: messages in the batched-vs-sequential "
                       "timing comparison")
    bench.add_argument("--page-size", type=int, default=16,
                       help="scale: page size for the retrieval sweep")
    bench.add_argument("--seed", default="repro-scale",
                       help="scale: deployment/fleet seed")
    bench.add_argument("--workers", type=int, default=1,
                       help="scale: worker count for the concurrency "
                       "lanes (simulated pool + process-pool sweep)")
    bench.add_argument("--parallel-messages", type=int, default=48,
                       help="scale: messages per width in the "
                       "real-parallel throughput sweep")
    bench.add_argument("--replicas", type=int, default=2,
                       help="availability: copies per shard (>= 2 so "
                       "failover has a follower to promote)")
    bench.add_argument("--quorum", type=int, default=None,
                       help="availability: acks per mutation "
                       "(default: majority)")
    bench.add_argument("--devices", type=int, default=3,
                       help="availability: devices in the workload")
    bench.add_argument("--latency-samples", type=int, default=400,
                       help="availability: per-store latency samples "
                       "per timing block")
    bench.add_argument("--p99-bound", type=float, default=3.0,
                       help="availability: acceptance bound on "
                       "p99(rebalance)/p99(steady)")
    bench.add_argument("--sanitize", action="store_true",
                       help="availability/revocation: run every fault plan "
                       "under the deterministic ownership sanitizer "
                       "(cross-task shard/queue access raises "
                       "SanitizerError)")
    bench.add_argument("--reencrypt-every", type=int, default=5,
                       help="revocation: scheduler steps between background "
                       "re-encryption sweeps")
    bench.add_argument("--reencrypt-batch", type=int, default=4,
                       help="revocation: records re-wrapped per sweep")
    bench.add_argument("--out", default=None,
                       help="output JSON path ('-' for stdout only; default: "
                       "BENCH_<target>.json)")
    bench.add_argument("--indent", type=int, default=2)

    gate = subparsers.add_parser(
        "bench-gate",
        help="compare a fresh bench run against a committed baseline and "
        "fail on regression",
    )
    gate.add_argument("baseline", help="committed BENCH_*.json to gate against")
    gate.add_argument("current", help="freshly produced BENCH_*.json")
    gate.add_argument("--max-regression", type=float, default=0.25,
                      help="allowed fractional drop in each gated ratio "
                      "(default 0.25 = 25%%)")
    gate.add_argument("--only", choices=["all", "ratios", "budgets"],
                      default="all",
                      help="restrict the gate to speedup ratios or "
                      "op-count budgets (default: both)")

    obs = subparsers.add_parser(
        "obs", help="observability: dump metrics/traces/crypto profiles"
    )
    obs.add_argument("action", choices=["dump"],
                     help="'dump': run a workload, emit the obs dump JSON")
    obs.add_argument("--preset", default="TOY64")
    obs.add_argument("--seed", default="repro-obs-dump",
                     help="deployment seed (same seed => byte-identical dump)")
    obs.add_argument("--messages", type=int, default=5)
    obs.add_argument("--drop", type=float, default=0.0)
    obs.add_argument("--duplicate", type=float, default=0.0)
    obs.add_argument("--corrupt", type=float, default=0.0)
    obs.add_argument("--retries", type=int, default=0,
                     help="max retry attempts per operation (0: no retries)")
    obs.add_argument("--indent", type=int, default=None,
                     help="pretty-print with this indent (default: compact)")
    obs.add_argument("--out", default=None,
                     help="write the JSON here instead of stdout")

    lint = subparsers.add_parser(
        "lint",
        help="static analysis: crypto-hygiene and protocol-invariant rules",
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(lint)
    return parser


def _cmd_demo(args) -> int:
    from repro.core.deployment import Deployment, DeploymentConfig

    print(f"building deployment (preset={args.preset}, cipher={args.cipher})...")
    deployment = Deployment.build(
        DeploymentConfig(preset=args.preset, message_cipher=args.cipher)
    )
    device = deployment.new_smart_device("cli-meter-001")
    client = deployment.new_receiving_client(
        "cli-utility", "cli-password", attributes=["CLI-DEMO-ATTR"]
    )
    print(f"registered device {device.device_id!r} and client {client.rc_id!r}")
    for index in range(args.messages):
        body = f"reading={40 + index}.{index}kWh;seq={index}".encode()
        response = device.deposit(
            deployment.sd_channel(device.device_id), "CLI-DEMO-ATTR", body
        )
        print(f"deposited message {response.message_id}: {len(body)} bytes plaintext")
    messages = client.retrieve_and_decrypt(
        deployment.rc_mws_channel(client.rc_id),
        deployment.rc_pkg_channel(client.rc_id),
    )
    for message in messages:
        print(f"decrypted {message.message_id}: {message.plaintext.decode()}")
    print(f"PKG extractions audited: {len(deployment.pkg.audit_log)}")
    print("demo complete")
    return 0


def _cmd_serve(args) -> int:
    from repro.core.deployment import Deployment, DeploymentConfig
    from repro.sim.sockets import serve_deployment

    deployment = Deployment.build(DeploymentConfig(preset=args.preset))
    served = serve_deployment(deployment, host=args.host)
    for name, (host, port) in served.addresses().items():
        print(f"{name}: {host}:{port}")
    print("serving (Ctrl-C to stop)", flush=True)
    try:
        if args.duration is not None:
            time.sleep(args.duration)
        else:  # pragma: no cover - interactive path
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover
        pass
    finally:
        served.stop()
        print("stopped")
    return 0


def _cmd_params(args) -> int:
    from repro.pairing import PRESETS, generate_params, get_preset

    if args.generate:
        print(f"generating p~2^{args.p_bits}, q~2^{args.q_bits}...")
        params = generate_params(q_bits=args.q_bits, p_bits=args.p_bits)
        params.validate()
        print(f"p = {hex(params.p)}")
        print(f"q = {hex(params.q)}")
        print("validated: OK")
        return 0
    names = [args.preset] if args.preset else sorted(PRESETS)
    for name in names:
        params = get_preset(name)
        started = time.perf_counter()
        params.validate()
        elapsed = time.perf_counter() - started
        print(
            f"{name:10} p:{params.p.bit_length():4} bits  "
            f"q:{params.q.bit_length():4} bits  validate: {elapsed * 1000:.1f} ms"
        )
    return 0


def _cmd_table1(_args) -> int:
    from repro.storage.policy_db import PolicyDatabase

    policy_db = PolicyDatabase()
    for identity, attribute in [
        ("IDRC1", "A1"), ("IDRC1", "A2"), ("IDRC2", "A1"),
        ("IDRC3", "A3"), ("IDRC4", "A4"),
    ]:
        policy_db.grant(identity, attribute)
    print(f"{'Identity':10}{'Attribute':12}{'Attribute ID'}")
    for row in policy_db.table():
        print(f"{row.identity:10}{row.attribute:12}{row.attribute_id}")
    return 0


def _cmd_crypto_check(_args) -> int:
    from repro.hashes import sha1, sha256, md5, crc32, hmac_sha256
    from repro.symciph import AES, DES
    from repro.pairing import get_preset

    checks = []
    checks.append((
        "SHA-1", sha1(b"abc").hex() == "a9993e364706816aba3e25717850c26c9cd0d89d"
    ))
    checks.append((
        "SHA-256",
        sha256(b"abc").hex()
        == "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
    ))
    checks.append(("MD5", md5(b"abc").hex() == "900150983cd24fb0d6963f7d28e17f72"))
    checks.append(("CRC-32", crc32(b"123456789") == 0xCBF43926))
    checks.append((
        "HMAC-SHA-256",
        hmac_sha256(b"\x0b" * 20, b"Hi There").hex().startswith("b0344c61d8db"),
    ))
    checks.append((
        "DES",
        DES(bytes.fromhex("133457799BBCDFF1"))
        .encrypt_block(bytes.fromhex("0123456789ABCDEF"))
        .hex()
        .upper()
        == "85E813540F0AB405",
    ))
    checks.append((
        "AES-128",
        AES(bytes(range(16)))
        .encrypt_block(bytes.fromhex("00112233445566778899aabbccddeeff"))
        .hex()
        == "69c4e0d86a7b0430d8cdb78070b4c55a",
    ))
    params = get_preset("TOY64")
    generator = params.generator
    pairing_ok = (
        params.pair(3 * generator, 5 * generator)
        == params.pair(generator, generator) ** 15
    )
    checks.append(("pairing bilinearity", pairing_ok))

    failed = 0
    for name, ok in checks:
        print(f"{name:22} {'OK' if ok else 'FAIL'}")
        failed += 0 if ok else 1
    return 1 if failed else 0


def _cmd_bench(args) -> int:
    """Dispatch to the selected benchmark target."""
    if args.target == "availability":
        return _bench_availability(args)
    if args.target == "revocation":
        return _bench_revocation(args)
    if args.target == "scale":
        return _bench_scale(args)
    return _bench_pairing(args)


def _bench_pairing(args) -> int:
    """Benchmark the pairing fast path and record a perf trajectory file.

    Five sections, mirroring the ISSUE acceptance criteria:

    * ``pairing``   — wall-clock per pairing: legacy affine Miller loop vs
      the projective fast path vs fixed-argument evaluation (on the
      preset's default field backend).
    * ``backend``   — the same fast path on each field backend, plus the
      ``montgomery_speedup`` ratio CI gates on.
    * ``inversions`` — *deterministic* obs-counter budgets: field
      inversions per pairing on each path (what CI gates on).
    * ``opcounts``  — machine-independent base-field operation counts per
      fast-path pairing on each backend (the ``bench-gate --only
      budgets`` quantities; identical on every host).
    * ``deposit_phase`` — FIG4-style SD deposit build: legacy
      (no fast path, no cache) vs fast+cache with per-message nonces vs
      warm cache with a repeated static identity.
    """
    import json

    from repro.core.deployment import Deployment, DeploymentConfig
    from repro.mathlib.rand import HmacDrbg
    from repro.obs.crypto import profiled
    from repro.pairing import FixedArgumentTate, get_preset

    preset = args.preset if args.preset else "TEST80"
    out = args.out if args.out is not None else "BENCH_pairing.json"
    params = get_preset(preset)
    school = get_preset(preset, field_backend="schoolbook")
    rng = HmacDrbg(b"repro-bench-pairing")
    scalars = [
        (params.random_scalar(rng), params.random_scalar(rng))
        for _ in range(max(2, args.pairings))
    ]
    pairs = [(a * params.generator, b * params.generator) for a, b in scalars]
    school_pairs = [
        (a * school.generator, b * school.generator) for a, b in scalars
    ]

    def per_op(point_pairs, callback) -> float:
        started = time.perf_counter()
        for a, b in point_pairs:
            callback(a, b)
        return (time.perf_counter() - started) / len(point_pairs)

    legacy_s = per_op(pairs, lambda a, b: params.pair(a, b, fast=False))
    fast_s = per_op(pairs, lambda a, b: params.pair(a, b, fast=True))
    school_fast_s = per_op(
        school_pairs, lambda a, b: school.pair(a, b, fast=True)
    )
    engine = FixedArgumentTate(pairs[0][0], params.q, params.ext_curve)
    started = time.perf_counter()
    for _, b in pairs:
        engine(params.distort(b))
    fixed_s = (time.perf_counter() - started) / len(pairs)

    with profiled() as legacy_ops:
        params.pair(*pairs[0], fast=False)
    with profiled() as fast_ops:
        params.pair(*pairs[0], fast=True)
    with profiled() as school_fast_ops:
        school.pair(*school_pairs[0], fast=True)
    legacy_inv = legacy_ops.fp2_inv + legacy_ops.fp_inversions
    fast_inv = fast_ops.fp2_inv + fast_ops.fp_inversions

    def deposit_per_msg(use_fast: bool, cache_size: int, use_nonce: bool) -> float:
        from repro.pairing import curve as curve_mod

        deployment = Deployment.build(
            DeploymentConfig(
                preset=preset,
                seed=b"repro-bench-fig4",
                use_fast_pairing=use_fast,
                crypto_cache_size=cache_size,
                use_nonce=use_nonce,
            )
        )
        try:
            device = deployment.new_smart_device("bench-meter")
            body = b"reading=42.0kWh;bench"
            if not use_nonce:
                device.build_deposit("BENCH-ATTR", body)  # prime the cache
            # The legacy lane also routes scalar mults through the
            # original affine ladder, so the baseline matches the
            # pre-optimisation code rather than half of the fast path.
            curve_mod.USE_WNAF = use_fast
            started = time.perf_counter()
            for _ in range(args.messages):
                device.build_deposit("BENCH-ATTR", body)
            return (time.perf_counter() - started) / args.messages
        finally:
            curve_mod.USE_WNAF = True
            deployment.close()

    legacy_msg_s = deposit_per_msg(use_fast=False, cache_size=0, use_nonce=True)
    fast_msg_s = deposit_per_msg(use_fast=True, cache_size=256, use_nonce=True)
    warm_msg_s = deposit_per_msg(use_fast=True, cache_size=256, use_nonce=False)

    dump = {
        "bench": "pairing",
        # v2: adds the ``backend`` wall-clock comparison and the
        # machine-independent ``opcounts`` section; ``meta`` records the
        # preset's default field backend.  Strictly additive over v1.
        "schema_version": 2,
        "meta": {
            "preset": preset,
            "field_backend": params.field_backend,
            "pairings": len(pairs),
            "messages": args.messages,
        },
        "pairing": {
            "legacy_ms_per_op": round(legacy_s * 1e3, 3),
            "fast_ms_per_op": round(fast_s * 1e3, 3),
            "fixed_arg_ms_per_op": round(fixed_s * 1e3, 3),
            "speedup": round(legacy_s / fast_s, 2),
        },
        "backend": {
            "schoolbook_fast_ms_per_op": round(school_fast_s * 1e3, 3),
            "montgomery_fast_ms_per_op": round(fast_s * 1e3, 3),
            "montgomery_speedup": round(school_fast_s / fast_s, 2),
        },
        "inversions": {
            "legacy_per_pairing": legacy_inv,
            "fast_per_pairing": fast_inv,
            "ratio": round(legacy_inv / fast_inv, 1),
        },
        "opcounts": {
            "montgomery_fp_muls": fast_ops.fp_muls,
            "montgomery_fp_sqrs": fast_ops.fp_sqrs,
            "montgomery_fp_adds": fast_ops.fp_adds,
            "montgomery_fp2_muls": fast_ops.fp2_mul,
            "schoolbook_fp_muls": school_fast_ops.fp_muls,
            "schoolbook_fp_sqrs": school_fast_ops.fp_sqrs,
            "schoolbook_fp_adds": school_fast_ops.fp_adds,
            "schoolbook_fp2_muls": school_fast_ops.fp2_mul,
        },
        "deposit_phase": {
            "legacy_ms_per_msg": round(legacy_msg_s * 1e3, 3),
            "fast_ms_per_msg": round(fast_msg_s * 1e3, 3),
            "warm_cache_ms_per_msg": round(warm_msg_s * 1e3, 3),
            "speedup": round(legacy_msg_s / fast_msg_s, 2),
            "warm_speedup": round(legacy_msg_s / warm_msg_s, 2),
        },
    }
    text = json.dumps(dump, sort_keys=True, indent=args.indent) + "\n"
    if out != "-":
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {out}")
    else:
        sys.stdout.write(text)
    print(
        f"pairing: {legacy_s * 1e3:.2f} -> {fast_s * 1e3:.2f} ms/op "
        f"({legacy_s / fast_s:.1f}x); inversions {legacy_inv} -> {fast_inv} "
        f"({legacy_inv / fast_inv:.0f}x); deposit {legacy_msg_s * 1e3:.2f} -> "
        f"{fast_msg_s * 1e3:.2f} ms/msg ({legacy_msg_s / fast_msg_s:.1f}x, "
        f"warm {legacy_msg_s / warm_msg_s:.1f}x)"
    )
    print(
        f"backend: schoolbook {school_fast_s * 1e3:.2f} -> montgomery "
        f"{fast_s * 1e3:.2f} ms/op ({school_fast_s / fast_s:.1f}x); "
        f"fp muls {school_fast_ops.fp_muls} -> {fast_ops.fp_muls}, "
        f"adds {school_fast_ops.fp_adds} -> {fast_ops.fp_adds}"
    )
    return 0


def _bench_scale(args) -> int:
    """Run the fleet load harness and write ``BENCH_scale.json``.

    Exit status reflects the run's own invariants: a conservation or
    retrieval-completeness failure is an error even before any CI
    assertion looks at the JSON.
    """
    import json

    from repro.sim.loadgen import ScaleConfig, run_scale

    dump = run_scale(
        ScaleConfig(
            shards=args.shards if args.shards is not None else 4,
            meters_per_kind=args.meters,
            batch_size=args.batch_size,
            timing_batch=args.timing_batch,
            page_size=args.page_size,
            preset=args.preset if args.preset else "TOY64",
            seed=args.seed.encode(),
            workers=args.workers,
            parallel_messages=args.parallel_messages,
        )
    )
    out = args.out if args.out is not None else "BENCH_scale.json"
    text = json.dumps(dump, sort_keys=True, indent=args.indent) + "\n"
    if out != "-":
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {out}")
    else:
        sys.stdout.write(text)
    timing = dump["batch_timing"]
    print(
        f"deposits: {dump['deposits']['accepted']} accepted across "
        f"{dump['meta']['shards']} shards {dump['shards']['counts']}; "
        f"retrieval: {dump['retrieval']['messages']} messages in "
        f"{dump['retrieval']['pages']} pages; batch "
        f"{timing['sequential_ms_per_msg']} -> {timing['batched_ms_per_msg']} "
        f"ms/msg ({timing['speedup']}x)"
    )
    simulated = dump["simulated"]
    parallel = dump["parallel"]
    print(
        f"simulated pool ({simulated['workers']} workers): "
        f"{simulated['accepted']} accepted, {simulated['crashes']} crashes, "
        f"fingerprint {simulated['fingerprint'][:16]}; parallel lane "
        f"({parallel['lane']}): {parallel['throughput']} msg/s, "
        f"speedup {parallel['speedup']}x on {parallel['cpu_count']} cpu(s)"
    )
    if not dump["shards"]["conservation_ok"]:
        print("FAIL: per-shard counts do not sum to accepted deposits")
        return 1
    if not dump["retrieval"]["complete"]:
        print("FAIL: paged retrieval did not return every accepted message")
        return 1
    if not simulated["conservation_ok"]:
        print("FAIL: simulated worker pool lost or duplicated messages")
        return 1
    # The near-linear-scaling floor is only meaningful where the cores
    # exist to scale onto; a 1-cpu laptop still runs the sweep but only
    # CI (4 vcpus) enforces the ratio.
    import os

    if args.workers >= 4 and (os.cpu_count() or 1) >= args.workers:
        if parallel["speedup"] < 1.6:
            print(
                f"FAIL: parallel lane speedup {parallel['speedup']}x at "
                f"{args.workers} workers is below the 1.6x floor"
            )
            return 1
    return 0


def _bench_availability(args) -> int:
    """Run the replicated-availability harness; write ``BENCH_availability.json``.

    Exit status enforces the ISSUE 7 acceptance bar directly: every
    seeded fault plan must conserve the message multiset with
    byte-identical ciphertexts and a reproducible transcript, and the
    online-rebalance p99 store latency must stay within ``--p99-bound``
    of steady state.
    """
    import json

    from repro.sim.availability import AvailabilityConfig, run_availability

    dump = run_availability(
        AvailabilityConfig(
            shards=args.shards if args.shards is not None else 2,
            replicas=args.replicas,
            quorum=args.quorum,
            workers=args.workers if args.workers > 1 else 2,
            devices=args.devices,
            batch_size=args.batch_size,
            page_size=args.page_size,
            preset=args.preset if args.preset else "TOY64",
            seed=args.seed.encode()
            if args.seed != "repro-scale"
            else b"repro-availability",
            latency_samples=args.latency_samples,
            p99_bound=args.p99_bound,
            sanitize=args.sanitize,
        )
    )
    out = args.out if args.out is not None else "BENCH_availability.json"
    text = json.dumps(dump, sort_keys=True, indent=args.indent) + "\n"
    if out != "-":
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {out}")
    else:
        sys.stdout.write(text)

    for row in dump["fault_plans"]:
        print(
            f"plan {row['plan']}: accepted {row['accepted']}, "
            f"failovers {row['failovers']}, crashes {row['crashes']}, "
            f"moves {row['rebalance_moves']}, "
            f"{'ok' if row['ok'] else 'FAILED'}"
        )
    latency = dump["rebalance_latency"]
    print(
        f"rebalance p99: steady {latency['steady_p99_ms']} ms -> "
        f"during drain {latency['rebalance_p99_ms']} ms "
        f"(ratio {latency['p99_ratio']}x, bound {latency['bound']}x)"
    )
    failed = [row["plan"] for row in dump["fault_plans"] if not row["ok"]]
    if failed:
        print(f"FAIL: fault plan(s) broke conservation: {', '.join(failed)}")
        return 1
    if not latency["within_bound"]:
        print(
            f"FAIL: rebalance p99 ratio {latency['p99_ratio']}x exceeds "
            f"{latency['bound']}x bound"
        )
        return 1
    return 0


def _bench_revocation(args) -> int:
    """Run the revocation-churn harness; write ``BENCH_revocation.json``.

    Exit status enforces the lifecycle acceptance bar directly: every
    plan must conserve the origin-ciphertext multiset with a
    reproducible transcript, a non-revoked RC must decrypt everything
    (including post-roll deposits), and **every** revoked-access probe
    must be blocked — a single revoked RC reaching a post-revocation
    deposit fails the run regardless of what the JSON gate would say.
    """
    import json

    from repro.sim.revocation import RevocationConfig, run_revocation

    dump = run_revocation(
        RevocationConfig(
            shards=args.shards if args.shards is not None else 2,
            replicas=args.replicas,
            quorum=args.quorum,
            workers=args.workers if args.workers > 1 else 2,
            devices=args.devices,
            batch_size=args.batch_size,
            page_size=args.page_size,
            preset=args.preset if args.preset else "TOY64",
            seed=args.seed.encode()
            if args.seed != "repro-scale"
            else b"repro-revocation",
            reencrypt_every=args.reencrypt_every,
            reencrypt_batch=args.reencrypt_batch,
            sanitize=args.sanitize,
        )
    )
    out = args.out if args.out is not None else "BENCH_revocation.json"
    text = json.dumps(dump, sort_keys=True, indent=args.indent) + "\n"
    if out != "-":
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {out}")
    else:
        sys.stdout.write(text)

    for row in dump["plans"]:
        print(
            f"plan {row['plan']}: accepted {row['accepted']}, rolls "
            f"{row['epoch_rolls']} -> epoch {row['final_epoch']}, rewraps "
            f"{row['reencrypt_moves']}, blocked "
            f"{row['revoked_blocked']}/{row['revoked_attempts']}, "
            f"decrypted {row['decrypted']}, "
            f"{'ok' if row['ok'] else 'FAILED'}"
        )
    summary = dump["summary"]
    print(
        f"revocation: {summary['revoked_blocked']}/"
        f"{summary['revoked_attempts']} probes blocked, "
        f"{summary['reencrypt_moves_total']} re-wraps across "
        f"{summary['plans']} plans (ok_fraction {summary['ok_fraction']})"
    )
    failed = [row["plan"] for row in dump["plans"] if not row["ok"]]
    if failed:
        print(f"FAIL: plan(s) broke the lifecycle laws: {', '.join(failed)}")
        return 1
    if summary["revoked_blocked_fraction"] < 1.0:
        print(
            "FAIL: a revoked RC reached a post-revocation deposit "
            f"(blocked fraction {summary['revoked_blocked_fraction']})"
        )
        return 1
    return 0


#: Ratios gated by ``repro bench-gate``, per bench kind.  Gating on
#: speedups rather than absolute milliseconds keeps the gate meaningful
#: across machines: a CI runner is slower than the laptop that wrote
#: the baseline, but the fast-path/batch *ratio* should hold anywhere.
_GATED_RATIOS = {
    "pairing": [
        ("pairing", "speedup"),
        ("deposit_phase", "speedup"),
        ("deposit_phase", "warm_speedup"),
        ("backend", "montgomery_speedup"),
    ],
    "scale": [
        ("batch_timing", "speedup"),
        ("parallel", "speedup"),
    ],
    # ok_fraction is 1.0 when every seeded fault plan conserves; any
    # broken plan drops it below the regression floor and fails CI.
    "availability": [
        ("summary", "ok_fraction"),
    ],
    # Both gates sit at 1.0 in the committed baseline; a single broken
    # plan or a single revoked RC reaching a post-revocation deposit
    # drops the fraction below any sane regression floor and fails CI.
    "revocation": [
        ("summary", "ok_fraction"),
        ("summary", "revoked_blocked_fraction"),
    ],
}

#: Lower-is-better budgets gated by ``repro bench-gate``: deterministic
#: operation counts from the crypto profiler, identical on every host.
#: A key absent from the *baseline* is skipped (pre-v2 baselines have no
#: ``opcounts`` section); a key absent from the *current* run fails —
#: the fresh bench must always produce the full schema.
_GATED_BUDGETS = {
    "pairing": [
        ("opcounts", "montgomery_fp_muls"),
        ("opcounts", "montgomery_fp_sqrs"),
        ("opcounts", "montgomery_fp_adds"),
        ("opcounts", "montgomery_fp2_muls"),
        ("opcounts", "schoolbook_fp_muls"),
        ("opcounts", "schoolbook_fp_sqrs"),
        ("opcounts", "schoolbook_fp_adds"),
        ("opcounts", "schoolbook_fp2_muls"),
    ],
}


def _cmd_bench_gate(args) -> int:
    """Fail when a gated ratio or budget regressed beyond ``--max-regression``.

    Ratios (speedups) are higher-is-better and must stay above
    ``base * (1 - max_regression)``; budgets (op counts) are
    lower-is-better and must stay below ``base * (1 + max_regression)``.
    ``--only ratios``/``--only budgets`` restricts the gate to one class
    (CI runs the budget gate as a separate, machine-independent step).
    """
    import json

    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)
    with open(args.current, encoding="utf-8") as handle:
        current = json.load(handle)
    kind = baseline.get("bench")
    if current.get("bench") != kind:
        print(f"bench kinds differ: {kind!r} vs {current.get('bench')!r}")
        return 2
    only = getattr(args, "only", "all")
    failed = 0
    if only in ("all", "ratios"):
        ratios = _GATED_RATIOS.get(kind)
        if ratios is None:
            print(f"no gated ratios defined for bench kind {kind!r}")
            return 2
        for section, key in ratios:
            base = baseline.get(section, {}).get(key)
            cur = current.get(section, {}).get(key)
            if base is None or cur is None:
                print(
                    f"{section}.{key}: missing (baseline={base}, current={cur})"
                )
                failed += 1
                continue
            floor = base * (1.0 - args.max_regression)
            verdict = "OK" if cur >= floor else "REGRESSED"
            print(
                f"{section}.{key}: baseline {base} current {cur} "
                f"floor {floor:.2f} {verdict}"
            )
            if cur < floor:
                failed += 1
    if only in ("all", "budgets"):
        for section, key in _GATED_BUDGETS.get(kind, []):
            base = baseline.get(section, {}).get(key)
            cur = current.get(section, {}).get(key)
            if base is None:
                # Baseline predates this budget (pre-v2 schema): nothing
                # to compare against yet; the regenerated baseline will
                # arm the gate.
                continue
            if cur is None:
                print(f"{section}.{key}: missing from current run")
                failed += 1
                continue
            ceiling = base * (1.0 + args.max_regression)
            verdict = "OK" if cur <= ceiling else "REGRESSED"
            print(
                f"{section}.{key}: baseline {base} current {cur} "
                f"ceiling {ceiling:.2f} {verdict}"
            )
            if cur > ceiling:
                failed += 1
    if failed:
        print(f"bench-gate: {failed} gate(s) regressed > "
              f"{args.max_regression:.0%}")
        return 1
    print("bench-gate: all gates within budget")
    return 0


def _cmd_obs(args) -> int:
    """Run a small deterministic workload and emit the obs dump JSON."""
    from repro.clients.transport import RetryPolicy
    from repro.core.deployment import Deployment, DeploymentConfig
    from repro.core.protocol import ProtocolDriver
    from repro.sim.faults import FaultSpec

    faults = FaultSpec(
        drop=args.drop, duplicate=args.duplicate, corrupt=args.corrupt
    )
    policy = (
        RetryPolicy(max_attempts=args.retries, base_backoff_us=1_000)
        if args.retries > 0
        else None
    )
    deployment = Deployment.build(
        DeploymentConfig(
            preset=args.preset,
            seed=args.seed.encode(),
            faults=faults if faults.any_faults() else None,
            retry_policy=policy,
        )
    )
    try:
        device = deployment.new_smart_device("obs-meter-001")
        client = deployment.new_receiving_client(
            "obs-utility", "obs-password", attributes=["OBS-ATTR"]
        )
        deposits = [
            ("OBS-ATTR", f"reading={index};obs".encode())
            for index in range(args.messages)
        ]
        ProtocolDriver(deployment).run_full(device, client, deposits)
        text = deployment.obs_dump_json(
            meta={"workload": "cli-obs-dump", "messages": args.messages},
            indent=args.indent,
        )
    finally:
        deployment.close()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {len(text)} bytes to {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis.cli import run_lint

    return run_lint(args)


_COMMANDS = {
    "demo": _cmd_demo,
    "serve": _cmd_serve,
    "params": _cmd_params,
    "table1": _cmd_table1,
    "crypto-check": _cmd_crypto_check,
    "bench": _cmd_bench,
    "bench-gate": _cmd_bench_gate,
    "obs": _cmd_obs,
    "lint": _cmd_lint,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
