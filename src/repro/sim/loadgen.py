"""Load-generation harness: a smart-meter fleet against a sharded MWS.

Drives every device of a :class:`repro.sim.workload.SmartMeterFleet`
through the batched deposit pipeline of a sharded deployment, then
drains the backlog through paged retrieval — the scale scenario the
paper's Fig. 1 implies (many meters, few utilities) at a size CI can
afford.  ``repro bench scale`` wraps this into ``BENCH_scale.json``.

Two properties come out of a run:

* **conservation** — the per-shard message counts must sum to the
  number of accepted deposits (no shard loses or double-counts), and
  paged retrieval must return exactly the per-attribute share; both are
  recorded in the result and checked by the CI scale-smoke job.
* **batch speedup** — wall-clock per message for a batched deposit of
  ``timing_batch`` readings vs the same count of sequential single
  deposits (same deployment, warm cache, static identity).  The batch
  lane amortises the KEM encapsulation and the MAC/round-trip, so the
  acceptance bar is >= 2x.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.core.deployment import Deployment, DeploymentConfig
from repro.errors import ProtocolError
from repro.mathlib.rand import HmacDrbg, derive_seed
from repro.mws.runtime import ParallelDepositRunner, ShardWorkerPool
from repro.mws.service import MwsConfig
from repro.sim.faults import FaultPlan, WorkerFaultSpec
from repro.sim.workload import MeterKind, SmartMeterFleet, WorkloadConfig

__all__ = ["ScaleConfig", "run_scale", "worker_sweep"]


@dataclass
class ScaleConfig:
    """Knobs for one load-generation run (defaults sized for CI)."""

    #: Number of message-warehouse shards.
    shards: int = 4
    #: Copies per shard (1 = unreplicated; >1 WAL-ships to followers
    #: with quorum acks — docs/REPLICATION.md).
    replicas: int = 1
    #: Fleet size: meters per kind (electric/water/gas).
    meters_per_kind: int = 2
    #: Readings deposited per device, as one batch.
    batch_size: int = 8
    #: Messages in the timed batched-vs-sequential comparison.
    timing_batch: int = 64
    #: Page size for the retrieval sweep.
    page_size: int = 16
    #: Pairing preset (TOY64 keeps CI fast; TEST80 for fidelity).
    preset: str = "TOY64"
    #: Seed for the deployment and the fleet; same seed => same shard
    #: assignment, same batch transcripts, byte-identical obs dump.
    #: Every additional lane (scheduler, worker pool, parallel bench)
    #: takes an *independent* child seed via
    #: :func:`repro.mathlib.rand.derive_seed`, so adding workers or
    #: lanes never perturbs the sections above.
    seed: bytes = b"repro-scale"
    #: Worker count for the concurrency lanes (1 = both lanes degrade
    #: to serial; the CI smoke runs 4).
    workers: int = 1
    #: Messages encrypted/deposited per width in the real-parallel lane.
    parallel_messages: int = 48
    #: Real-parallel executor lane: "process" or "inline".
    parallel_lane: str = "process"
    #: Per-step worker crash probability in the simulated lane.
    worker_crash: float = 0.25
    #: Cap on injected worker crashes in the simulated lane.
    max_worker_crashes: int = 4


def _measure_batch_speedup(deployment: Deployment, count: int) -> dict:
    """Time ``count`` sequential deposits vs one ``count``-item batch.

    Uses a dedicated device with a warm crypto cache and the static
    identity (``use_nonce=False`` deployment), so the comparison
    isolates exactly what batching amortises: per-message KEM
    encapsulation, MAC computation and the round-trip — not cache
    warm-up noise.
    """
    device = deployment.new_smart_device("scale-timer-000")
    attribute = "SCALE-TIMING-ATTR"
    body = b"reading=42.000kWh;scale-timing"
    device.build_deposit(attribute, body)  # warm the pairing cache
    single_channel = deployment.sd_channel(device.device_id)
    many_channel = deployment.sd_many_channel(device.device_id)

    started = time.perf_counter()
    for _ in range(count):
        device.deposit(single_channel, attribute, body)
    sequential_s = time.perf_counter() - started

    items = [(attribute, body)] * count
    started = time.perf_counter()
    receipt = device.deposit_many(many_channel, items)
    batched_s = time.perf_counter() - started

    if receipt.accepted_count != count:
        raise ProtocolError(
            f"timing batch lost items: {receipt.accepted_count}/{count} accepted"
        )
    return {
        "messages": count,
        "sequential_ms_per_msg": round(sequential_s / count * 1e3, 3),
        "batched_ms_per_msg": round(batched_s / count * 1e3, 3),
        "speedup": round(sequential_s / batched_s, 2),
    }


def worker_sweep(workers: int) -> list[int]:
    """Widths for the throughput-vs-workers sweep: 1, 2, 4, ... , N."""
    widths = [1]
    while widths[-1] * 2 <= workers:
        widths.append(widths[-1] * 2)
    if widths[-1] != workers:
        widths.append(workers)
    return widths


def _run_simulated(config: ScaleConfig) -> dict:
    """The deterministic simulated-concurrent lane, with worker chaos.

    Runs on its own deployment with child seeds derived from
    ``config.seed`` — the scheduler, the fault plan and the fleet each
    get an isolated stream, so this lane cannot perturb the golden
    sections of the main run (and vice versa).
    """
    deployment = Deployment.build(
        DeploymentConfig(
            preset=config.preset,
            seed=derive_seed(config.seed, b"sim-deployment"),
            use_nonce=False,
            mws=MwsConfig(
                message_shards=config.shards,
                message_replicas=config.replicas,
            ),
        )
    )
    try:
        plan = FaultPlan(
            HmacDrbg(derive_seed(config.seed, b"sim-faults")),
            registry=deployment.registry,
        )
        plan.set_worker_faults(
            WorkerFaultSpec(
                crash=config.worker_crash,
                max_crashes=config.max_worker_crashes,
            )
        )
        deployment.network.install_fault_plan(plan)
        fleet = SmartMeterFleet(
            WorkloadConfig(
                meters_per_kind=config.meters_per_kind,
                seed=derive_seed(config.seed, b"sim-fleet"),
            )
        )
        jobs = [
            (device_id, fleet.deposit_items(device_id, config.batch_size))
            for device_id in fleet.device_ids()
        ]
        pool = ShardWorkerPool(
            deployment,
            workers=max(1, config.workers),
            scheduler_seed=derive_seed(config.seed, b"scheduler"),
            page_size=config.page_size,
        )
        result = pool.run(jobs)
        return {
            "workers": max(1, config.workers),
            "replicas": max(1, config.replicas),
            "accepted": len(result.accepted_ids),
            "rejected": result.rejected,
            "crashes": result.crashes,
            "restarts": result.restarts,
            "steps": result.steps,
            "pages": result.pages,
            "conservation_ok": result.conservation_ok(),
            "fingerprint": result.fingerprint(),
        }
    finally:
        deployment.close()


def _parallel_jobs(config: ScaleConfig) -> list[tuple[str, list[tuple[str, bytes]]]]:
    """A fixed 8-device partitioning of ``parallel_messages`` readings.

    The partitioning never depends on the worker count, so every width
    in the sweep encrypts and deposits the identical byte stream.
    """
    devices = min(8, max(1, config.parallel_messages))
    per_device = config.parallel_messages // devices
    remainder = config.parallel_messages - per_device * devices
    jobs = []
    for index in range(devices):
        count = per_device + (1 if index < remainder else 0)
        items = [
            (
                "ELECTRIC-SCALE-SV",
                f"device=scale-par-{index:02d};seq={seq};reading".encode("ascii"),
            )
            for seq in range(count)
        ]
        jobs.append((f"scale-par-{index:02d}", items))
    return jobs


def _run_parallel_sweep(config: ScaleConfig) -> dict:
    """Throughput vs worker count through the real process-pool lane.

    Each width gets a fresh deployment built from the same derived seed
    (identical crypto work, no replay-cache cross-talk) with per-message
    nonces, so every message is its own KEM group — the unit the pool
    fans out.
    """
    jobs = _parallel_jobs(config)
    throughput: dict[str, float] = {}
    for width in worker_sweep(max(1, config.workers)):
        deployment = Deployment.build(
            DeploymentConfig(
                preset=config.preset,
                seed=derive_seed(config.seed, b"parallel-deployment"),
                use_nonce=True,
                mws=MwsConfig(message_shards=config.shards),
            )
        )
        try:
            runner = ParallelDepositRunner(
                deployment,
                workers=width,
                lane=config.parallel_lane,
                seed=derive_seed(config.seed, b"parallel-jobs"),
            )
            stats = runner.run(jobs)
            if stats["accepted"] != config.parallel_messages:
                raise ProtocolError(
                    f"parallel lane at {width} worker(s) lost items: "
                    f"{stats['accepted']}/{config.parallel_messages} accepted"
                )
            throughput[str(width)] = stats["throughput"]
        finally:
            deployment.close()
    widths = worker_sweep(max(1, config.workers))
    base = throughput[str(widths[0])]
    peak = throughput[str(widths[-1])]
    return {
        "lane": config.parallel_lane,
        "messages": config.parallel_messages,
        "cpu_count": os.cpu_count() or 1,
        "throughput": throughput,
        "speedup": round(peak / base, 2) if base else 0.0,
    }


def run_scale(config: ScaleConfig | None = None) -> dict:
    """Run the fleet workload and return the ``BENCH_scale.json`` dict."""
    config = config if config is not None else ScaleConfig()
    deployment = Deployment.build(
        DeploymentConfig(
            preset=config.preset,
            seed=config.seed,
            use_nonce=False,  # static identities: the KEM-amortised lane
            mws=MwsConfig(message_shards=config.shards),
        )
    )
    try:
        fleet = SmartMeterFleet(
            WorkloadConfig(meters_per_kind=config.meters_per_kind, seed=config.seed)
        )
        accepted = rejected = batches = 0
        for device_id in fleet.device_ids():
            device = deployment.new_smart_device(device_id)
            items = fleet.deposit_items(device_id, config.batch_size)
            receipt = device.deposit_many(
                deployment.sd_many_channel(device_id), items
            )
            accepted += receipt.accepted_count
            rejected += len(receipt.statuses) - receipt.accepted_count
            batches += 1

        shard_counts = list(deployment.mws.message_db.shard_counts())
        conservation_ok = sum(shard_counts) == accepted

        attributes = [fleet.attribute_for(kind) for kind in MeterKind]
        client = deployment.new_receiving_client(
            "scale-utility", "scale-password", attributes=attributes
        )
        _token, messages = client.retrieve_all(
            deployment.rc_page_channel(client.rc_id), page_size=config.page_size
        )
        retrieval_ok = len(messages) == accepted

        timing = _measure_batch_speedup(deployment, config.timing_batch)

        return {
            "bench": "scale",
            # v2: adds the ``simulated`` (deterministic worker pool under
            # crash chaos) and ``parallel`` (process-pool throughput vs
            # worker count) sections; everything from v1 is unchanged.
            "schema_version": 2,
            "meta": {
                "preset": config.preset,
                "seed": config.seed.decode("utf-8", "replace"),
                "shards": config.shards,
                "devices": batches,
                "batch_size": config.batch_size,
                "page_size": config.page_size,
                "workers": max(1, config.workers),
            },
            "deposits": {
                "accepted": accepted,
                "rejected": rejected,
                "batches": batches,
            },
            "shards": {
                "counts": shard_counts,
                "sum": sum(shard_counts),
                "conservation_ok": conservation_ok,
            },
            "retrieval": {
                "messages": len(messages),
                "pages": client.stats["pages_fetched"],
                "complete": retrieval_ok,
            },
            "batch_timing": timing,
            "simulated": _run_simulated(config),
            "parallel": _run_parallel_sweep(config),
        }
    finally:
        deployment.close()
