"""Load-generation harness: a smart-meter fleet against a sharded MWS.

Drives every device of a :class:`repro.sim.workload.SmartMeterFleet`
through the batched deposit pipeline of a sharded deployment, then
drains the backlog through paged retrieval — the scale scenario the
paper's Fig. 1 implies (many meters, few utilities) at a size CI can
afford.  ``repro bench scale`` wraps this into ``BENCH_scale.json``.

Two properties come out of a run:

* **conservation** — the per-shard message counts must sum to the
  number of accepted deposits (no shard loses or double-counts), and
  paged retrieval must return exactly the per-attribute share; both are
  recorded in the result and checked by the CI scale-smoke job.
* **batch speedup** — wall-clock per message for a batched deposit of
  ``timing_batch`` readings vs the same count of sequential single
  deposits (same deployment, warm cache, static identity).  The batch
  lane amortises the KEM encapsulation and the MAC/round-trip, so the
  acceptance bar is >= 2x.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.deployment import Deployment, DeploymentConfig
from repro.errors import ProtocolError
from repro.mws.service import MwsConfig
from repro.sim.workload import MeterKind, SmartMeterFleet, WorkloadConfig

__all__ = ["ScaleConfig", "run_scale"]


@dataclass
class ScaleConfig:
    """Knobs for one load-generation run (defaults sized for CI)."""

    #: Number of message-warehouse shards.
    shards: int = 4
    #: Fleet size: meters per kind (electric/water/gas).
    meters_per_kind: int = 2
    #: Readings deposited per device, as one batch.
    batch_size: int = 8
    #: Messages in the timed batched-vs-sequential comparison.
    timing_batch: int = 64
    #: Page size for the retrieval sweep.
    page_size: int = 16
    #: Pairing preset (TOY64 keeps CI fast; TEST80 for fidelity).
    preset: str = "TOY64"
    #: Seed for the deployment and the fleet; same seed => same shard
    #: assignment, same batch transcripts, byte-identical obs dump.
    seed: bytes = b"repro-scale"


def _measure_batch_speedup(deployment: Deployment, count: int) -> dict:
    """Time ``count`` sequential deposits vs one ``count``-item batch.

    Uses a dedicated device with a warm crypto cache and the static
    identity (``use_nonce=False`` deployment), so the comparison
    isolates exactly what batching amortises: per-message KEM
    encapsulation, MAC computation and the round-trip — not cache
    warm-up noise.
    """
    device = deployment.new_smart_device("scale-timer-000")
    attribute = "SCALE-TIMING-ATTR"
    body = b"reading=42.000kWh;scale-timing"
    device.build_deposit(attribute, body)  # warm the pairing cache
    single_channel = deployment.sd_channel(device.device_id)
    many_channel = deployment.sd_many_channel(device.device_id)

    started = time.perf_counter()
    for _ in range(count):
        device.deposit(single_channel, attribute, body)
    sequential_s = time.perf_counter() - started

    items = [(attribute, body)] * count
    started = time.perf_counter()
    receipt = device.deposit_many(many_channel, items)
    batched_s = time.perf_counter() - started

    if receipt.accepted_count != count:
        raise ProtocolError(
            f"timing batch lost items: {receipt.accepted_count}/{count} accepted"
        )
    return {
        "messages": count,
        "sequential_ms_per_msg": round(sequential_s / count * 1e3, 3),
        "batched_ms_per_msg": round(batched_s / count * 1e3, 3),
        "speedup": round(sequential_s / batched_s, 2),
    }


def run_scale(config: ScaleConfig | None = None) -> dict:
    """Run the fleet workload and return the ``BENCH_scale.json`` dict."""
    config = config if config is not None else ScaleConfig()
    deployment = Deployment.build(
        DeploymentConfig(
            preset=config.preset,
            seed=config.seed,
            use_nonce=False,  # static identities: the KEM-amortised lane
            mws=MwsConfig(message_shards=config.shards),
        )
    )
    try:
        fleet = SmartMeterFleet(
            WorkloadConfig(meters_per_kind=config.meters_per_kind, seed=config.seed)
        )
        accepted = rejected = batches = 0
        for device_id in fleet.device_ids():
            device = deployment.new_smart_device(device_id)
            items = fleet.deposit_items(device_id, config.batch_size)
            receipt = device.deposit_many(
                deployment.sd_many_channel(device_id), items
            )
            accepted += receipt.accepted_count
            rejected += len(receipt.statuses) - receipt.accepted_count
            batches += 1

        shard_counts = list(deployment.mws.message_db.shard_counts())
        conservation_ok = sum(shard_counts) == accepted

        attributes = [fleet.attribute_for(kind) for kind in MeterKind]
        client = deployment.new_receiving_client(
            "scale-utility", "scale-password", attributes=attributes
        )
        _token, messages = client.retrieve_all(
            deployment.rc_page_channel(client.rc_id), page_size=config.page_size
        )
        retrieval_ok = len(messages) == accepted

        timing = _measure_batch_speedup(deployment, config.timing_batch)

        return {
            "bench": "scale",
            "schema_version": 1,
            "meta": {
                "preset": config.preset,
                "seed": config.seed.decode("utf-8", "replace"),
                "shards": config.shards,
                "devices": batches,
                "batch_size": config.batch_size,
                "page_size": config.page_size,
            },
            "deposits": {
                "accepted": accepted,
                "rejected": rejected,
                "batches": batches,
            },
            "shards": {
                "counts": shard_counts,
                "sum": sum(shard_counts),
                "conservation_ok": conservation_ok,
            },
            "retrieval": {
                "messages": len(messages),
                "pages": client.stats["pages_fetched"],
                "complete": retrieval_ok,
            },
            "batch_timing": timing,
        }
    finally:
        deployment.close()
