"""Deterministic fault injection for the simulated network.

The paper's prototype ran four servers over a real LAN and simply
assumed delivery; a warehousing service cannot.  This module models the
failure modes of a lossy deployment — drops, duplicates, bit
corruption, delays and partitions — as a seeded :class:`FaultPlan` the
:class:`repro.sim.network.Network` consults on **both** the request and
the response path of every message.

Every decision is drawn from a :class:`RandomSource`, so a chaos run is
exactly reproducible from its seed: the same plan over the same traffic
injects the same faults in the same order.  That property is what lets
the chaos suite assert byte-identical transcripts across runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mathlib.rand import RandomSource

__all__ = [
    "FaultSpec",
    "WorkerFaultSpec",
    "FaultDecision",
    "FaultPlan",
    "apply_corruption",
]

#: The two directions a plan is consulted for.
REQUEST = "request"
RESPONSE = "response"


@dataclass(frozen=True)
class FaultSpec:
    """Per-link fault probabilities (each in ``[0, 1]``, independent).

    ``delay`` adds a uniform ``[min_delay_us, max_delay_us]`` pause by
    advancing the simulated clock — no wall-clock sleeping, so chaos
    soaks stay fast and deterministic.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    corrupt: float = 0.0
    delay: float = 0.0
    min_delay_us: int = 1_000
    max_delay_us: int = 20_000

    def any_faults(self) -> bool:
        return any((self.drop, self.duplicate, self.corrupt, self.delay))


@dataclass(frozen=True)
class WorkerFaultSpec:
    """Worker and replica faults for the shard-parallel runtime.

    ``crash`` is the per-step probability that a worker dies before its
    next action; ``max_crashes`` caps the plan's total kills so a chaos
    schedule always terminates (every crash costs a restart, and an
    uncapped plan at ``crash=1.0`` would never let a worker finish).

    ``leader_kill`` is the per-roll probability that a shard leader is
    crashed and a follower promoted (``max_leader_kills`` caps the
    total, same rationale).  ``follower_lag`` is the per-shipment
    probability that a non-quorum follower defers applying a WAL frame
    — the replication layer's catch-up path must then close the gap
    before that follower can ever be promoted or serve reads.
    """

    crash: float = 0.0
    max_crashes: int = 8
    leader_kill: float = 0.0
    max_leader_kills: int = 4
    follower_lag: float = 0.0

    def any_faults(self) -> bool:
        return (
            (self.crash > 0.0 and self.max_crashes > 0)
            or (self.leader_kill > 0.0 and self.max_leader_kills > 0)
            or self.follower_lag > 0.0
        )


@dataclass(frozen=True)
class FaultDecision:
    """What the plan decided for one message crossing one link."""

    drop: bool = False
    duplicate: bool = False
    #: (byte_index, bit_mask) to XOR into the payload, or None.
    corrupt: tuple[int, int] | None = None
    delay_us: int = 0
    #: True when the drop came from a partition, not a probability.
    partitioned: bool = False

    def faults(self) -> int:
        """How many distinct faults this decision injects."""
        return (
            int(self.drop)
            + int(self.duplicate)
            + int(self.corrupt is not None)
            + int(self.delay_us > 0)
        )


#: No-fault singleton so the hot path allocates nothing when clean.
_CLEAN = FaultDecision()


class FaultPlan:
    """A seeded schedule of per-link faults.

    Links are directional ``(source, destination)`` pairs; the network
    consults the plan once for the request direction and once for the
    response direction, so a plan can model asymmetric loss (e.g. ACKs
    dropping while deposits get through).  ``default`` applies to every
    link without an explicit override.
    """

    def __init__(
        self,
        rng: RandomSource,
        default: FaultSpec | None = None,
        registry=None,
    ) -> None:
        self._rng = rng
        self._default = default if default is not None else FaultSpec()
        self._links: dict[tuple[str, str], FaultSpec] = {}
        self._partitions: set[frozenset[str]] = set()
        #: Aggregate counters, also mirrored per-endpoint by the network.
        #: With a registry they live under ``sim.faults.*``; standalone
        #: plans keep a plain dict.
        keys = (
            "drops",
            "duplicates",
            "corruptions",
            "delays",
            "partition_drops",
            "worker_crashes",
            "worker_restarts",
            "leader_kills",
            "follower_lags",
        )
        if registry is not None:
            self.counters = registry.stats_dict("sim.faults", keys)
        else:
            self.counters = {key: 0 for key in keys}
        self._worker_spec = WorkerFaultSpec()
        self._worker_rng: RandomSource = rng
        self._leader_rng: RandomSource = rng
        self._lag_rng: RandomSource = rng

    # -- configuration ----------------------------------------------------

    def set_link(self, source: str, destination: str, spec: FaultSpec) -> None:
        """Override faults for one direction of one link."""
        self._links[(source, destination)] = spec

    def set_endpoint(self, endpoint: str, spec: FaultSpec) -> None:
        """Override faults for all traffic *to* ``endpoint`` (requests in,
        responses consulted with the endpoint as source use ``set_link``)."""
        self._links[("*", endpoint)] = spec

    def partition(self, a: str, b: str) -> None:
        """Sever the link between ``a`` and ``b`` in both directions."""
        self._partitions.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        """Restore a severed link."""
        self._partitions.discard(frozenset((a, b)))

    def heal_all(self) -> None:
        self._partitions.clear()

    def set_worker_faults(
        self, spec: WorkerFaultSpec, rng: RandomSource | None = None
    ) -> None:
        """Enable worker crash/restart and replica faults for the runtime.

        Each fault class draws from its own stream (forks of ``rng`` or
        of the plan's source when available) so enabling one class —
        worker crashes, leader kills, follower lag — cannot shift
        another class's schedule in an otherwise identical run.
        """
        self._worker_spec = spec
        base = rng if rng is not None else self._rng
        fork = getattr(base, "fork", None)
        if fork:
            self._worker_rng = fork(b"worker-faults")
            self._leader_rng = fork(b"leader-kills")
            self._lag_rng = fork(b"follower-lag")
        else:
            self._worker_rng = base
            self._leader_rng = base
            self._lag_rng = base

    @property
    def worker_spec(self) -> WorkerFaultSpec:
        return self._worker_spec

    def spec_for(self, source: str, destination: str) -> FaultSpec:
        spec = self._links.get((source, destination))
        if spec is None:
            spec = self._links.get(("*", destination), self._default)
        return spec

    # -- decisions --------------------------------------------------------

    def _hit(self, probability: float) -> bool:
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._rng.randbelow(1_000_000) < int(probability * 1_000_000)

    def decide(
        self, source: str, destination: str, payload_len: int
    ) -> FaultDecision:
        """Roll the dice for one message from ``source`` to ``destination``."""
        if frozenset((source, destination)) in self._partitions:
            self.counters["partition_drops"] += 1
            self.counters["drops"] += 1
            return FaultDecision(drop=True, partitioned=True)
        spec = self.spec_for(source, destination)
        if not spec.any_faults():
            return _CLEAN
        delay_us = 0
        if self._hit(spec.delay):
            delay_us = spec.min_delay_us + self._rng.randbelow(
                max(1, spec.max_delay_us - spec.min_delay_us + 1)
            )
            self.counters["delays"] += 1
        if self._hit(spec.drop):
            self.counters["drops"] += 1
            return FaultDecision(drop=True, delay_us=delay_us)
        corrupt = None
        if payload_len > 0 and self._hit(spec.corrupt):
            corrupt = (
                self._rng.randbelow(payload_len),
                1 << self._rng.randbelow(8),
            )
            self.counters["corruptions"] += 1
        duplicate = self._hit(spec.duplicate)
        if duplicate:
            self.counters["duplicates"] += 1
        if not (delay_us or corrupt or duplicate):
            return _CLEAN
        return FaultDecision(
            duplicate=duplicate, corrupt=corrupt, delay_us=delay_us
        )

    def decide_worker_crash(self, worker_id: str) -> bool:
        """Roll for one worker step: should ``worker_id`` crash now?

        Honours the plan-wide ``max_crashes`` cap.  The draw uses the
        dedicated worker stream, and only happens while crashes remain
        possible, so a capped-out plan stops consuming randomness.
        """
        spec = self._worker_spec
        if spec.crash <= 0.0 or spec.max_crashes <= 0:
            # Early-out *before* touching the worker stream so a plan
            # with only replica faults enabled consumes no crash rolls.
            return False
        if self.counters["worker_crashes"] >= spec.max_crashes:
            return False
        if spec.crash < 1.0:
            if self._worker_rng.randbelow(1_000_000) >= int(
                spec.crash * 1_000_000
            ):
                return False
        self.counters["worker_crashes"] += 1
        return True

    def note_worker_restart(self) -> None:
        """Record that the runtime replaced a crashed worker."""
        self.counters["worker_restarts"] += 1

    def decide_leader_kill(self, shard_count: int) -> int | None:
        """Roll for one chaos tick: crash a shard leader now?

        Returns the shard index to fail over, or ``None``.  Draws from
        the dedicated leader stream and honours ``max_leader_kills``;
        the victim shard is part of the same roll so a plan's kill
        schedule is one deterministic sequence.
        """
        spec = self._worker_spec
        if spec.leader_kill <= 0.0 or shard_count <= 0:
            return None
        if self.counters["leader_kills"] >= spec.max_leader_kills:
            return None
        if spec.leader_kill < 1.0:
            if self._leader_rng.randbelow(1_000_000) >= int(
                spec.leader_kill * 1_000_000
            ):
                return None
        victim = self._leader_rng.randbelow(shard_count)
        self.counters["leader_kills"] += 1
        return victim

    def decide_follower_lag(self) -> bool:
        """Roll once per shipped frame: does this follower defer applying?

        Consulted by the replica set only for followers beyond the ack
        quorum, so lag can never delay an acknowledged write.
        """
        spec = self._worker_spec
        if spec.follower_lag <= 0.0:
            return False
        if spec.follower_lag < 1.0:
            if self._lag_rng.randbelow(1_000_000) >= int(
                spec.follower_lag * 1_000_000
            ):
                return False
        self.counters["follower_lags"] += 1
        return True

    def total_injected(self) -> int:
        """Total faults injected so far (partition drops count once)."""
        return (
            self.counters["drops"]
            + self.counters["duplicates"]
            + self.counters["corruptions"]
            + self.counters["delays"]
        )


def apply_corruption(payload: bytes, corrupt: tuple[int, int]) -> bytes:
    """XOR ``mask`` into ``payload[index]`` (index clamped to length)."""
    index, mask = corrupt
    mutated = bytearray(payload)
    mutated[min(index, len(mutated) - 1)] ^= mask
    return bytes(mutated)
