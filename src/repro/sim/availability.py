"""Availability harness: conservation + failover latency for replicas.

``repro bench availability`` wraps this module into
``BENCH_availability.json``.  It drives the replicated, sharded
warehouse through a battery of **seeded fault plans** — leader kills,
worker crashes, follower lag, a crash in the middle of an online
rebalance — and asserts the conservation law on every one:

* every accepted deposit is retrieved exactly once (no loss, no
  duplication), the shard counts account for the accepted set, and the
  retrieved ciphertext bytes are identical across all plans (faults may
  reorder work, never rewrite a stored ciphertext);
* every plan is **deterministic**: the same seed reproduces the
  scheduler transcript fingerprint and the observability dump byte for
  byte, so any failing plan is replayable.

A second section measures what an *online* rebalance costs live
traffic: per-store latency on the warehouse write path is sampled in
steady state and again while a drain interleaves one record move per
deposit, and the p99 ratio must stay within ``p99_bound`` (ISSUE 7
acceptance: 3x).  This is the one wall-clock measurement in the
harness; everything else runs on simulated time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.deployment import Deployment, DeploymentConfig
from repro.mathlib.rand import HmacDrbg, derive_seed
from repro.mws.runtime import ShardWorkerPool
from repro.mws.service import MwsConfig
from repro.sim.faults import FaultPlan, WorkerFaultSpec
from repro.sim.sanitizer import OwnershipSanitizer, install, uninstall
from repro.storage.sharding import ShardedMessageDatabase

__all__ = ["AvailabilityConfig", "FAULT_PLANS", "run_availability"]

#: The seeded fault-plan battery: (name, spec kwargs, pool kwargs).
#: Every plan runs the same workload on the same deployment seed, so
#: the produced ciphertext multiset must be identical across rows.
FAULT_PLANS: tuple[tuple[str, dict, dict], ...] = (
    ("clean", {}, {}),
    ("leader-kills", {"leader_kill": 0.7, "max_leader_kills": 3}, {}),
    (
        "crashes-and-leader-kills",
        {
            "crash": 0.3,
            "max_crashes": 2,
            "leader_kill": 0.5,
            "max_leader_kills": 2,
        },
        {},
    ),
    # quorum=1 leaves the second replica outside the ack set — the only
    # way a 2-replica deployment has a follower that is *allowed* to lag.
    (
        "follower-lag",
        {"leader_kill": 0.7, "max_leader_kills": 3, "follower_lag": 0.8},
        {"quorum": 1},
    ),
    ("online-rebalance", {}, {"rebalance": True}),
    (
        "rebalance-under-kills",
        {"leader_kill": 0.5, "max_leader_kills": 2},
        {"rebalance": True},
    ),
    ("mid-rebalance-crash", {}, {"rebalance": True, "rebalance_crash_after": 3}),
)


@dataclass
class AvailabilityConfig:
    """Knobs for one availability run (defaults sized for CI)."""

    #: Warehouse shards in the fault-plan battery.
    shards: int = 2
    #: Copies per shard (>= 2 so failover has somewhere to promote).
    replicas: int = 2
    #: Acks per mutation; None = majority.
    quorum: int | None = None
    #: Deposit workers in the simulated pool.
    workers: int = 2
    #: Devices in the workload.
    devices: int = 3
    #: Readings per device.
    batch_size: int = 4
    #: Retrieval page size.
    page_size: int = 8
    #: Pairing preset (TOY64 keeps CI fast).
    preset: str = "TOY64"
    #: Master seed; each plan and lane takes a derived child stream.
    seed: bytes = b"repro-availability"
    #: Extra shards the rebalance plans drain onto.
    rebalance_shards: int = 2
    #: Per-store latency samples in each timing block.
    latency_samples: int = 400
    #: Acceptance bound on p99(rebalance) / p99(steady).
    p99_bound: float = 3.0
    #: Run every fault plan under the ownership sanitizer — any
    #: cross-task shard/queue access raises instead of completing.
    sanitize: bool = False
    #: Attribute names the workload cycles through.
    attributes: tuple[str, ...] = (
        "ELECTRIC-P-SV",
        "WATER-P-SV",
        "GAS-P-SV",
    )
    extra: dict = field(default_factory=dict)


def _workload(config: AvailabilityConfig) -> list[tuple[str, list[tuple[str, bytes]]]]:
    """The fixed job list every fault plan deposits (plan-independent)."""
    return [
        (
            f"avail-dev-{index}",
            [
                (
                    config.attributes[seq % len(config.attributes)],
                    f"device=avail-{index};seq={seq};reading".encode("ascii"),
                )
                for seq in range(config.batch_size)
            ],
        )
        for index in range(config.devices)
    ]


def _run_plan(config: AvailabilityConfig, name: str, spec_kwargs: dict, pool_kwargs: dict):
    """One seeded run of one fault plan; returns (result, obs_dump)."""
    deployment = Deployment.build(
        DeploymentConfig(
            preset=config.preset,
            rsa_bits=768,
            seed=derive_seed(config.seed, b"deployment"),
            mws=MwsConfig(
                message_shards=config.shards,
                message_replicas=config.replicas,
                replication_quorum=pool_kwargs.get("quorum", config.quorum),
            ),
        )
    )
    try:
        plan = FaultPlan(
            HmacDrbg(derive_seed(config.seed, b"plan:" + name.encode("ascii"))),
            registry=deployment.registry,
        )
        plan.set_worker_faults(WorkerFaultSpec(**spec_kwargs))
        deployment.network.install_fault_plan(plan)
        rebalance = pool_kwargs.get("rebalance", False)
        pool = ShardWorkerPool(
            deployment,
            workers=config.workers,
            scheduler_seed=derive_seed(config.seed, b"schedule:" + name.encode("ascii")),
            page_size=config.page_size,
            failover_every=3,
            rebalance_stores=[None] * config.rebalance_shards if rebalance else None,
            rebalance_after=2,
            rebalance_crash_after=pool_kwargs.get("rebalance_crash_after"),
        )
        previous = None
        if config.sanitize:
            previous = install(OwnershipSanitizer(registry=deployment.registry))
        try:
            result = pool.run(_workload(config))
        finally:
            if config.sanitize:
                uninstall(previous)
        counters = dict(plan.counters)
        return result, deployment.obs_dump_json(), counters
    finally:
        deployment.close()


def _percentile(samples: list[float], fraction: float) -> float:
    """The ``fraction`` percentile of ``samples`` (nearest-rank)."""
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[rank]


def _measure_rebalance_latency(config: AvailabilityConfig) -> dict:
    """p99 per-store latency: steady state vs during an online drain.

    Measures the warehouse write path directly (store through the
    replicated shard router) so the comparison isolates exactly what the
    drain adds — the dual-ring routing check and the interleaved record
    moves — from protocol and crypto noise.  Steady-state samples come
    first on a pre-populated warehouse of the same size.
    """
    samples = config.latency_samples
    attributes = config.attributes

    def populate(db: ShardedMessageDatabase, count: int) -> None:
        for index in range(count):
            db.store(
                "lat-dev",
                attributes[index % len(attributes)],
                index.to_bytes(4, "big"),
                b"ciphertext-" + index.to_bytes(4, "big"),
                index * 10,
            )

    def timed_stores(db: ShardedMessageDatabase, count: int, offset: int, drain=None) -> list[float]:
        durations = []
        for index in range(count):
            attribute = attributes[index % len(attributes)]
            nonce = (offset + index).to_bytes(4, "big")
            started = time.perf_counter()
            db.store("lat-dev", attribute, nonce, b"ciphertext-" + nonce, offset + index)
            durations.append(time.perf_counter() - started)
            if drain is not None:
                next(drain, None)
        return durations

    steady_db = ShardedMessageDatabase(config.shards, replicas=config.replicas, quorum=config.quorum)
    populate(steady_db, samples)
    steady = timed_stores(steady_db, samples, offset=10_000)
    steady_db.close()

    moving_db = ShardedMessageDatabase(config.shards, replicas=config.replicas, quorum=config.quorum)
    populate(moving_db, samples)
    with moving_db.worker_lease(1):
        drain = moving_db.rebalance_online([None] * config.rebalance_shards)
        during = timed_stores(moving_db, samples, offset=20_000, drain=drain)
        for _ in drain:  # finish any remaining moves
            pass
    total = len(moving_db)
    moving_db.close()

    steady_p99 = _percentile(steady, 0.99)
    during_p99 = _percentile(during, 0.99)
    ratio = during_p99 / steady_p99 if steady_p99 > 0 else 0.0
    return {
        "samples": samples,
        "steady_p99_ms": round(steady_p99 * 1e3, 4),
        "rebalance_p99_ms": round(during_p99 * 1e3, 4),
        "p99_ratio": round(ratio, 3),
        "bound": config.p99_bound,
        "within_bound": ratio <= config.p99_bound,
        "messages_after": total,
    }


def run_availability(config: AvailabilityConfig | None = None) -> dict:
    """Run the battery and return the ``BENCH_availability.json`` dict."""
    config = config if config is not None else AvailabilityConfig()
    plans = []
    clean_digests: list[str] | None = None
    for name, spec_kwargs, pool_kwargs in FAULT_PLANS:
        result, dump, counters = _run_plan(config, name, spec_kwargs, pool_kwargs)
        replay, replay_dump, _ = _run_plan(config, name, spec_kwargs, pool_kwargs)
        digests = sorted(result.retrieved_digests.values())
        if clean_digests is None:
            clean_digests = digests
        deterministic = (
            result.fingerprint() == replay.fingerprint() and dump == replay_dump
        )
        row = {
            "plan": name,
            "accepted": len(result.accepted_ids),
            "retrieved": len(result.retrieved_counts),
            "shard_counts": result.shard_counts,
            "crashes": result.crashes,
            "failovers": result.failovers,
            "leader_kills": counters.get("leader_kills", 0),
            "follower_lags": counters.get("follower_lags", 0),
            "rebalance_moves": result.rebalance_moves,
            "conservation_ok": result.conservation_ok(),
            "ciphertexts_identical": digests == clean_digests,
            "deterministic": deterministic,
            "fingerprint": result.fingerprint(),
        }
        row["ok"] = (
            row["conservation_ok"]
            and row["ciphertexts_identical"]
            and row["deterministic"]
        )
        plans.append(row)

    latency = _measure_rebalance_latency(config)
    ok_plans = sum(1 for row in plans if row["ok"])
    return {
        "bench": "availability",
        "schema_version": 1,
        "meta": {
            "preset": config.preset,
            "seed": config.seed.decode("utf-8", "replace"),
            "shards": config.shards,
            "replicas": config.replicas,
            "quorum": config.quorum,
            "workers": config.workers,
            "devices": config.devices,
            "batch_size": config.batch_size,
        },
        "fault_plans": plans,
        "rebalance_latency": latency,
        "summary": {
            "plans": len(plans),
            "conserved": ok_plans,
            "ok_fraction": round(ok_plans / len(plans), 3),
            "p99_ratio": latency["p99_ratio"],
            "p99_within_bound": latency["within_bound"],
        },
    }
