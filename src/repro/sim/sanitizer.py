"""Deterministic ownership sanitizer for scheduler tasks.

The static CONC001 rule proves shard-ownership discipline where it can;
this module enforces the same discipline *dynamically*, at yield-point
granularity, under the deterministic scheduler.  Shared objects (shard
backends, worker queues) are **tagged** with the owner task that may
touch them; the scheduler tells the sanitizer which task is running
around every generator step; checked accesses from the wrong task raise
:class:`~repro.errors.SanitizerError` immediately — on the exact seeded
step the violation happens, every run, because nothing here consults a
clock or an unseeded RNG.

Design points:

* **zero cost when disabled** — the scheduler and the runtime consult
  the module-level :data:`_ACTIVE` slot (via :func:`active`); when no
  sanitizer is installed that is one ``is None`` test per step.
* **owner keys survive restarts** — a crashed worker's replacement task
  (``worker-3-g1`` → ``worker-3-g2``) registers the same ``("worker",
  3)`` key, so requeued work stays legal.
* **maintenance tasks** — the online-rebalance drain legitimately moves
  records across every shard under the dual-ring interlock; it
  registers as :data:`ANY_OWNER` and passes every check.
* **outside-task accesses pass** — setup and teardown code (routing the
  initial queues, recovery after the scheduler stops) runs with no
  current task and is never a violation.

Tags hold strong references so ``id()`` reuse cannot mis-attribute an
object; a sanitizer's lifetime is one run, installed/uninstalled by the
harness (or the test suite's autouse fixture).
"""

from __future__ import annotations

from repro.errors import SanitizerError

__all__ = [
    "ANY_OWNER",
    "OwnershipSanitizer",
    "install",
    "uninstall",
    "active",
]

#: Owner key for maintenance tasks allowed to touch every tagged object.
ANY_OWNER = ("*",)


class OwnershipSanitizer:
    """Tracks object ownership and the currently running task.

    ``registry`` (a :class:`repro.obs.registry.MetricsRegistry`) is
    optional; when given, ``sim.sanitizer.checks`` / ``.violations`` /
    ``.tagged`` counters feed the obs dump (schema v7).
    """

    def __init__(self, registry=None) -> None:
        #: id(obj) -> (obj, owner key, label).  The strong reference
        #: pins the id for the sanitizer's lifetime.
        self._tags: dict[int, tuple] = {}
        #: task name -> owner key.
        self._owners: dict[str, tuple] = {}
        self._current: str | None = None
        self.checks = 0
        self.violations = 0
        if registry is not None:
            self._checks_counter = registry.counter("sim.sanitizer.checks")
            self._violations_counter = registry.counter(
                "sim.sanitizer.violations"
            )
            self._tagged_counter = registry.counter("sim.sanitizer.tagged")
        else:
            self._checks_counter = None
            self._violations_counter = None
            self._tagged_counter = None

    # -- task context (driven by the scheduler) ----------------------------

    def register_task(self, task_name: str, owner: tuple) -> None:
        """Declare which owner key ``task_name`` runs as."""
        self._owners[task_name] = tuple(owner)

    def enter_task(self, task_name: str) -> None:
        self._current = task_name

    def exit_task(self) -> None:
        self._current = None

    @property
    def current_task(self) -> str | None:
        return self._current

    # -- tagging and checking ----------------------------------------------

    def tag(self, obj, owner: tuple, label: str) -> None:
        """Mark ``obj`` as owned by ``owner`` (a hashable key tuple)."""
        self._tags[id(obj)] = (obj, tuple(owner), label)
        if self._tagged_counter is not None:
            self._tagged_counter.inc()

    def check(self, obj) -> None:
        """Raise :class:`SanitizerError` if the running task does not
        own ``obj``.  Untagged objects, unregistered/absent tasks and
        :data:`ANY_OWNER` parties always pass."""
        self.checks += 1
        if self._checks_counter is not None:
            self._checks_counter.inc()
        if self._current is None:
            return
        entry = self._tags.get(id(obj))
        if entry is None:
            return
        _obj, owner, label = entry
        if owner == ANY_OWNER:
            return
        accessor = self._owners.get(self._current)
        if accessor is None or accessor == ANY_OWNER or accessor == owner:
            return
        self.violations += 1
        if self._violations_counter is not None:
            self._violations_counter.inc()
        raise SanitizerError(
            f"task {self._current!r} (owner {accessor!r}) touched "
            f"{label!r} owned by {owner!r}; cross-task access to shard "
            "state is forbidden"
        )

    def stats(self) -> dict:
        """Counters for assertions and reports."""
        return {
            "checks": self.checks,
            "violations": self.violations,
            "tagged": len(self._tags),
        }


#: The installed sanitizer, or ``None``.  Read via :func:`active`; the
#: scheduler reads the slot directly on its hot path.
_ACTIVE: OwnershipSanitizer | None = None


def install(sanitizer: OwnershipSanitizer) -> OwnershipSanitizer | None:
    """Install ``sanitizer`` globally; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = sanitizer
    return previous


def uninstall(previous: OwnershipSanitizer | None = None) -> None:
    """Remove the installed sanitizer (or restore ``previous``)."""
    global _ACTIVE
    _ACTIVE = previous


def active() -> OwnershipSanitizer | None:
    """The installed sanitizer, or ``None`` when disabled."""
    return _ACTIVE
