"""Experiment substrate: simulated time, transport and workloads.

The paper evaluated on four Perl servers on one machine; we simulate the
deployment in-process so experiments are deterministic, fast and fault-
injectable (latency, tampering, drops) while exercising the same wire
encodings a socket deployment would.
"""

from repro.sim.clock import Clock, SimClock, WallClock
from repro.sim.faults import FaultDecision, FaultPlan, FaultSpec, WorkerFaultSpec
from repro.sim.sanitizer import ANY_OWNER, OwnershipSanitizer
from repro.sim.scheduler import DeterministicScheduler, SchedulerTask, TaskState
from repro.sim.network import (
    Channel,
    Endpoint,
    EndpointStats,
    Network,
    TamperInjector,
)
from repro.sim.workload import (
    MeterKind,
    MeterReading,
    SmartMeterFleet,
    WorkloadConfig,
)

__all__ = [
    "Clock",
    "SimClock",
    "WallClock",
    "Network",
    "Channel",
    "Endpoint",
    "EndpointStats",
    "TamperInjector",
    "FaultDecision",
    "FaultPlan",
    "FaultSpec",
    "WorkerFaultSpec",
    "ANY_OWNER",
    "OwnershipSanitizer",
    "DeterministicScheduler",
    "SchedulerTask",
    "TaskState",
    "MeterKind",
    "MeterReading",
    "SmartMeterFleet",
    "WorkloadConfig",
]
