"""Time sources.

The protocol stamps messages and tickets with timestamps to stop replay
(paper §V.D); tests need to *cause* replays and expiries, so every
component takes a :class:`Clock` and the simulated one can be moved at
will.  The paper's prototype dodged this ("time synchronization is not
taken into consideration"); we implement it properly and test it.
"""

from __future__ import annotations

import time

__all__ = ["Clock", "WallClock", "SimClock"]


class Clock:
    """Interface: current time in integer microseconds since an epoch."""

    def now_us(self) -> int:
        raise NotImplementedError


class WallClock(Clock):
    """Real time (``time.time``)."""

    def now_us(self) -> int:
        return int(time.time() * 1_000_000)


class SimClock(Clock):
    """Controllable time for tests and deterministic benchmarks.

    Optionally auto-ticks by ``tick_us`` per reading so successive
    events never share a timestamp even when the test does not advance
    time explicitly.
    """

    def __init__(self, start_us: int = 1_000_000_000, tick_us: int = 0) -> None:
        self._now_us = start_us
        self._tick_us = tick_us

    def now_us(self) -> int:
        current = self._now_us
        self._now_us += self._tick_us
        return current

    def advance(self, delta_us: int) -> None:
        """Move time forward (negative deltas are allowed for replay tests)."""
        self._now_us += delta_us

    def set(self, now_us: int) -> None:
        self._now_us = now_us
