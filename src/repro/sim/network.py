"""In-process request/response transport with fault injection.

Models the paper's deployment ("four servers ... all ports and IP
addresses hardcoded") as named endpoints on a :class:`Network`.  Every
message crosses the wire as bytes — services register a handler taking
and returning ``bytes`` — so the codec layer is genuinely exercised, and
interceptors can delay, tamper with or drop traffic to test the
protocol's failure behaviour (MAC rejection, replay detection).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ChannelClosedError, NetworkError
from repro.mathlib.rand import RandomSource
from repro.sim.clock import Clock, SimClock

__all__ = ["Network", "Endpoint", "Channel", "TamperInjector"]

Handler = Callable[[bytes], bytes]
Interceptor = Callable[[str, str, bytes], bytes | None]


@dataclass
class Endpoint:
    """A named service on the network."""

    name: str
    handler: Handler
    requests_served: int = 0
    bytes_in: int = 0
    bytes_out: int = 0


class Network:
    """A message bus connecting endpoints by name.

    ``send(src, dst, payload)`` delivers synchronously and returns the
    response bytes.  Interceptors run in registration order on the
    request path; an interceptor may return modified bytes, the original
    bytes, or ``None`` to drop the message (which surfaces to the sender
    as :class:`NetworkError`, like a timeout would).
    """

    def __init__(self, clock: Clock | None = None, latency_us: int = 0) -> None:
        self._endpoints: dict[str, Endpoint] = {}
        self._interceptors: list[Interceptor] = []
        self._clock = clock if clock is not None else SimClock()
        self._latency_us = latency_us
        self.messages_sent = 0
        self.bytes_sent = 0

    def register(self, name: str, handler: Handler) -> Endpoint:
        """Attach a service; re-registering a name raises."""
        if name in self._endpoints:
            raise NetworkError(f"endpoint {name!r} already registered")
        endpoint = Endpoint(name=name, handler=handler)
        self._endpoints[name] = endpoint
        return endpoint

    def unregister(self, name: str) -> None:
        self._endpoints.pop(name, None)

    def add_interceptor(self, interceptor: Interceptor) -> None:
        """Install a fault-injection hook on the request path."""
        self._interceptors.append(interceptor)

    def clear_interceptors(self) -> None:
        self._interceptors.clear()

    def send(self, source: str, destination: str, payload: bytes) -> bytes:
        """Deliver ``payload`` and return the endpoint's response bytes."""
        endpoint = self._endpoints.get(destination)
        if endpoint is None:
            raise NetworkError(f"no endpoint named {destination!r}")
        for interceptor in self._interceptors:
            result = interceptor(source, destination, payload)
            if result is None:
                raise NetworkError(
                    f"message from {source!r} to {destination!r} was dropped"
                )
            payload = result
        if self._latency_us and isinstance(self._clock, SimClock):
            self._clock.advance(self._latency_us)
        self.messages_sent += 1
        self.bytes_sent += len(payload)
        endpoint.requests_served += 1
        endpoint.bytes_in += len(payload)
        response = endpoint.handler(payload)
        endpoint.bytes_out += len(response)
        return response

    def channel(self, source: str, destination: str) -> "Channel":
        """A bound sender convenience object."""
        return Channel(network=self, source=source, destination=destination)

    def endpoint_stats(self) -> dict[str, tuple[int, int, int]]:
        """name -> (requests, bytes_in, bytes_out)."""
        return {
            name: (ep.requests_served, ep.bytes_in, ep.bytes_out)
            for name, ep in self._endpoints.items()
        }


@dataclass
class Channel:
    """A (source, destination) pair with a ``request`` method."""

    network: Network
    source: str
    destination: str
    closed: bool = False

    def request(self, payload: bytes) -> bytes:
        if self.closed:
            raise ChannelClosedError(
                f"channel {self.source!r} -> {self.destination!r} is closed"
            )
        return self.network.send(self.source, self.destination, payload)

    def close(self) -> None:
        """Release underlying resources."""
        self.closed = True


@dataclass
class TamperInjector:
    """Interceptor that flips one bit in matching messages.

    ``destination`` filters which endpoint's traffic is attacked;
    ``probability`` (with ``rng``) or ``every_nth`` selects messages.
    Used by integrity tests and the FIG5 fault-injection bench.
    """

    destination: str
    rng: RandomSource | None = None
    probability: float = 1.0
    every_nth: int = 1
    bit_index: int = 7
    tampered: int = field(default=0)
    _seen: int = field(default=0)

    def __call__(self, source: str, destination: str, payload: bytes) -> bytes:
        if destination != self.destination or not payload:
            return payload
        self._seen += 1
        if self.every_nth > 1 and self._seen % self.every_nth != 0:
            return payload
        if self.rng is not None and self.probability < 1.0:
            if self.rng.randbelow(1_000_000) >= int(self.probability * 1_000_000):
                return payload
        position = min(self.bit_index // 8, len(payload) - 1)
        mutated = bytearray(payload)
        mutated[position] ^= 1 << (self.bit_index % 8)
        self.tampered += 1
        return bytes(mutated)
