"""In-process request/response transport with fault injection.

Models the paper's deployment ("four servers ... all ports and IP
addresses hardcoded") as named endpoints on a :class:`Network`.  Every
message crosses the wire as bytes — services register a handler taking
and returning ``bytes`` — so the codec layer is genuinely exercised, and
interceptors plus a seeded :class:`repro.sim.faults.FaultPlan` can
delay, tamper with, duplicate or drop traffic on *both* the request and
the response path to test the protocol's failure behaviour (MAC
rejection, replay detection, idempotent retransmits).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, NamedTuple

from repro.errors import (
    ChannelClosedError,
    NetworkError,
    RequestDroppedError,
    ResponseDroppedError,
)
from repro.mathlib.rand import RandomSource
from repro.obs.registry import SIZE_BOUNDS_BYTES
from repro.sim.clock import Clock, SimClock
from repro.sim.faults import FaultPlan, apply_corruption

__all__ = [
    "Network",
    "Endpoint",
    "EndpointStats",
    "Channel",
    "TamperInjector",
]

Handler = Callable[[bytes], bytes]
Interceptor = Callable[[str, str, bytes], bytes | None]


@dataclass
class Endpoint:
    """A named service on the network.

    ``requests_served``/``bytes_in`` count only requests whose handler
    returned normally; a handler that raises increments
    ``handler_errors`` instead.  The ``fault_*`` counters attribute
    every injected fault on the endpoint's links (either direction) to
    the service side, so operators can see which server a chaos plan is
    hitting.
    """

    name: str
    handler: Handler
    requests_served: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    handler_errors: int = 0
    fault_drops: int = 0
    fault_duplicates: int = 0
    fault_corruptions: int = 0
    fault_delays: int = 0
    fault_delay_us: int = 0


class EndpointStats(NamedTuple):
    """Per-endpoint counters; index 0-2 keep the legacy tuple layout."""

    requests_served: int
    bytes_in: int
    bytes_out: int
    handler_errors: int
    fault_drops: int
    fault_duplicates: int
    fault_corruptions: int
    fault_delays: int
    fault_delay_us: int


class Network:
    """A message bus connecting endpoints by name.

    ``send(src, dst, payload)`` delivers synchronously and returns the
    response bytes.  Interceptors run in registration order on the
    request path (and, separately, on the response path); an interceptor
    may return modified bytes, the original bytes, or ``None`` to drop
    the message (which surfaces to the sender as :class:`NetworkError`,
    like a timeout would).  An installed :class:`FaultPlan` is consulted
    after the interceptors in each direction.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        latency_us: int = 0,
        registry=None,
    ) -> None:
        self._endpoints: dict[str, Endpoint] = {}
        self._interceptors: list[Interceptor] = []
        self._response_interceptors: list[Interceptor] = []
        self._clock = clock if clock is not None else SimClock()
        self._latency_us = latency_us
        self._fault_plan: FaultPlan | None = None
        self.messages_sent = 0
        self.bytes_sent = 0
        self.handler_errors = 0
        self._request_sizes = None
        self._response_sizes = None
        if registry is not None:
            self.attach_registry(registry)

    def attach_registry(self, registry) -> None:
        """Export network counters through a metrics registry.

        The per-message tallies stay plain attributes (the hot path is
        untouched); the registry pulls them through a collector at
        snapshot time.  Message-size histograms are observed inline.
        """
        registry.add_collector(self._collect_metrics)
        self._request_sizes = registry.histogram(
            "net.request_bytes", SIZE_BOUNDS_BYTES
        )
        self._response_sizes = registry.histogram(
            "net.response_bytes", SIZE_BOUNDS_BYTES
        )

    def _collect_metrics(self) -> dict[str, int]:
        values = {
            "net.messages_sent": self.messages_sent,
            "net.bytes_sent": self.bytes_sent,
            "net.handler_errors": self.handler_errors,
        }
        for name, stats in self.endpoint_stats().items():
            for field_name, value in stats._asdict().items():
                values[f"net.endpoint.{name}.{field_name}"] = value
        return values

    def register(self, name: str, handler: Handler) -> Endpoint:
        """Attach a service; re-registering a name raises."""
        if name in self._endpoints:
            raise NetworkError(f"endpoint {name!r} already registered")
        endpoint = Endpoint(name=name, handler=handler)
        self._endpoints[name] = endpoint
        return endpoint

    def unregister(self, name: str) -> None:
        self._endpoints.pop(name, None)

    def add_interceptor(self, interceptor: Interceptor) -> None:
        """Install a fault-injection hook on the request path."""
        self._interceptors.append(interceptor)

    def add_response_interceptor(self, interceptor: Interceptor) -> None:
        """Install a hook on the response path.

        Called as ``interceptor(destination, source, response)`` — the
        first argument is the responding endpoint — and may modify or
        drop (``None``) the response after the handler has already run,
        which is exactly the "deposit accepted, ack lost" case the
        idempotent-retransmit machinery exists for.
        """
        self._response_interceptors.append(interceptor)

    def clear_interceptors(self) -> None:
        self._interceptors.clear()
        self._response_interceptors.clear()

    # -- fault plan -------------------------------------------------------

    def install_fault_plan(self, plan: FaultPlan | None) -> None:
        """Attach (or with ``None`` remove) the seeded fault plan."""
        self._fault_plan = plan

    @property
    def fault_plan(self) -> FaultPlan | None:
        return self._fault_plan

    def _advance(self, delta_us: int) -> None:
        if delta_us and isinstance(self._clock, SimClock):
            self._clock.advance(delta_us)

    def send(self, source: str, destination: str, payload: bytes) -> bytes:
        """Deliver ``payload`` and return the endpoint's response bytes.

        Raises :class:`RequestDroppedError` when the request never
        reached the handler, and :class:`ResponseDroppedError` when the
        handler ran but its response was lost — callers that retry must
        treat the latter as "possibly committed" and retransmit
        idempotently.
        """
        endpoint = self._endpoints.get(destination)
        if endpoint is None:
            raise NetworkError(f"no endpoint named {destination!r}")
        for interceptor in self._interceptors:
            result = interceptor(source, destination, payload)
            if result is None:
                raise RequestDroppedError(
                    f"message from {source!r} to {destination!r} was dropped"
                )
            payload = result
        plan = self._fault_plan
        deliveries = 1
        if plan is not None:
            decision = plan.decide(source, destination, len(payload))
            if decision.delay_us:
                endpoint.fault_delays += 1
                endpoint.fault_delay_us += decision.delay_us
                self._advance(decision.delay_us)
            if decision.drop:
                endpoint.fault_drops += 1
                raise RequestDroppedError(
                    f"message from {source!r} to {destination!r} was "
                    + ("partitioned" if decision.partitioned else "dropped")
                )
            if decision.corrupt is not None:
                endpoint.fault_corruptions += 1
                payload = apply_corruption(payload, decision.corrupt)
            if decision.duplicate:
                endpoint.fault_duplicates += 1
                deliveries = 2
        self._advance(self._latency_us)
        response = b""
        for _ in range(deliveries):
            self.messages_sent += 1
            self.bytes_sent += len(payload)
            if self._request_sizes is not None:
                self._request_sizes.observe(len(payload))
            try:
                response = endpoint.handler(payload)
            except Exception:
                endpoint.handler_errors += 1
                self.handler_errors += 1
                raise
            endpoint.requests_served += 1
            endpoint.bytes_in += len(payload)
            endpoint.bytes_out += len(response)
            if self._response_sizes is not None:
                self._response_sizes.observe(len(response))
        for interceptor in self._response_interceptors:
            result = interceptor(destination, source, response)
            if result is None:
                raise ResponseDroppedError(
                    f"response from {destination!r} to {source!r} was dropped"
                )
            response = result
        if plan is not None:
            decision = plan.decide(destination, source, len(response))
            if decision.delay_us:
                endpoint.fault_delays += 1
                endpoint.fault_delay_us += decision.delay_us
                self._advance(decision.delay_us)
            if decision.drop:
                endpoint.fault_drops += 1
                raise ResponseDroppedError(
                    f"response from {destination!r} to {source!r} was "
                    + ("partitioned" if decision.partitioned else "dropped")
                )
            if decision.corrupt is not None:
                endpoint.fault_corruptions += 1
                response = apply_corruption(response, decision.corrupt)
            if decision.duplicate:
                # The sender keeps one copy of a duplicated response;
                # counted so transcripts still record the fault.
                endpoint.fault_duplicates += 1
        return response

    def channel(self, source: str, destination: str) -> "Channel":
        """A bound sender convenience object."""
        return Channel(network=self, source=source, destination=destination)

    def endpoint_stats(self) -> dict[str, EndpointStats]:
        """name -> :class:`EndpointStats` (legacy indexes 0-2 preserved)."""
        return {
            name: EndpointStats(
                requests_served=ep.requests_served,
                bytes_in=ep.bytes_in,
                bytes_out=ep.bytes_out,
                handler_errors=ep.handler_errors,
                fault_drops=ep.fault_drops,
                fault_duplicates=ep.fault_duplicates,
                fault_corruptions=ep.fault_corruptions,
                fault_delays=ep.fault_delays,
                fault_delay_us=ep.fault_delay_us,
            )
            for name, ep in self._endpoints.items()
        }


@dataclass
class Channel:
    """A (source, destination) pair with a ``request`` method."""

    network: Network
    source: str
    destination: str
    closed: bool = False

    def request(self, payload: bytes) -> bytes:
        if self.closed:
            raise ChannelClosedError(
                f"channel {self.source!r} -> {self.destination!r} is closed"
            )
        return self.network.send(self.source, self.destination, payload)

    def close(self) -> None:
        """Release underlying resources."""
        self.closed = True


@dataclass
class TamperInjector:
    """Interceptor that flips one bit in matching messages.

    ``destination`` filters which endpoint's traffic is attacked;
    ``probability`` (with ``rng``) or ``every_nth`` selects messages.
    Used by integrity tests and the FIG5 fault-injection bench.
    """

    destination: str
    rng: RandomSource | None = None
    probability: float = 1.0
    every_nth: int = 1
    bit_index: int = 7
    tampered: int = field(default=0)
    _seen: int = field(default=0)

    def __call__(self, source: str, destination: str, payload: bytes) -> bytes:
        if destination != self.destination or not payload:
            return payload
        self._seen += 1
        if self.every_nth > 1 and self._seen % self.every_nth != 0:
            return payload
        if self.rng is not None and self.probability < 1.0:
            if self.rng.randbelow(1_000_000) >= int(self.probability * 1_000_000):
                return payload
        position = min(self.bit_index // 8, len(payload) - 1)
        mutated = bytearray(payload)
        mutated[position] ^= 1 << (self.bit_index % 8)
        self.tampered += 1
        return bytes(mutated)
