"""Real TCP transport for the deployment's endpoints.

The paper's prototype ran four Perl servers on hardcoded ports.  This
module makes that literal: any byte handler (the same ones the
in-process :class:`repro.sim.network.Network` serves) can be exposed on
a TCP port with a 4-byte length-prefixed framing, and
:class:`SocketChannel` is a drop-in replacement for
:class:`repro.sim.network.Channel` — the smart-device and RC client
code runs unmodified over real sockets.

``serve_deployment`` starts the three servers (MWS-SD, MWS-Client, PKG)
on ephemeral localhost ports and returns their addresses.
"""

from __future__ import annotations

import socket
import socketserver
import struct
import threading
from dataclasses import dataclass
from typing import Callable

from repro.errors import NetworkError

__all__ = [
    "FrameServer",
    "SocketChannel",
    "ServedDeployment",
    "serve_deployment",
    "read_frame",
    "write_frame",
]

_LENGTH = struct.Struct(">I")
_MAX_FRAME = 64 * 1024 * 1024  # defensive cap


def _recv_exact(connection: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = connection.recv(remaining)
        if not chunk:
            raise NetworkError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(connection: socket.socket) -> bytes:
    """Read one length-prefixed frame."""
    (length,) = _LENGTH.unpack(_recv_exact(connection, _LENGTH.size))
    if length > _MAX_FRAME:
        raise NetworkError(f"frame of {length} bytes exceeds the {_MAX_FRAME} cap")
    return _recv_exact(connection, length)


def write_frame(connection: socket.socket, payload: bytes) -> None:
    """Write one length-prefixed frame."""
    if len(payload) > _MAX_FRAME:
        raise NetworkError(f"frame of {len(payload)} bytes exceeds the cap")
    connection.sendall(_LENGTH.pack(len(payload)) + payload)


class FrameServer:
    """A threaded TCP server running ``handler(bytes) -> bytes`` per frame.

    Connections are persistent: a client may send many frames over one
    connection (each answered in order), mirroring how the prototype's
    servers "listen for messages on a particular port".
    """

    def __init__(self, handler: Callable[[bytes], bytes],
                 host: str = "127.0.0.1", port: int = 0) -> None:
        outer = self

        class _Handler(socketserver.BaseRequestHandler):
            def handle(self) -> None:  # pragma: no cover - thread body
                while True:
                    try:
                        request = read_frame(self.request)
                    except (NetworkError, OSError):
                        return
                    try:
                        response = outer._handler(request)
                    except Exception as exc:  # handler bug: report, keep serving
                        response = b"ERR:InternalError:" + str(exc).encode()
                    try:
                        write_frame(self.request, response)
                    except OSError:
                        return

        class _Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._handler = handler
        self._server = _Server((host, port), _Handler)
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self._server.server_address[:2]

    def start(self) -> "FrameServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "FrameServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


class SocketChannel:
    """Client side: a persistent framed connection with ``request()``.

    Drop-in for :class:`repro.sim.network.Channel`; reconnects lazily if
    the server closed the connection.
    """

    def __init__(self, host: str, port: int, timeout_s: float = 10.0) -> None:
        self._address = (host, port)
        self._timeout_s = timeout_s
        self._connection: socket.socket | None = None
        self._lock = threading.Lock()

    def _connect(self) -> socket.socket:
        connection = socket.create_connection(self._address, self._timeout_s)
        connection.settimeout(self._timeout_s)
        return connection

    def request(self, payload: bytes) -> bytes:
        with self._lock:
            for attempt in (0, 1):
                if self._connection is None:
                    self._connection = self._connect()
                try:
                    write_frame(self._connection, payload)
                    return read_frame(self._connection)
                except (NetworkError, OSError):
                    self.close()
                    if attempt:
                        raise NetworkError(
                            f"request to {self._address} failed after reconnect"
                        )
            raise NetworkError("unreachable")  # pragma: no cover

    def close(self) -> None:
        """Release underlying resources."""
        if self._connection is not None:
            try:
                self._connection.close()
            finally:
                self._connection = None

    def __enter__(self) -> "SocketChannel":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


@dataclass
class ServedDeployment:
    """Handle on a deployment exposed over TCP."""

    deployment: object
    mws_sd: FrameServer
    mws_sd_batch: FrameServer
    mws_client: FrameServer
    pkg: FrameServer

    def addresses(self) -> dict[str, tuple[str, int]]:
        return {
            "mws-sd": self.mws_sd.address,
            "mws-sd-batch": self.mws_sd_batch.address,
            "mws-client": self.mws_client.address,
            "pkg": self.pkg.address,
        }

    def channel(self, endpoint: str) -> SocketChannel:
        host, port = self.addresses()[endpoint]
        return SocketChannel(host, port)

    def stop(self) -> None:
        self.mws_sd.stop()
        self.mws_sd_batch.stop()
        self.mws_client.stop()
        self.pkg.stop()

    def __enter__(self) -> "ServedDeployment":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def serve_deployment(deployment, host: str = "127.0.0.1") -> ServedDeployment:
    """Expose a deployment's four endpoints on ephemeral TCP ports
    (the prototype's "four servers are required to be started up")."""
    mws_sd = FrameServer(deployment.mws.deposit_handler, host).start()
    mws_sd_batch = FrameServer(deployment.mws.batch_deposit_handler, host).start()
    mws_client = FrameServer(deployment.mws.retrieve_handler, host).start()
    pkg = FrameServer(deployment.pkg.handler, host).start()
    return ServedDeployment(
        deployment=deployment,
        mws_sd=mws_sd,
        mws_sd_batch=mws_sd_batch,
        mws_client=mws_client,
        pkg=pkg,
    )
