"""Revocation-churn harness: key lifecycle correctness under live load.

``repro bench revocation`` wraps this module into
``BENCH_revocation.json``.  It drives the replicated, sharded warehouse
through a battery of **seeded fault plans** while a revocation schedule
churns underneath the traffic — a wholesale RC revocation, a
per-attribute revocation and a bare epoch roll all land while deposit
workers, the paged retrieval task and the background re-encryption
drain are running — and asserts the lifecycle laws on every plan:

* **Blocked** — after the run, a revoked RC can never reach a
  post-revocation deposit: the gatekeeper refuses the wholesale-revoked
  RC outright, the attribute-revoked RC is never served the revoked
  attribute's messages, and even a ticket minted with the full
  pre-revocation attribute map (the in-flight ticket race) cannot
  extract the revoked key from the PKG.
* **Conserved** — lazy re-encryption re-wraps bytes, so raw ciphertext
  digests are not comparable across plans; the *origin* digests (the
  pre-wrap bytes, recorded by the engine at first touch) must form the
  same multiset on every plan, and the runtime's own no-loss /
  no-duplication law must hold.
* **Decryptable** — a non-revoked auditor RC decrypts every accepted
  message end to end, peeling however many re-encryption layers the
  plan's roll/drain interleaving produced, plus the post-roll deposits.
* **Deterministic** — same seed, same plan: the scheduler transcript
  fingerprint and the observability dump replay byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.deployment import Deployment, DeploymentConfig
from repro.errors import RevokedError, TicketError
from repro.mathlib.rand import HmacDrbg, derive_seed
from repro.mws.runtime import ShardWorkerPool
from repro.mws.service import MwsConfig
from repro.sim.faults import FaultPlan, WorkerFaultSpec
from repro.sim.sanitizer import OwnershipSanitizer, install, uninstall
from repro.wire.messages import BatchDepositReceipt

__all__ = ["RevocationConfig", "CHURN_PLANS", "run_revocation"]

#: The RC the schedule revokes wholesale mid-run.
VICTIM = "rev-victim-rc"
#: The RC the schedule revokes for one attribute mid-run.
VICTIM_ATTR = "rev-victim-attr-rc"
#: The non-revoked RC that must still decrypt everything afterwards.
AUDITOR = "rev-auditor-rc"

#: The seeded fault-plan battery: (name, worker-fault kwargs, pool
#: kwargs).  Every plan runs the same workload *and the same revocation
#: schedule* on the same deployment seed, so the origin-digest multiset
#: must be identical across rows no matter how faults and epoch rolls
#: interleave.
CHURN_PLANS: tuple[tuple[str, dict, dict], ...] = (
    ("clean-churn", {}, {}),
    # Epoch rolls concurrent with leader failover: the chaos task and
    # the revocation-churn task interleave under the same scheduler.
    ("leader-kill-churn", {"leader_kill": 0.7, "max_leader_kills": 3}, {}),
    # Worker crashes adjacent to rolls — the mid-epoch-roll crash model:
    # a worker dies with its sub-batch in flight while the view moves.
    ("crash-churn", {"crash": 0.3, "max_crashes": 2}, {}),
    (
        "follower-lag-churn",
        {"leader_kill": 0.7, "max_leader_kills": 3, "follower_lag": 0.8},
        {"quorum": 1},
    ),
    # Rolls concurrent with an online rebalance: re-wrapped records move
    # between shards while the drain and the re-encryption sweep run.
    ("rebalance-churn", {}, {"rebalance": True}),
    (
        "mid-roll-crash",
        {
            "crash": 0.4,
            "max_crashes": 2,
            "leader_kill": 0.5,
            "max_leader_kills": 2,
        },
        {"rebalance": True, "rebalance_crash_after": 3},
    ),
)


@dataclass
class RevocationConfig:
    """Knobs for one revocation-churn run (defaults sized for CI)."""

    #: Warehouse shards in the fault-plan battery.
    shards: int = 2
    #: Copies per shard (>= 2 so failover has somewhere to promote).
    replicas: int = 2
    #: Acks per mutation; None = majority.
    quorum: int | None = None
    #: Deposit workers in the simulated pool.
    workers: int = 2
    #: Devices in the workload.
    devices: int = 3
    #: Readings per device.
    batch_size: int = 4
    #: Retrieval page size.
    page_size: int = 8
    #: Pairing preset (TOY64 keeps CI fast).
    preset: str = "TOY64"
    #: Master seed; each plan and lane takes a derived child stream.
    seed: bytes = b"repro-revocation"
    #: Extra shards the rebalance plans drain onto.
    rebalance_shards: int = 2
    #: Scheduler steps between background re-encryption sweeps.
    reencrypt_every: int = 5
    #: Records re-wrapped per sweep.
    reencrypt_batch: int = 4
    #: Run every fault plan under the ownership sanitizer — any
    #: cross-task shard/queue access raises instead of completing.
    sanitize: bool = False
    #: Attribute names the workload cycles through; the schedule revokes
    #: ``attributes[0]`` for the per-attribute victim.
    attributes: tuple[str, ...] = (
        "ELECTRIC-P-SV",
        "WATER-P-SV",
        "GAS-P-SV",
    )
    extra: dict = field(default_factory=dict)


def _workload(config: RevocationConfig) -> list[tuple[str, list[tuple[str, bytes]]]]:
    """The fixed job list every plan deposits (plan-independent)."""
    return [
        (
            f"rev-dev-{index}",
            [
                (
                    config.attributes[seq % len(config.attributes)],
                    f"device=rev-{index};seq={seq};reading".encode("ascii"),
                )
                for seq in range(config.batch_size)
            ],
        )
        for index in range(config.devices)
    ]


def _revoked_attribute_payloads(config: RevocationConfig) -> set[bytes]:
    """Workload payloads deposited under ``attributes[0]``."""
    return {
        payload
        for _device, items in _workload(config)
        for attribute, payload in items
        if attribute == config.attributes[0]
    }


def _schedule(config: RevocationConfig) -> list[tuple[int, str | None, str | None]]:
    """The churn every plan applies: two revocations and a bare roll.

    Triggers are sub-job watermarks, so under every fault plan the
    wholesale revocation, the per-attribute revocation and the final
    roll land *between* committed sub-batches — deposits prepared at
    epoch 0 keep flowing through the in-flight admission window.
    """
    return [
        (2, VICTIM, None),
        (3, VICTIM_ATTR, config.attributes[0]),
        (4, None, None),
    ]


def _run_plan(
    config: RevocationConfig,
    name: str,
    spec_kwargs: dict,
    pool_kwargs: dict,
    verify: bool = True,
):
    """One seeded run of one plan.

    Returns ``(result, obs_dump, fault_counters, origin_digests,
    verification)``.  The dump and the origin-digest multiset are
    captured *before* the verification traffic, so a ``verify=False``
    replay reproduces both byte for byte.
    """
    deployment = Deployment.build(
        DeploymentConfig(
            preset=config.preset,
            rsa_bits=768,
            seed=derive_seed(config.seed, b"deployment"),
            mws=MwsConfig(
                message_shards=config.shards,
                message_replicas=config.replicas,
                replication_quorum=pool_kwargs.get("quorum", config.quorum),
            ),
        )
    )
    try:
        # The victims exist (and hold grants) before the run so the
        # mid-run schedule has identities to revoke; building them here
        # also keeps the replay's RNG and metric state identical.
        victim = deployment.new_receiving_client(
            VICTIM, "victim-password", attributes=list(config.attributes)
        )
        victim_attr = deployment.new_receiving_client(
            VICTIM_ATTR, "victim-attr-password", attributes=list(config.attributes)
        )
        plan = FaultPlan(
            HmacDrbg(derive_seed(config.seed, b"plan:" + name.encode("ascii"))),
            registry=deployment.registry,
        )
        plan.set_worker_faults(WorkerFaultSpec(**spec_kwargs))
        deployment.network.install_fault_plan(plan)
        rebalance = pool_kwargs.get("rebalance", False)
        pool = ShardWorkerPool(
            deployment,
            workers=config.workers,
            scheduler_seed=derive_seed(config.seed, b"schedule:" + name.encode("ascii")),
            page_size=config.page_size,
            failover_every=3,
            rebalance_stores=[None] * config.rebalance_shards if rebalance else None,
            rebalance_after=2,
            rebalance_crash_after=pool_kwargs.get("rebalance_crash_after"),
            revocation_schedule=_schedule(config),
            reencrypt_every=config.reencrypt_every,
            reencrypt_batch=config.reencrypt_batch,
        )
        previous = None
        if config.sanitize:
            previous = install(OwnershipSanitizer(registry=deployment.registry))
        try:
            result = pool.run(_workload(config))
        finally:
            if config.sanitize:
                uninstall(previous)
        dump = deployment.obs_dump_json()
        counters = dict(plan.counters)
        engine = deployment.reencryptor
        origin = sorted(
            engine.origin_digest_of(record)
            for record in deployment.mws.message_db.records()
        )
        verification = (
            _verify_lifecycle(deployment, config, result, victim, victim_attr)
            if verify
            else None
        )
        return result, dump, counters, origin, verification
    finally:
        deployment.close()


def _verify_lifecycle(deployment, config, result, victim, victim_attr) -> dict:
    """Post-run audit: revoked RCs blocked, everyone else still whole.

    Runs on clean links (the fault plan is removed first — the audit
    probes correctness of the *end state*, not transport resilience)
    and after the schedule has fully applied, so ``current_epoch`` is
    the final epoch and every stored record has converged onto it.
    """
    deployment.network.install_fault_plan(None)
    current = deployment.revocation.current_epoch
    attributes = list(config.attributes)

    # Fresh post-revocation deposits, stamped with the final epoch.
    device = deployment.new_smart_device("rev-post-dev")
    post_payloads = [
        b"post-roll;attr=0;reading",
        b"post-roll;attr=1;reading",
    ]
    request = device.build_many(
        [(attributes[0], post_payloads[0]), (attributes[1], post_payloads[1])]
    )
    receipt = BatchDepositReceipt.from_bytes(
        deployment.sd_many_channel("rev-post-dev").request(request.to_bytes())
    )
    post_ids = [status.message_id for status in receipt.statuses if status.ok]
    post_accepted = not receipt.error and len(post_ids) == len(post_payloads)

    attempts = 0
    blocked = 0

    # 1. Wholesale revocation bites at the gatekeeper: the RC cannot
    #    even open a retrieval session, let alone touch the new deposit.
    attempts += 1
    try:
        victim.retrieve(deployment.rc_mws_channel(VICTIM))
    except RevokedError:
        blocked += 1

    # 2. Per-attribute revocation bites at the MMS filter: the RC still
    #    retrieves, but no plaintext under the revoked attribute — old
    #    or new — is ever served to it.
    forbidden = _revoked_attribute_payloads(config) | {post_payloads[0]}
    attempts += 1
    served = victim_attr.retrieve_and_decrypt(
        deployment.rc_mws_channel(VICTIM_ATTR),
        deployment.rc_pkg_channel(VICTIM_ATTR),
    )
    served_plaintexts = {message.plaintext for message in served}
    if served_plaintexts and not (served_plaintexts & forbidden):
        blocked += 1

    # 3. The in-flight ticket race: a ticket minted with the *full*
    #    pre-revocation attribute map at the current epoch (as if the
    #    Token Generator raced the revocation) still cannot extract the
    #    revoked attribute's key — the PKG checks the revocation view
    #    again at extraction time.
    attempts += 1
    aid_map = deployment.mws.policy_db.attributes_for(VICTIM_ATTR)
    revoked_aid = next(
        aid for aid, attribute in aid_map.items() if attribute == attributes[0]
    )
    post_record = deployment.mws.message_db.fetch(post_ids[0])
    sealed = deployment.mws.token_generator.issue(
        VICTIM_ATTR,
        victim_attr._rsa.public,  # white-box: the sim forges the race
        aid_map,
        epoch=current,
        policy_version=deployment.mws.policy_db.version,
    )
    token = victim_attr.open_token(sealed)
    session_id = victim_attr.authenticate_to_pkg(
        deployment.rc_pkg_channel(VICTIM_ATTR), token
    )
    try:
        victim_attr.fetch_key(
            deployment.rc_pkg_channel(VICTIM_ATTR),
            session_id,
            token.session_key,
            revoked_aid,
            post_record.nonce,
            epoch=current,
        )
    except TicketError:
        blocked += 1

    # A non-revoked RC still decrypts the whole warehouse end to end —
    # every workload message (through however many re-encryption layers
    # the plan produced) plus the fresh post-roll deposits.
    auditor = deployment.new_receiving_client(
        AUDITOR, "auditor-password", attributes=attributes
    )
    decrypted = auditor.retrieve_and_decrypt(
        deployment.rc_mws_channel(AUDITOR),
        deployment.rc_pkg_channel(AUDITOR),
    )
    plaintexts = {message.plaintext for message in decrypted}
    decrypted_ok = (
        len(decrypted) == len(result.accepted_ids) + len(post_ids)
        and all(payload in plaintexts for payload in post_payloads)
    )

    return {
        "final_epoch": current,
        "post_accepted": post_accepted,
        "attempts": attempts,
        "blocked": blocked,
        "victim_attr_served": len(served),
        "decrypted": len(decrypted),
        "decrypted_ok": decrypted_ok,
    }


def run_revocation(config: RevocationConfig | None = None) -> dict:
    """Run the battery and return the ``BENCH_revocation.json`` dict."""
    config = config if config is not None else RevocationConfig()
    plans = []
    clean_origin: list[str] | None = None
    total_attempts = 0
    total_blocked = 0
    for name, spec_kwargs, pool_kwargs in CHURN_PLANS:
        result, dump, counters, origin, verification = _run_plan(
            config, name, spec_kwargs, pool_kwargs
        )
        replay, replay_dump, _, replay_origin, _ = _run_plan(
            config, name, spec_kwargs, pool_kwargs, verify=False
        )
        if clean_origin is None:
            clean_origin = origin
        deterministic = (
            result.fingerprint() == replay.fingerprint()
            and dump == replay_dump
            and origin == replay_origin
        )
        total_attempts += verification["attempts"]
        total_blocked += verification["blocked"]
        row = {
            "plan": name,
            "accepted": len(result.accepted_ids),
            "retrieved": len(result.retrieved_counts),
            "shard_counts": result.shard_counts,
            "crashes": result.crashes,
            "failovers": result.failovers,
            "leader_kills": counters.get("leader_kills", 0),
            "follower_lags": counters.get("follower_lags", 0),
            "rebalance_moves": result.rebalance_moves,
            "epoch_rolls": result.epoch_rolls,
            "final_epoch": verification["final_epoch"],
            "reencrypt_moves": result.reencrypt_moves,
            "conservation_ok": result.conservation_ok(),
            "origin_conserved": origin == clean_origin,
            "revoked_attempts": verification["attempts"],
            "revoked_blocked": verification["blocked"],
            "post_accepted": verification["post_accepted"],
            "decrypted": verification["decrypted"],
            "decrypted_ok": verification["decrypted_ok"],
            "deterministic": deterministic,
            "fingerprint": result.fingerprint(),
        }
        row["ok"] = (
            row["conservation_ok"]
            and row["origin_conserved"]
            and row["deterministic"]
            and row["post_accepted"]
            and row["decrypted_ok"]
            and row["revoked_blocked"] == row["revoked_attempts"]
        )
        plans.append(row)

    ok_plans = sum(1 for row in plans if row["ok"])
    return {
        "bench": "revocation",
        "schema_version": 1,
        "meta": {
            "preset": config.preset,
            "seed": config.seed.decode("utf-8", "replace"),
            "shards": config.shards,
            "replicas": config.replicas,
            "quorum": config.quorum,
            "workers": config.workers,
            "devices": config.devices,
            "batch_size": config.batch_size,
            "reencrypt_every": config.reencrypt_every,
            "schedule": [
                [trigger, rc_id, attribute]
                for trigger, rc_id, attribute in _schedule(config)
            ],
        },
        "plans": plans,
        "summary": {
            "plans": len(plans),
            "ok_fraction": round(ok_plans / len(plans), 3),
            "revoked_attempts": total_attempts,
            "revoked_blocked": total_blocked,
            "revoked_blocked_fraction": (
                round(total_blocked / total_attempts, 3) if total_attempts else 0.0
            ),
            "reencrypt_moves_total": sum(row["reencrypt_moves"] for row in plans),
            "epoch_rolls_total": sum(row["epoch_rolls"] for row in plans),
        },
    }
