"""Deterministic cooperative task scheduler for concurrency tests.

The shard-parallel runtime (:mod:`repro.mws.runtime`) needs *real*
interleaving — deposits racing retrievals, workers dying mid-batch — but
the test suite's golden fingerprints need every run to be exactly
reproducible.  This module squares that: tasks are plain generators
whose ``yield`` points are their preemption points, and the scheduler
picks which runnable task advances next by drawing from a seeded
:class:`~repro.mathlib.rand.RandomSource`.  Same seed, same task set ⇒
same interleaving, same transcript, byte-identical obs dump; a
different seed explores a different (but equally reproducible)
schedule, which is how the Hypothesis conservation suite searches the
interleaving space.

Crash injection composes through the ``interrupt`` hook: before a task
runs a step the hook may condemn it, the scheduler closes its generator
(running ``finally`` blocks, like a worker's cleanup handler) and the
``on_kill`` callback decides what survives — typically requeueing the
task's in-flight work onto a replacement worker.

Time: when a :class:`~repro.sim.clock.SimClock` is attached, each
scheduler step advances it by ``step_us``, so schedules are visible in
sim-time-stamped transcripts without any wall-clock dependence.
"""

from __future__ import annotations

from typing import Callable, Generator, Iterator

from repro.errors import SanitizerError, SchedulerError
from repro.mathlib.rand import RandomSource
from repro.sim.clock import SimClock
from repro.sim.sanitizer import active as _sanitizer_active

__all__ = ["TaskState", "SchedulerTask", "DeterministicScheduler"]


class TaskState:
    """Lifecycle of a scheduled task (plain string constants)."""

    READY = "READY"
    DONE = "DONE"
    FAILED = "FAILED"
    KILLED = "KILLED"


class SchedulerTask:
    """One cooperative task: a generator plus its scheduling state.

    ``result`` holds the generator's return value once the task is
    ``DONE``; ``error`` holds the exception that ended a ``FAILED``
    task.  ``steps`` counts how many times the scheduler advanced it —
    the per-task share of the interleaving, exported by the runtime as
    worker busy histograms.
    """

    def __init__(self, name: str, gen: Generator) -> None:
        self.name = name
        self.gen = gen
        self.state = TaskState.READY
        self.result = None
        self.error: BaseException | None = None
        self.steps = 0

    @property
    def runnable(self) -> bool:
        return self.state == TaskState.READY

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SchedulerTask({self.name!r}, {self.state}, steps={self.steps})"


class DeterministicScheduler:
    """Seeded round-free scheduler over cooperative generator tasks.

    Parameters
    ----------
    rng:
        Source of interleaving decisions.  Give the scheduler its own
        child stream (``derive_seed``/``fork``) — sharing a stream with
        the workload would let scheduling perturb payload bytes.
    clock:
        Optional :class:`SimClock` advanced by ``step_us`` per step.
    max_steps:
        Hard budget; exceeding it raises :class:`SchedulerError` rather
        than looping forever on a livelocked schedule.
    interrupt:
        Optional ``hook(task) -> bool`` consulted before each step; a
        true return kills the task *instead of* running the step.
    on_kill:
        Optional ``hook(task)`` run after an interrupt (or explicit
        :meth:`kill`) closed the task's generator — the place to requeue
        in-flight work or spawn a replacement.
    """

    def __init__(
        self,
        rng: RandomSource,
        clock: SimClock | None = None,
        step_us: int = 1,
        max_steps: int = 1_000_000,
        interrupt: Callable[[SchedulerTask], bool] | None = None,
        on_kill: Callable[[SchedulerTask], None] | None = None,
    ) -> None:
        self._rng = rng
        self._clock = clock
        self._step_us = step_us
        self._max_steps = max_steps
        self._interrupt = interrupt
        self._on_kill = on_kill
        self._tasks: list[SchedulerTask] = []
        self._names: set[str] = set()
        self.steps = 0

    # -- task management --------------------------------------------------

    def spawn(self, name: str, gen: Generator) -> SchedulerTask:
        """Register a generator as a runnable task.

        Names must be unique for the scheduler's lifetime so transcripts
        and kill hooks can identify tasks unambiguously.
        """
        if name in self._names:
            raise SchedulerError(f"duplicate task name {name!r}")
        task = SchedulerTask(name, gen)
        self._names.add(name)
        self._tasks.append(task)
        return task

    @property
    def tasks(self) -> list[SchedulerTask]:
        return list(self._tasks)

    def runnable_tasks(self) -> list[SchedulerTask]:
        return [task for task in self._tasks if task.runnable]

    def kill(self, task: SchedulerTask) -> None:
        """Terminate a task: close its generator, mark it ``KILLED``.

        Closing runs the generator's ``finally`` blocks — a killed
        worker still releases what it holds — then ``on_kill`` gets a
        chance to requeue the task's in-flight work.
        """
        if not task.runnable:
            return
        sanitizer = _sanitizer_active()
        if sanitizer is not None:
            # ``finally`` blocks run in the dying task's context.
            sanitizer.enter_task(task.name)
        try:
            task.gen.close()
        finally:
            if sanitizer is not None:
                sanitizer.exit_task()
        task.state = TaskState.KILLED
        if self._on_kill is not None:
            self._on_kill(task)

    # -- execution --------------------------------------------------------

    def step(self) -> SchedulerTask | None:
        """Advance one seeded-random runnable task by one step.

        Returns the task that was scheduled (even if this step killed or
        finished it), or ``None`` when nothing is runnable.  The rng is
        only consulted when there is a real choice — a lone runnable
        task costs no draw, so draining a tail does not shift the
        stream.
        """
        runnable = self.runnable_tasks()
        if not runnable:
            return None
        if self.steps >= self._max_steps:
            raise SchedulerError(
                f"scheduler exceeded {self._max_steps} steps with "
                f"{len(runnable)} task(s) still runnable"
            )
        if len(runnable) == 1:
            task = runnable[0]
        else:
            task = runnable[self._rng.randbelow(len(runnable))]
        self.steps += 1
        if self._clock is not None and self._step_us:
            self._clock.advance(self._step_us)
        if self._interrupt is not None and self._interrupt(task):
            self.kill(task)
            return task
        task.steps += 1
        sanitizer = _sanitizer_active()
        if sanitizer is not None:
            sanitizer.enter_task(task.name)
        try:
            next(task.gen)
        except StopIteration as stop:
            task.state = TaskState.DONE
            task.result = stop.value
        except SanitizerError:
            # An ownership violation is a harness-level defect, not a
            # modeled fault: surface it on the exact step it happened.
            task.state = TaskState.FAILED
            raise
        except Exception as error:
            task.state = TaskState.FAILED
            task.error = error
        finally:
            if sanitizer is not None:
                sanitizer.exit_task()
        return task

    def run(self, raise_on_failure: bool = True) -> list[SchedulerTask]:
        """Step until no task is runnable; return all tasks.

        With ``raise_on_failure`` (the default) the first ``FAILED``
        task re-raises its exception once the run drains — failures are
        never silently swallowed, but the remaining tasks still get to
        finish first so transcripts are complete.
        """
        while self.step() is not None:
            pass
        if raise_on_failure:
            for task in self._tasks:
                if task.state == TaskState.FAILED:
                    raise task.error
        return list(self._tasks)

    def __iter__(self) -> Iterator[SchedulerTask]:  # pragma: no cover
        return iter(self._tasks)
