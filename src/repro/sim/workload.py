"""Smart-meter workload generation for the Fig. 1 utility scenario.

The paper motivates the system with electric, water and gas meters in
apartment complexes whose readings interest different companies.  This
module generates deterministic synthetic fleets and reading streams:
per-meter base loads, daily sinusoidal usage patterns, noise, and
Poisson-ish arrival jitter — enough structure that examples and
benchmarks operate on plausible data rather than constant strings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from repro.mathlib.rand import HmacDrbg, RandomSource

__all__ = ["MeterKind", "MeterReading", "WorkloadConfig", "SmartMeterFleet"]


class MeterKind(str, Enum):
    """The three meter classes of the paper's Fig. 1."""

    ELECTRIC = "ELECTRIC"
    WATER = "WATER"
    GAS = "GAS"

    @property
    def unit(self) -> str:
        return {"ELECTRIC": "kWh", "WATER": "L", "GAS": "m3"}[self.value]


@dataclass
class MeterReading:
    """One reading as the device would report it."""

    device_id: str
    kind: MeterKind
    complex_name: str
    region: str
    value: float
    timestamp_us: int
    sequence: int

    def attribute(self) -> str:
        """The paper's attribute string, e.g. ``ELECTRIC-GLENBROOK-SV-CA``."""
        return f"{self.kind.value}-{self.complex_name}-{self.region}"

    def payload(self) -> bytes:
        """The message body the device encrypts."""
        return (
            f"device={self.device_id};kind={self.kind.value};"
            f"seq={self.sequence};value={self.value:.3f}{self.kind.unit};"
            f"t={self.timestamp_us}"
        ).encode("utf-8")


@dataclass
class WorkloadConfig:
    """Fleet shape and reading statistics."""

    complex_name: str = "GLENBROOK"
    region: str = "SV-CA"
    meters_per_kind: int = 4
    interval_us: int = 900 * 1_000_000  # 15-minute reporting interval
    jitter_us: int = 30 * 1_000_000
    seed: bytes = b"repro-workload"

    #: Mean consumption per interval by meter kind.
    base_levels = {
        MeterKind.ELECTRIC: 0.8,  # kWh per 15 min
        MeterKind.WATER: 22.0,    # litres
        MeterKind.GAS: 0.11,      # cubic metres
    }


class SmartMeterFleet:
    """Deterministic generator of meters and their reading streams."""

    def __init__(self, config: WorkloadConfig | None = None) -> None:
        self.config = config if config is not None else WorkloadConfig()
        self._rng = HmacDrbg(self.config.seed)
        self._device_rngs: dict[str, RandomSource] = {}

    def device_ids(self) -> list[str]:
        """All device ids in the fleet, e.g. ``ELECTRIC-GLENBROOK-003``."""
        ids = []
        for kind in MeterKind:
            for index in range(self.config.meters_per_kind):
                ids.append(self._device_id(kind, index))
        return ids

    def _device_id(self, kind: MeterKind, index: int) -> str:
        return f"{kind.value}-{self.config.complex_name}-{index:03d}"

    def _rng_for(self, device_id: str) -> RandomSource:
        if device_id not in self._device_rngs:
            self._device_rngs[device_id] = self._rng.fork(device_id.encode("utf-8"))
        return self._device_rngs[device_id]

    def kind_of(self, device_id: str) -> MeterKind:
        return MeterKind(device_id.split("-")[0])

    def attribute_for(self, kind: MeterKind) -> str:
        return f"{kind.value}-{self.config.complex_name}-{self.config.region}"

    def readings(
        self,
        device_id: str,
        count: int,
        start_us: int = 1_000_000_000,
    ):
        """Yield ``count`` readings for one device.

        Consumption follows a daily sinusoid around the kind's base
        level with multiplicative noise; timestamps advance by the
        reporting interval plus uniform jitter.
        """
        kind = self.kind_of(device_id)
        rng = self._rng_for(device_id)
        base = self.config.base_levels[kind]
        # Per-device scale in [0.6, 1.4): households differ.
        scale = 0.6 + rng.randbelow(8000) / 10000.0
        timestamp = start_us
        for sequence in range(count):
            day_fraction = (timestamp % 86_400_000_000) / 86_400_000_000
            daily = 1.0 + 0.5 * math.sin(2 * math.pi * (day_fraction - 0.25))
            noise = 0.85 + rng.randbelow(3000) / 10000.0
            value = max(0.0, base * scale * daily * noise)
            yield MeterReading(
                device_id=device_id,
                kind=kind,
                complex_name=self.config.complex_name,
                region=self.config.region,
                value=value,
                timestamp_us=timestamp,
                sequence=sequence,
            )
            timestamp += self.config.interval_us
            if self.config.jitter_us:
                timestamp += rng.randbelow(self.config.jitter_us)

    def round_of_readings(self, start_us: int = 1_000_000_000):
        """One reading from every device in the fleet (a reporting round)."""
        for device_id in self.device_ids():
            yield next(iter(self.readings(device_id, 1, start_us=start_us)))

    def deposit_items(
        self,
        device_id: str,
        count: int,
        start_us: int = 1_000_000_000,
    ) -> list[tuple[str, bytes]]:
        """``(attribute, payload)`` pairs ready for ``deposit_many``.

        The shape every batch API takes — one call turns a device's
        reading stream into a batch the load harness can ship.
        """
        return [
            (reading.attribute(), reading.payload())
            for reading in self.readings(device_id, count, start_us=start_us)
        ]
