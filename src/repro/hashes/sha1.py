"""SHA-1 implemented from FIPS 180-4.

The paper's protocol computes ``I = SHA1(A || Nonce)`` before mapping the
digest to a curve point, so SHA-1 is a load-bearing primitive here even
though it is no longer collision-resistant for adversarial inputs.  The
implementation follows the specification directly: 512-bit blocks,
80-round compression, Merkle–Damgård length padding.
"""

from __future__ import annotations

import struct

__all__ = ["SHA1", "sha1"]

_MASK32 = 0xFFFFFFFF


def _rotl(value: int, count: int) -> int:
    return ((value << count) | (value >> (32 - count))) & _MASK32


class SHA1:
    """Incremental SHA-1 with the familiar ``update``/``digest`` interface.

    >>> SHA1(b"abc").hexdigest()
    'a9993e364706816aba3e25717850c26c9cd0d89d'
    """

    digest_size = 20
    block_size = 64
    name = "sha1"

    _INITIAL_STATE = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)

    def __init__(self, data: bytes = b"") -> None:
        self._state = list(self._INITIAL_STATE)
        self._buffer = b""
        self._length = 0  # total message length in bytes
        if data:
            self.update(data)

    def copy(self) -> "SHA1":
        """An independent copy of the current hashing state."""
        clone = SHA1()
        clone._state = list(self._state)
        clone._buffer = self._buffer
        clone._length = self._length
        return clone

    def update(self, data: bytes) -> "SHA1":
        """Absorb more data; returns self for chaining."""
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError(f"SHA1.update expects bytes, got {type(data).__name__}")
        data = bytes(data)
        self._length += len(data)
        self._buffer += data
        while len(self._buffer) >= self.block_size:
            self._compress(self._buffer[: self.block_size])
            self._buffer = self._buffer[self.block_size :]
        return self

    def _compress(self, block: bytes) -> None:
        w = list(struct.unpack(">16I", block))
        for t in range(16, 80):
            w.append(_rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1))
        a, b, c, d, e = self._state
        for t in range(80):
            if t < 20:
                f = (b & c) | (~b & d)
                k = 0x5A827999
            elif t < 40:
                f = b ^ c ^ d
                k = 0x6ED9EBA1
            elif t < 60:
                f = (b & c) | (b & d) | (c & d)
                k = 0x8F1BBCDC
            else:
                f = b ^ c ^ d
                k = 0xCA62C1D6
            temp = (_rotl(a, 5) + f + e + k + w[t]) & _MASK32
            e, d, c, b, a = d, c, _rotl(b, 30), a, temp
        self._state = [
            (s + v) & _MASK32 for s, v in zip(self._state, (a, b, c, d, e))
        ]

    def digest(self) -> bytes:
        # Finalise on a copy so update() can continue afterwards.
        """The digest of everything absorbed so far (non-finalising)."""
        clone = self.copy()
        bit_length = clone._length * 8
        clone.update(b"\x80")
        pad_len = (56 - clone._length % 64) % 64
        clone.update(b"\x00" * pad_len)
        clone._buffer += struct.pack(">Q", bit_length)
        clone._compress(clone._buffer)
        return struct.pack(">5I", *clone._state)

    def hexdigest(self) -> str:
        """Hex form of :meth:`digest`."""
        return self.digest().hex()


def sha1(data: bytes) -> bytes:
    """One-shot SHA-1 digest of ``data``."""
    return SHA1(data).digest()
