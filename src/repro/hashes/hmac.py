"""HMAC (RFC 2104) over any hash in :data:`repro.hashes.HASH_REGISTRY`.

HMAC is the library's message-authentication workhorse: the paper's
Smart-Device Authenticator verifies ``MAC = H_K(rP || C || ... || T)``
with a key shared at device registration, and the HMAC-DRBG in
:mod:`repro.mathlib.rand` is built on :func:`hmac_sha256`.
"""

from __future__ import annotations

from repro.errors import CipherError

__all__ = ["Hmac", "hmac_sha1", "hmac_sha256", "hmac_md5", "constant_time_equal"]

#: Per-(algorithm, key) cache of the two HMAC pad-block midstates.
#: HMAC absorbs ``key ^ ipad`` / ``key ^ opad`` as the first block of
#: the inner/outer hashes; for a repeated key (the HMAC-DRBG's generate
#: loop, a device's per-registration MAC key) those two compressions
#: are identical on every MAC, so the states are computed once and
#: cloned per use.  Output is bit-identical to the uncached path.  The
#: cache is bounded and flushed wholesale when full — correctness never
#: depends on an entry being present.
_PAD_STATE_CACHE: dict = {}
_PAD_STATE_CACHE_MAX = 512


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Compare two byte strings without data-dependent early exit.

    Unequal lengths are still reported (length is not secret for MACs),
    but the content comparison touches every byte.
    """
    if len(a) != len(b):
        return False
    diff = 0
    for x, y in zip(a, b):
        diff |= x ^ y
    return diff == 0


class Hmac:
    """Incremental HMAC keyed with ``key`` over hash algorithm ``algorithm``.

    >>> import hashlib, hmac as stdlib_hmac
    >>> ours = Hmac(b"key", "sha256", b"msg").digest()
    >>> ours == stdlib_hmac.new(b"key", b"msg", hashlib.sha256).digest()
    True
    """

    def __init__(self, key: bytes, algorithm: str = "sha256", data: bytes = b"") -> None:
        from repro.hashes import HASH_REGISTRY

        if algorithm not in HASH_REGISTRY:
            raise CipherError(f"unknown hash algorithm {algorithm!r}")
        self._hash_cls = HASH_REGISTRY[algorithm]
        self.digest_size = self._hash_cls.digest_size
        cache_key = (algorithm, key)
        cached = _PAD_STATE_CACHE.get(cache_key)
        if cached is None:
            block_size = self._hash_cls.block_size
            if len(key) > block_size:
                key = self._hash_cls(key).digest()
            padded = key.ljust(block_size, b"\x00")
            cached = (
                self._hash_cls(bytes(b ^ 0x36 for b in padded)),
                self._hash_cls(bytes(b ^ 0x5C for b in padded)),
            )
            if len(_PAD_STATE_CACHE) >= _PAD_STATE_CACHE_MAX:
                _PAD_STATE_CACHE.clear()
            _PAD_STATE_CACHE[cache_key] = cached
        self._inner = cached[0].copy()
        self._outer = cached[1]
        if data:
            self.update(data)

    def update(self, data: bytes) -> "Hmac":
        """Absorb more data; returns self for chaining."""
        self._inner.update(data)
        return self

    def digest(self) -> bytes:
        """The digest of everything absorbed so far (non-finalising)."""
        outer = self._outer.copy()
        outer.update(self._inner.digest())
        return outer.digest()

    def hexdigest(self) -> str:
        """Hex form of :meth:`digest`."""
        return self.digest().hex()

    def verify(self, expected: bytes) -> bool:
        """Constant-time comparison of this MAC against ``expected``."""
        return constant_time_equal(self.digest(), expected)


def hmac_sha1(key: bytes, data: bytes) -> bytes:
    """One-shot HMAC-SHA1."""
    return Hmac(key, "sha1", data).digest()


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """One-shot HMAC-SHA256."""
    return Hmac(key, "sha256", data).digest()


def hmac_md5(key: bytes, data: bytes) -> bytes:
    """One-shot HMAC-MD5 (legacy fidelity only)."""
    return Hmac(key, "md5", data).digest()
