"""Key-derivation functions.

The protocol derives symmetric message keys from pairing values
(``K = e(sP, rI)`` is an element of F_p^2, not a DES key), so a KDF sits
between the IBE-KEM and the symmetric cipher.  KDF1/KDF2 are the
ISO-18033-2 counter constructions Boneh–Franklin style deployments use;
HKDF (RFC 5869) is provided as the modern extract-then-expand option.
"""

from __future__ import annotations

from repro.errors import CipherError
from repro.hashes.hmac import Hmac

__all__ = ["kdf1", "kdf2", "hkdf"]


def _counter_kdf(seed: bytes, length: int, algorithm: str, start: int) -> bytes:
    from repro.hashes import HASH_REGISTRY

    if algorithm not in HASH_REGISTRY:
        raise CipherError(f"unknown hash algorithm {algorithm!r}")
    if length < 0:
        raise CipherError(f"kdf length must be non-negative, got {length}")
    hash_cls = HASH_REGISTRY[algorithm]
    blocks: list[bytes] = []
    counter = start
    while sum(len(b) for b in blocks) < length:
        blocks.append(hash_cls(seed + counter.to_bytes(4, "big")).digest())
        counter += 1
    return b"".join(blocks)[:length]


def kdf1(seed: bytes, length: int, algorithm: str = "sha256") -> bytes:
    """ISO-18033-2 KDF1: ``Hash(seed || 0) || Hash(seed || 1) || ...``."""
    return _counter_kdf(seed, length, algorithm, start=0)


def kdf2(seed: bytes, length: int, algorithm: str = "sha256") -> bytes:
    """ISO-18033-2 KDF2: identical to KDF1 but the counter starts at 1."""
    return _counter_kdf(seed, length, algorithm, start=1)


def hkdf(
    ikm: bytes,
    length: int,
    salt: bytes = b"",
    info: bytes = b"",
    algorithm: str = "sha256",
) -> bytes:
    """HKDF (RFC 5869): extract-then-expand from input keying material."""
    if length < 0:
        raise CipherError(f"hkdf length must be non-negative, got {length}")
    digest_size = Hmac(b"", algorithm).digest_size
    if length > 255 * digest_size:
        raise CipherError(
            f"hkdf cannot produce {length} bytes with a {digest_size}-byte hash"
        )
    if not salt:
        salt = b"\x00" * digest_size
    prk = Hmac(salt, algorithm, ikm).digest()
    okm = b""
    block = b""
    counter = 1
    while len(okm) < length:
        block = Hmac(prk, algorithm, block + info + bytes([counter])).digest()
        okm += block
        counter += 1
    return okm[:length]
