"""CRC-32 (IEEE 802.3 polynomial), used by the storage engine.

Every record the log-structured engine writes carries a CRC-32 of its
payload; recovery after a crash truncates the log at the first record
whose checksum fails.  Implemented with the reflected table-driven
algorithm (polynomial 0xEDB88320), matching ``zlib.crc32``.
"""

from __future__ import annotations

__all__ = ["crc32"]


def _build_table() -> tuple[int, ...]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ 0xEDB88320
            else:
                crc >>= 1
        table.append(crc)
    return tuple(table)


_TABLE = _build_table()


def crc32(data: bytes, value: int = 0) -> int:
    """CRC-32 of ``data``, optionally continuing from a prior ``value``.

    >>> hex(crc32(b"123456789"))
    '0xcbf43926'
    """
    crc = value ^ 0xFFFFFFFF
    for byte in data:
        crc = (crc >> 8) ^ _TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF
