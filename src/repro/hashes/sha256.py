"""SHA-256 implemented from FIPS 180-4.

SHA-256 backs the library's HMAC-DRBG, the KDFs that turn pairing values
into symmetric keys, and the modern MAC option for smart devices.
"""

from __future__ import annotations

import struct

__all__ = ["SHA256", "sha256"]

_MASK32 = 0xFFFFFFFF

# Round constants: first 32 bits of the fractional parts of the cube
# roots of the first 64 primes.
_K = (
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5,
    0x3956C25B, 0x59F111F1, 0x923F82A4, 0xAB1C5ED5,
    0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174,
    0xE49B69C1, 0xEFBE4786, 0x0FC19DC6, 0x240CA1CC,
    0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7,
    0xC6E00BF3, 0xD5A79147, 0x06CA6351, 0x14292967,
    0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85,
    0xA2BFE8A1, 0xA81A664B, 0xC24B8B70, 0xC76C51A3,
    0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5,
    0x391C0CB3, 0x4ED8AA4A, 0x5B9CCA4F, 0x682E6FF3,
    0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
)


def _rotr(value: int, count: int) -> int:
    return ((value >> count) | (value << (32 - count))) & _MASK32


class SHA256:
    """Incremental SHA-256.

    >>> SHA256(b"abc").hexdigest()
    'ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad'
    """

    digest_size = 32
    block_size = 64
    name = "sha256"

    _INITIAL_STATE = (
        0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
        0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
    )

    def __init__(self, data: bytes = b"") -> None:
        self._state = list(self._INITIAL_STATE)
        self._buffer = b""
        self._length = 0
        if data:
            self.update(data)

    def copy(self) -> "SHA256":
        """An independent copy of the current hashing state."""
        clone = SHA256()
        clone._state = list(self._state)
        clone._buffer = self._buffer
        clone._length = self._length
        return clone

    def update(self, data: bytes) -> "SHA256":
        """Absorb more data; returns self for chaining."""
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError(f"SHA256.update expects bytes, got {type(data).__name__}")
        data = bytes(data)
        self._length += len(data)
        buffer = self._buffer + data
        n = len(buffer)
        if n >= 64:
            compress = self._compress
            end = n - (n & 63)
            for offset in range(0, end, 64):
                compress(buffer[offset : offset + 64])
            buffer = buffer[end:]
        self._buffer = buffer
        return self

    def _compress(self, block: bytes) -> None:
        # Rotations are written out inline: a helper call per rotation
        # (12 per round, 64 rounds) dominates the cost of the whole
        # library when SHA-256 backs the DRBG and every MAC.  Unmasked
        # intermediates are safe — stray bits above 2^32 never carry
        # *down*, so masking only the final sums is equivalent.
        mask = _MASK32
        w = list(struct.unpack(">16I", block))
        append = w.append
        for t in range(16, 64):
            x = w[t - 15]
            s0 = ((x >> 7) | (x << 25)) ^ ((x >> 18) | (x << 14)) ^ (x >> 3)
            y = w[t - 2]
            s1 = ((y >> 17) | (y << 15)) ^ ((y >> 19) | (y << 13)) ^ (y >> 10)
            append((w[t - 16] + s0 + w[t - 7] + s1) & mask)
        a, b, c, d, e, f, g, h = self._state
        for kt, wt in zip(_K, w):
            s1 = ((e >> 6) | (e << 26)) ^ ((e >> 11) | (e << 21)) ^ ((e >> 25) | (e << 7))
            temp1 = (h + s1 + ((e & f) ^ (~e & g)) + kt + wt) & mask
            s0 = ((a >> 2) | (a << 30)) ^ ((a >> 13) | (a << 19)) ^ ((a >> 22) | (a << 10))
            temp2 = (s0 + ((a & b) ^ (a & c) ^ (b & c))) & mask
            h = g
            g = f
            f = e
            e = (d + temp1) & mask
            d = c
            c = b
            b = a
            a = (temp1 + temp2) & mask
        state = self._state
        state[0] = (state[0] + a) & mask
        state[1] = (state[1] + b) & mask
        state[2] = (state[2] + c) & mask
        state[3] = (state[3] + d) & mask
        state[4] = (state[4] + e) & mask
        state[5] = (state[5] + f) & mask
        state[6] = (state[6] + g) & mask
        state[7] = (state[7] + h) & mask

    def digest(self) -> bytes:
        """The digest of everything absorbed so far (non-finalising)."""
        clone = self.copy()
        length = clone._length
        clone.update(
            b"\x80"
            + b"\x00" * ((55 - length) % 64)
            + struct.pack(">Q", length * 8)
        )
        return struct.pack(">8I", *clone._state)

    def hexdigest(self) -> str:
        """Hex form of :meth:`digest`."""
        return self.digest().hex()


def sha256(data: bytes) -> bytes:
    """One-shot SHA-256 digest of ``data``."""
    return SHA256(data).digest()
