"""MD5 implemented from RFC 1321.

Present because the paper's prototype shipped with ``Perl Digest
SHA1/MD5``; the library exposes it for fidelity and for hashing
non-adversarial bookkeeping values, never for new security decisions.
"""

from __future__ import annotations

import math
import struct

__all__ = ["MD5", "md5"]

_MASK32 = 0xFFFFFFFF

# Per-round shift amounts from the RFC.
_SHIFTS = (
    [7, 12, 17, 22] * 4
    + [5, 9, 14, 20] * 4
    + [4, 11, 16, 23] * 4
    + [6, 10, 15, 21] * 4
)

# Constants derived from the sine function, as specified by the RFC.
_K = tuple(int(abs(math.sin(i + 1)) * 2**32) & _MASK32 for i in range(64))


def _rotl(value: int, count: int) -> int:
    return ((value << count) | (value >> (32 - count))) & _MASK32


class MD5:
    """Incremental MD5.

    >>> MD5(b"abc").hexdigest()
    '900150983cd24fb0d6963f7d28e17f72'
    """

    digest_size = 16
    block_size = 64
    name = "md5"

    _INITIAL_STATE = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476)

    def __init__(self, data: bytes = b"") -> None:
        self._state = list(self._INITIAL_STATE)
        self._buffer = b""
        self._length = 0
        if data:
            self.update(data)

    def copy(self) -> "MD5":
        """An independent copy of the current hashing state."""
        clone = MD5()
        clone._state = list(self._state)
        clone._buffer = self._buffer
        clone._length = self._length
        return clone

    def update(self, data: bytes) -> "MD5":
        """Absorb more data; returns self for chaining."""
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError(f"MD5.update expects bytes, got {type(data).__name__}")
        data = bytes(data)
        self._length += len(data)
        self._buffer += data
        while len(self._buffer) >= self.block_size:
            self._compress(self._buffer[: self.block_size])
            self._buffer = self._buffer[self.block_size :]
        return self

    def _compress(self, block: bytes) -> None:
        m = struct.unpack("<16I", block)
        a, b, c, d = self._state
        for i in range(64):
            if i < 16:
                f = (b & c) | (~b & d)
                g = i
            elif i < 32:
                f = (d & b) | (~d & c)
                g = (5 * i + 1) % 16
            elif i < 48:
                f = b ^ c ^ d
                g = (3 * i + 5) % 16
            else:
                f = c ^ (b | (~d & _MASK32))
                g = (7 * i) % 16
            f = (f + a + _K[i] + m[g]) & _MASK32
            a, d, c = d, c, b
            b = (b + _rotl(f, _SHIFTS[i])) & _MASK32
        self._state = [
            (s + v) & _MASK32 for s, v in zip(self._state, (a, b, c, d))
        ]

    def digest(self) -> bytes:
        """The digest of everything absorbed so far (non-finalising)."""
        clone = self.copy()
        bit_length = (clone._length * 8) & 0xFFFFFFFFFFFFFFFF
        clone.update(b"\x80")
        pad_len = (56 - clone._length % 64) % 64
        clone.update(b"\x00" * pad_len)
        clone._buffer += struct.pack("<Q", bit_length)
        clone._compress(clone._buffer)
        return struct.pack("<4I", *clone._state)

    def hexdigest(self) -> str:
        """Hex form of :meth:`digest`."""
        return self.digest().hex()


def md5(data: bytes) -> bytes:
    """One-shot MD5 digest of ``data``."""
    return MD5(data).digest()
