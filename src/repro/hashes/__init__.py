"""From-scratch hash functions, MACs and key-derivation functions.

The paper's protocol names SHA-1 and MD5 (via the Perl Digest libraries)
and uses keyed MACs for smart-device authentication.  Everything here is
implemented from the specifications and cross-checked against
``hashlib`` in the test suite.
"""

from repro.hashes.crc import crc32
from repro.hashes.hmac import Hmac, hmac_md5, hmac_sha1, hmac_sha256
from repro.hashes.kdf import hkdf, kdf1, kdf2
from repro.hashes.md5 import MD5, md5
from repro.hashes.sha1 import SHA1, sha1
from repro.hashes.sha256 import SHA256, sha256

#: Registry of hash constructors by canonical name, used by HMAC and the
#: KDFs so callers can select an algorithm with a string.
HASH_REGISTRY = {
    "sha1": SHA1,
    "sha256": SHA256,
    "md5": MD5,
}

__all__ = [
    "SHA1",
    "sha1",
    "SHA256",
    "sha256",
    "MD5",
    "md5",
    "Hmac",
    "hmac_sha1",
    "hmac_sha256",
    "hmac_md5",
    "kdf1",
    "kdf2",
    "hkdf",
    "crc32",
    "HASH_REGISTRY",
]
