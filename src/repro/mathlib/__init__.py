"""Number-theoretic substrate used by the pairing, IBE and RSA layers.

Everything here is implemented from first principles (extended Euclid,
Tonelli–Shanks, Miller–Rabin, HMAC-DRBG) so the library has no dependency
on external cryptographic packages.
"""

from repro.mathlib.modular import (
    crt,
    cube_root_mod_p,
    egcd,
    inverse_mod,
    is_quadratic_residue,
    jacobi_symbol,
    legendre_symbol,
    sqrt_mod_p,
)
from repro.mathlib.primes import (
    generate_bf_prime_pair,
    generate_prime,
    generate_safe_prime,
    is_probable_prime,
    next_prime,
)
from repro.mathlib.rand import HmacDrbg, RandomSource, SystemRandomSource

__all__ = [
    "egcd",
    "inverse_mod",
    "crt",
    "legendre_symbol",
    "jacobi_symbol",
    "is_quadratic_residue",
    "sqrt_mod_p",
    "cube_root_mod_p",
    "is_probable_prime",
    "generate_prime",
    "generate_safe_prime",
    "next_prime",
    "generate_bf_prime_pair",
    "RandomSource",
    "SystemRandomSource",
    "HmacDrbg",
]
