"""Primality testing and prime generation.

Provides Miller–Rabin with deterministic witness sets for small inputs,
general prime generation for the RSA baseline, and the Boneh–Franklin
parameter search that produces primes ``p = l*q - 1`` with
``p % 12 == 11`` so the supersingular curve y^2 = x^3 + 1 and the
F_p[i] extension both work (see :mod:`repro.pairing.params`).
"""

from __future__ import annotations

from repro.errors import MathError, ParameterError
from repro.mathlib.rand import RandomSource, SystemRandomSource

__all__ = [
    "is_probable_prime",
    "generate_prime",
    "generate_safe_prime",
    "next_prime",
    "generate_bf_prime_pair",
]

# Trial-division screen: all primes below 1000.
_SMALL_PRIMES: tuple[int, ...] = tuple(
    n
    for n in range(2, 1000)
    if all(n % d for d in range(2, int(n**0.5) + 1))
)

# Deterministic Miller-Rabin witness sets (Jaeschke / Sorenson-Webster).
# Each entry (bound, witnesses) is exact for all n < bound.
_DETERMINISTIC_WITNESSES: tuple[tuple[int, tuple[int, ...]], ...] = (
    (2_047, (2,)),
    (1_373_653, (2, 3)),
    (9_080_191, (31, 73)),
    (25_326_001, (2, 3, 5)),
    (3_215_031_751, (2, 3, 5, 7)),
    (4_759_123_141, (2, 7, 61)),
    (1_122_004_669_633, (2, 13, 23, 1662803)),
    (2_152_302_898_747, (2, 3, 5, 7, 11)),
    (3_474_749_660_383, (2, 3, 5, 7, 11, 13)),
    (341_550_071_728_321, (2, 3, 5, 7, 11, 13, 17)),
    (3_825_123_056_546_413_051, (2, 3, 5, 7, 11, 13, 17, 19, 23)),
    (318_665_857_834_031_151_167_461, (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)),
)


def _miller_rabin_round(n: int, a: int, d: int, r: int) -> bool:
    """One Miller-Rabin round; True means 'probably prime for witness a'."""
    x = pow(a, d, n)
    if x in (1, n - 1):
        return True
    for _ in range(r - 1):
        x = x * x % n
        if x == n - 1:
            return True
    return False


def is_probable_prime(n: int, rounds: int = 40, rng: RandomSource | None = None) -> bool:
    """Miller–Rabin primality test.

    Deterministic (exact) for ``n`` below ~3.3 * 10**24 via fixed witness
    sets; probabilistic with ``rounds`` random witnesses above that, giving
    an error probability below ``4**-rounds``.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n - 1 = d * 2^r with d odd.
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for bound, witnesses in _DETERMINISTIC_WITNESSES:
        if n < bound:
            return all(_miller_rabin_round(n, a, d, r) for a in witnesses)
    rng = rng if rng is not None else SystemRandomSource()
    for _ in range(rounds):
        a = rng.randint(2, n - 2)
        if not _miller_rabin_round(n, a, d, r):
            return False
    return True


def generate_prime(
    bits: int,
    rng: RandomSource | None = None,
    condition=None,
    max_attempts: int = 100_000,
) -> int:
    """Generate a random prime with exactly ``bits`` bits.

    ``condition`` is an optional predicate the prime must also satisfy
    (e.g. ``lambda p: p % 4 == 3``).  Raises :class:`MathError` after
    ``max_attempts`` candidates, which only happens for contradictory
    conditions.
    """
    if bits < 2:
        raise MathError(f"cannot generate a prime with {bits} bits")
    rng = rng if rng is not None else SystemRandomSource()
    for _ in range(max_attempts):
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # force exact bit length and oddness
        if condition is not None and not condition(candidate):
            continue
        if is_probable_prime(candidate, rng=rng):
            return candidate
    raise MathError(f"failed to find a {bits}-bit prime after {max_attempts} attempts")


def generate_safe_prime(bits: int, rng: RandomSource | None = None) -> int:
    """Generate a safe prime ``p`` (``(p - 1) / 2`` also prime).

    Used by tests exercising the RSA baseline with strong moduli; slow for
    large sizes, as safe primes are.
    """
    rng = rng if rng is not None else SystemRandomSource()
    while True:
        q = generate_prime(bits - 1, rng=rng)
        p = 2 * q + 1
        if is_probable_prime(p, rng=rng):
            return p


def next_prime(n: int) -> int:
    """The smallest prime strictly greater than ``n``."""
    candidate = max(n + 1, 2)
    if candidate > 2 and candidate % 2 == 0:
        candidate += 1
    while not is_probable_prime(candidate):
        candidate += 1 if candidate == 2 else 2
    return candidate


def generate_bf_prime_pair(
    q_bits: int,
    p_bits: int,
    rng: RandomSource | None = None,
    max_attempts: int = 200_000,
) -> tuple[int, int, int]:
    """Find Boneh–Franklin group parameters ``(p, q, l)``.

    Searches for a prime ``q`` of ``q_bits`` bits and a cofactor ``l``
    such that ``p = l * q - 1`` is a ``p_bits``-bit prime with
    ``p % 12 == 11``.  The congruence gives both ``p % 3 == 2`` (the curve
    y^2 = x^3 + 1 is supersingular with #E(F_p) = p + 1, and cube roots
    are easy) and ``p % 4 == 3`` (so F_p^2 = F_p[i] with i^2 = -1).

    Returns ``(p, q, l)`` with ``p + 1 == l * q``.
    """
    if p_bits <= q_bits + 2:
        raise ParameterError(
            f"p_bits ({p_bits}) must exceed q_bits ({q_bits}) by at least 3 "
            "to leave room for the cofactor"
        )
    rng = rng if rng is not None else SystemRandomSource()
    q = generate_prime(q_bits, rng=rng)
    l_bits = p_bits - q_bits
    for _ in range(max_attempts):
        # l must be a multiple of 12 so that p = l*q - 1 == 11 (mod 12).
        l = rng.getrandbits(l_bits) | (1 << (l_bits - 1))
        l -= l % 12
        if l == 0:
            continue
        p = l * q - 1
        if p.bit_length() != p_bits:
            continue
        if p % 12 != 11:
            continue
        if is_probable_prime(p, rng=rng):
            return p, q, l
    raise MathError(
        f"failed to find BF prime pair (q_bits={q_bits}, p_bits={p_bits}) "
        f"after {max_attempts} attempts"
    )
