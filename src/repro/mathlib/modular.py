"""Modular arithmetic helpers: inverses, CRT, square roots, cube roots.

These are the primitives beneath the finite-field tower in
:mod:`repro.pairing.fields` and the RSA baseline in :mod:`repro.pki.rsa`.
All functions operate on plain Python integers and validate their inputs;
degenerate requests raise subclasses of :class:`repro.errors.MathError`
rather than returning sentinel values.
"""

from __future__ import annotations

from repro.errors import MathError, NoSquareRootError, NotInvertibleError
from repro.obs import crypto as _obs_crypto

__all__ = [
    "egcd",
    "inverse_mod",
    "crt",
    "legendre_symbol",
    "jacobi_symbol",
    "is_quadratic_residue",
    "sqrt_mod_p",
    "cube_root_mod_p",
]


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: return ``(g, x, y)`` with ``a*x + b*y == g == gcd(a, b)``.

    Works for any integers, including negatives; ``g`` is non-negative.

    >>> egcd(240, 46)
    (2, -9, 47)
    """
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
        old_y, y = y, old_y - q * y
    if old_r < 0:
        old_r, old_x, old_y = -old_r, -old_x, -old_y
    return old_r, old_x, old_y


def inverse_mod(a: int, m: int) -> int:
    """Return the multiplicative inverse of ``a`` modulo ``m``.

    Raises :class:`NotInvertibleError` when ``gcd(a, m) != 1``.  The result
    is always in ``[0, m)``.
    """
    if m <= 0:
        raise MathError(f"modulus must be positive, got {m}")
    g, x, _ = egcd(a % m, m)
    if g != 1:
        raise NotInvertibleError(f"{a} is not invertible modulo {m} (gcd={g})")
    return x % m


def crt(residues: list[int], moduli: list[int]) -> int:
    """Chinese Remainder Theorem for pairwise-coprime moduli.

    Returns the unique ``x`` in ``[0, prod(moduli))`` with
    ``x % moduli[i] == residues[i] % moduli[i]`` for every ``i``.

    >>> crt([2, 3, 2], [3, 5, 7])
    23
    """
    if len(residues) != len(moduli):
        raise MathError("residues and moduli must have equal length")
    if not moduli:
        raise MathError("crt requires at least one congruence")
    x, m = residues[0] % moduli[0], moduli[0]
    for r, n in zip(residues[1:], moduli[1:]):
        g, p, _ = egcd(m, n)
        if g != 1:
            raise MathError(f"moduli {m} and {n} are not coprime (gcd={g})")
        # x' = x + m * ((r - x) * m^{-1} mod n)
        x = (x + m * ((r - x) * p % n)) % (m * n)
        m *= n
    return x


def legendre_symbol(a: int, p: int) -> int:
    """Legendre symbol (a/p) for odd prime ``p``: one of ``-1, 0, 1``."""
    if p <= 2 or p % 2 == 0:
        raise MathError(f"legendre_symbol requires an odd prime, got {p}")
    a %= p
    if a == 0:
        return 0
    s = pow(a, (p - 1) // 2, p)
    return -1 if s == p - 1 else s


def jacobi_symbol(a: int, n: int) -> int:
    """Jacobi symbol (a/n) for odd positive ``n``.

    Generalises the Legendre symbol without factoring ``n``; used by the
    Miller–Rabin implementation's companion checks and exposed for tests.
    """
    if n <= 0 or n % 2 == 0:
        raise MathError(f"jacobi_symbol requires odd positive n, got {n}")
    a %= n
    result = 1
    while a != 0:
        while a % 2 == 0:
            a //= 2
            if n % 8 in (3, 5):
                result = -result
        a, n = n, a
        if a % 4 == 3 and n % 4 == 3:
            result = -result
        a %= n
    return result if n == 1 else 0


def is_quadratic_residue(a: int, p: int) -> bool:
    """True when ``a`` is a non-zero square modulo the odd prime ``p``."""
    return legendre_symbol(a, p) == 1


def sqrt_mod_p(a: int, p: int) -> int:
    """A square root of ``a`` modulo odd prime ``p`` (the smaller root is
    not guaranteed; the caller may negate).

    Uses the fast ``p % 4 == 3`` exponentiation when available and the
    general Tonelli–Shanks algorithm otherwise.  Raises
    :class:`NoSquareRootError` for non-residues.
    """
    if p == 2:
        return a % 2
    a %= p
    if a == 0:
        return 0
    if legendre_symbol(a, p) != 1:
        raise NoSquareRootError(f"{a} is not a quadratic residue mod {p}")
    if p % 4 == 3:
        return pow(a, (p + 1) // 4, p)
    # Tonelli–Shanks: write p - 1 = q * 2^s with q odd.
    q, s = p - 1, 0
    while q % 2 == 0:
        q //= 2
        s += 1
    # Find a non-residue z.
    z = 2
    while legendre_symbol(z, p) != -1:
        z += 1
    m = s
    c = pow(z, q, p)
    t = pow(a, q, p)
    r = pow(a, (q + 1) // 2, p)
    while t != 1:
        # Find least i in (0, m) with t^(2^i) == 1.
        i, t2i = 0, t
        while t2i != 1:
            t2i = t2i * t2i % p
            i += 1
            if i == m:
                raise NoSquareRootError(f"Tonelli-Shanks failed for {a} mod {p}")
        b = pow(c, 1 << (m - i - 1), p)
        m = i
        c = b * b % p
        t = t * c % p
        r = r * b % p
    return r


def cube_root_mod_p(a: int, p: int) -> int:
    """The unique cube root of ``a`` modulo prime ``p`` with ``p % 3 == 2``.

    When ``p % 3 == 2`` the cube map is a bijection on F_p and its inverse
    is ``x -> x ** ((2p - 1) / 3)``; this is the MapToPoint step of
    Boneh–Franklin (finding x with ``x^3 = y^2 - 1``).
    """
    if p % 3 != 2:
        raise MathError(f"cube_root_mod_p requires p % 3 == 2, got p % 3 == {p % 3}")
    prof = _obs_crypto.ACTIVE
    if prof is not None:
        prof.cube_roots += 1
    return pow(a % p, (2 * p - 1) // 3, p)
