"""Randomness sources: system entropy and a deterministic HMAC-DRBG.

Every key- or nonce-producing API in the library accepts a
:class:`RandomSource`.  Production code uses :class:`SystemRandomSource`
(backed by ``os.urandom``); tests and benchmarks use :class:`HmacDrbg`
seeded with a constant so runs are exactly reproducible.

The DRBG follows the HMAC_DRBG construction of NIST SP 800-90A
(instantiate / reseed / generate with the update function), built on the
from-scratch HMAC-SHA-256 in :mod:`repro.hashes`.
"""

from __future__ import annotations

import os

from repro.errors import MathError

__all__ = ["RandomSource", "SystemRandomSource", "HmacDrbg", "derive_seed"]


def derive_seed(seed: bytes | str, label: bytes | str) -> bytes:
    """Derive an independent child seed bound to ``label``.

    ``HMAC-SHA-256(seed, b"derive" + label)`` — a keyed one-way split, so
    sibling labels yield unrelated streams and no child reveals the
    parent.  Harnesses use this to give each lane (scheduler, load
    generator, worker pool) its own seed: adding a lane, or changing how
    often one lane draws, cannot perturb another lane's stream the way
    sharing a single :class:`HmacDrbg` would.
    """
    from repro.hashes import hmac_sha256

    if isinstance(seed, str):
        seed = seed.encode("utf-8")
    if isinstance(label, str):
        label = label.encode("utf-8")
    return hmac_sha256(seed, b"derive" + label)


class RandomSource:
    """Interface for randomness providers.

    Subclasses implement :meth:`randbytes`; the integer helpers are
    derived from it so deterministic sources stay deterministic across
    all call patterns.
    """

    def randbytes(self, n: int) -> bytes:
        """Return ``n`` uniformly random bytes."""
        raise NotImplementedError

    def getrandbits(self, k: int) -> int:
        """Return a uniform integer in ``[0, 2**k)``."""
        if k <= 0:
            raise MathError(f"getrandbits requires k > 0, got {k}")
        nbytes = (k + 7) // 8
        value = int.from_bytes(self.randbytes(nbytes), "big")
        return value >> (8 * nbytes - k)

    def randbelow(self, n: int) -> int:
        """Return a uniform integer in ``[0, n)`` via rejection sampling."""
        if n <= 0:
            raise MathError(f"randbelow requires n > 0, got {n}")
        k = n.bit_length()
        while True:
            value = self.getrandbits(k)
            if value < n:
                return value

    def randint(self, a: int, b: int) -> int:
        """Return a uniform integer in the inclusive range ``[a, b]``."""
        if a > b:
            raise MathError(f"randint requires a <= b, got [{a}, {b}]")
        return a + self.randbelow(b - a + 1)


class SystemRandomSource(RandomSource):
    """Randomness from the operating system (``os.urandom``)."""

    def randbytes(self, n: int) -> bytes:
        """Return ``n`` uniformly random bytes."""
        return os.urandom(n)


class HmacDrbg(RandomSource):
    """Deterministic bit generator per NIST SP 800-90A HMAC_DRBG (SHA-256).

    Instantiated from a seed, it produces an unbounded reproducible byte
    stream.  A reseed mixes additional entropy into the state.

    >>> drbg = HmacDrbg(b"seed")
    >>> drbg.randbytes(4) == HmacDrbg(b"seed").randbytes(4)
    True
    """

    _OUTLEN = 32  # SHA-256 output length

    def __init__(self, seed: bytes | str | int) -> None:
        if isinstance(seed, str):
            seed = seed.encode("utf-8")
        elif isinstance(seed, int):
            seed = seed.to_bytes(max(1, (seed.bit_length() + 7) // 8), "big")
        self._key = b"\x00" * self._OUTLEN
        self._value = b"\x01" * self._OUTLEN
        self._update(seed)

    def _hmac(self, key: bytes, data: bytes) -> bytes:
        # Imported lazily to keep mathlib importable while repro.hashes
        # is being bootstrapped in isolation (e.g. doctest collection).
        from repro.hashes import hmac_sha256

        return hmac_sha256(key, data)

    def _update(self, provided_data: bytes = b"") -> None:
        self._key = self._hmac(self._key, self._value + b"\x00" + provided_data)
        self._value = self._hmac(self._key, self._value)
        if provided_data:
            self._key = self._hmac(self._key, self._value + b"\x01" + provided_data)
            self._value = self._hmac(self._key, self._value)

    def reseed(self, entropy: bytes) -> None:
        """Mix ``entropy`` into the generator state."""
        self._update(entropy)

    def randbytes(self, n: int) -> bytes:
        """Return ``n`` uniformly random bytes."""
        if n < 0:
            raise MathError(f"randbytes requires n >= 0, got {n}")
        chunks: list[bytes] = []
        produced = 0
        while produced < n:
            self._value = self._hmac(self._key, self._value)
            chunks.append(self._value)
            produced += len(self._value)
        self._update()
        return b"".join(chunks)[:n]

    def fork(self, label: bytes | str) -> "HmacDrbg":
        """Derive an independent child generator bound to ``label``.

        Used to give each simulated party its own deterministic stream so
        reordering one party's calls does not perturb another's.
        """
        if isinstance(label, str):
            label = label.encode("utf-8")
        child_seed = self._hmac(self._key, b"fork" + label + self._value)
        return HmacDrbg(child_seed)
