"""In-memory secondary indexes maintained by the database layer.

The record stores are plain key-value; the Message and Policy databases
keep these indexes beside them (rebuilding on open by scanning), which
is the classic log-structured-storage split: durable primary data,
volatile derived indexes.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort

__all__ = ["HashIndex", "SortedIndex"]


class HashIndex:
    """Multimap from an indexed value to the set of primary keys."""

    def __init__(self) -> None:
        self._map: dict = {}

    def add(self, value, key) -> None:
        self._map.setdefault(value, set()).add(key)

    def remove(self, value, key) -> None:
        bucket = self._map.get(value)
        if bucket is None:
            return
        bucket.discard(key)
        if not bucket:
            del self._map[value]

    def lookup(self, value) -> set:
        """Primary keys whose indexed field equals ``value`` (a copy)."""
        return set(self._map.get(value, ()))

    def values(self) -> list:
        """All distinct indexed values."""
        return list(self._map.keys())

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, value) -> bool:
        return value in self._map


class SortedIndex:
    """Sorted multimap supporting range queries (e.g. by timestamp)."""

    def __init__(self) -> None:
        self._entries: list[tuple] = []  # (value, key), kept sorted

    def add(self, value, key) -> None:
        insort(self._entries, (value, key))

    def remove(self, value, key) -> None:
        position = bisect_left(self._entries, (value, key))
        if position < len(self._entries) and self._entries[position] == (value, key):
            del self._entries[position]

    def range(self, low, high) -> list:
        """Primary keys with indexed value in the inclusive range [low, high]."""
        start = bisect_left(self._entries, (low,))
        stop = bisect_right(self._entries, (high, _Top()))
        return [key for _, key in self._entries[start:stop]]

    def min_value(self):
        return self._entries[0][0] if self._entries else None

    def max_value(self):
        return self._entries[-1][0] if self._entries else None

    def __len__(self) -> int:
        return len(self._entries)


class _Top:
    """Sorts after every other object; sentinel for inclusive upper bounds."""

    def __lt__(self, other) -> bool:
        return False

    def __gt__(self, other) -> bool:
        return True
