"""Smart-device key store: the MAC keys shared at device registration.

Paper assumption ii: "SD and MWS share a secret key, which is used by SD
to generate a Message Authentication Code and by MWS to confirm message
authenticity and integrity."  The initial exchange is out of the paper's
scope; here registration hands both sides the key.
"""

from __future__ import annotations

from repro.errors import DuplicateKeyError, UnknownIdentityError
from repro.mathlib.rand import RandomSource, SystemRandomSource
from repro.storage.engine import MemoryStore, RecordStore

__all__ = ["DeviceKeyStore"]


class DeviceKeyStore:
    """device_id -> shared MAC key, backed by any record store."""

    KEY_LENGTH = 32

    def __init__(
        self,
        store: RecordStore | None = None,
        rng: RandomSource | None = None,
    ) -> None:
        self._store = store if store is not None else MemoryStore()
        self._rng = rng if rng is not None else SystemRandomSource()

    @staticmethod
    def _key(device_id: str) -> bytes:
        return b"dev:" + device_id.encode("utf-8")

    def register(self, device_id: str) -> bytes:
        """Register a device and return the freshly generated shared key."""
        key = self._key(device_id)
        if self._store.contains(key):
            raise DuplicateKeyError(f"device {device_id!r} already registered")
        shared = self._rng.randbytes(self.KEY_LENGTH)
        self._store.put(key, shared)
        return shared

    def revoke(self, device_id: str) -> None:
        """Remove a device; future deposits from it will fail the MAC check."""
        try:
            self._store.delete(self._key(device_id))
        except Exception as exc:
            raise UnknownIdentityError(f"device {device_id!r} not registered") from exc

    def shared_key(self, device_id: str) -> bytes:
        try:
            return self._store.get(self._key(device_id))
        except Exception as exc:
            raise UnknownIdentityError(f"device {device_id!r} not registered") from exc

    def exists(self, device_id: str) -> bool:
        return self._store.contains(self._key(device_id))

    def device_ids(self) -> list[str]:
        return sorted(
            key[len(b"dev:"):].decode("utf-8") for key in self._store.keys()
        )

    def __len__(self) -> int:
        return len(self._store)

    def close(self) -> None:
        """Release underlying resources."""
        self._store.close()
