"""The User Database: RC identities and password-derived keys.

The paper's gatekeeper authenticates an RC by decrypting
``E(HashPassword, ID_RC || T || N)`` with "the hashed password from the
User Database" — i.e. ``H(password)`` acts as a shared symmetric key.
We store exactly that (SHA-256 of the password), which reproduces the
protocol faithfully; the docstring of :meth:`password_key` records the
known limitation (an unsalted hash is a password-equivalent secret).
"""

from __future__ import annotations

from repro.errors import AuthenticationError, DuplicateKeyError, UnknownIdentityError
from repro.hashes.hmac import constant_time_equal
from repro.hashes.sha256 import sha256
from repro.storage.engine import MemoryStore, RecordStore
from repro.wire.encoding import Reader, Writer

__all__ = ["UserDatabase"]


class UserDatabase:
    """RC registry: identity -> hashed password (+ optional metadata)."""

    def __init__(self, store: RecordStore | None = None) -> None:
        self._store = store if store is not None else MemoryStore()

    @staticmethod
    def _key(rc_id: str) -> bytes:
        return b"user:" + rc_id.encode("utf-8")

    @staticmethod
    def hash_password(password: str) -> bytes:
        """The protocol's ``HashPassword``: SHA-256 of the UTF-8 password."""
        return sha256(password.encode("utf-8"))

    def register(self, rc_id: str, password: str, display_name: str = "") -> None:
        """Add an RC; raises :class:`DuplicateKeyError` when the id exists."""
        key = self._key(rc_id)
        if self._store.contains(key):
            raise DuplicateKeyError(f"RC identity {rc_id!r} already registered")
        record = (
            Writer()
            .blob(self.hash_password(password))
            .text(display_name)
            .getvalue()
        )
        self._store.put(key, record)

    def unregister(self, rc_id: str) -> None:
        try:
            self._store.delete(self._key(rc_id))
        except Exception as exc:  # KeyNotFoundError -> domain error
            raise UnknownIdentityError(f"RC identity {rc_id!r} not registered") from exc

    def _record(self, rc_id: str) -> tuple[bytes, str]:
        try:
            raw = self._store.get(self._key(rc_id))
        except Exception as exc:
            raise UnknownIdentityError(f"RC identity {rc_id!r} not registered") from exc
        reader = Reader(raw)
        hashed = reader.blob()
        display_name = reader.text()
        reader.finish()
        return hashed, display_name

    def password_key(self, rc_id: str) -> bytes:
        """The stored ``HashPassword`` for ``rc_id``.

        The gatekeeper uses this as the symmetric key to open the RC's
        auth blob.  Because the protocol needs the raw hash as a key, it
        cannot be salted server-side; a production deployment would move
        to a PAKE or TLS-client-auth — see DESIGN.md §7.
        """
        hashed, _ = self._record(rc_id)
        return hashed

    def verify_password(self, rc_id: str, password: str) -> None:
        """Constant-time check; raises :class:`AuthenticationError` on mismatch."""
        hashed, _ = self._record(rc_id)
        if not constant_time_equal(hashed, self.hash_password(password)):
            raise AuthenticationError(f"bad password for RC {rc_id!r}")

    def display_name(self, rc_id: str) -> str:
        _, display_name = self._record(rc_id)
        return display_name

    def exists(self, rc_id: str) -> bool:
        return self._store.contains(self._key(rc_id))

    def identities(self) -> list[str]:
        return sorted(
            key[len(b"user:"):].decode("utf-8") for key in self._store.keys()
        )

    def __len__(self) -> int:
        return len(self._store)

    def close(self) -> None:
        """Release underlying resources."""
        self._store.close()
