"""Embedded storage substrate for the Message Warehousing Service.

The paper's prototype used flat files and called a real database layer
future work; this package provides both, behind one key-value interface:

* :class:`MemoryStore`        — dict-backed, for tests and benchmarks.
* :class:`FlatFileStore`      — one-file-per-record, the paper's prototype
  ablation baseline (EXT-E).
* :class:`LogStructuredStore` — append-only segmented log with CRC-checked
  records, crash recovery and compaction.

On top of the engine sit the paper's Fig. 3 databases: the Message
Database (MD), Policy Database (PD, Table 1), User Database and the
smart-device key store.  For fleet-scale deployments the MD can be
spread across N backends by :class:`ShardedMessageDatabase`, a
consistent-hash router that colocates each attribute's messages on one
shard (docs/SCALING.md).
"""

from repro.storage.engine import (
    FlatFileStore,
    LogStructuredStore,
    MemoryStore,
    RecordStore,
)
from repro.storage.indexes import HashIndex, SortedIndex
from repro.storage.keystore import DeviceKeyStore
from repro.storage.message_db import MessageDatabase, MessageRecord
from repro.storage.policy_db import PolicyDatabase, PolicyRow
from repro.storage.sharding import HashRing, ShardedMessageDatabase
from repro.storage.user_db import UserDatabase

__all__ = [
    "RecordStore",
    "MemoryStore",
    "FlatFileStore",
    "LogStructuredStore",
    "HashIndex",
    "SortedIndex",
    "MessageDatabase",
    "MessageRecord",
    "HashRing",
    "ShardedMessageDatabase",
    "PolicyDatabase",
    "PolicyRow",
    "UserDatabase",
    "DeviceKeyStore",
]
