"""Embedded storage substrate for the Message Warehousing Service.

The paper's prototype used flat files and called a real database layer
future work; this package provides both, behind one key-value interface:

* :class:`MemoryStore`        — dict-backed, for tests and benchmarks.
* :class:`FlatFileStore`      — one-file-per-record, the paper's prototype
  ablation baseline (EXT-E).
* :class:`LogStructuredStore` — append-only segmented log with CRC-checked
  records, crash recovery and compaction.

On top of the engine sit the paper's Fig. 3 databases: the Message
Database (MD), Policy Database (PD, Table 1), User Database and the
smart-device key store.
"""

from repro.storage.engine import (
    FlatFileStore,
    LogStructuredStore,
    MemoryStore,
    RecordStore,
)
from repro.storage.indexes import HashIndex, SortedIndex
from repro.storage.keystore import DeviceKeyStore
from repro.storage.message_db import MessageDatabase, MessageRecord
from repro.storage.policy_db import PolicyDatabase, PolicyRow
from repro.storage.user_db import UserDatabase

__all__ = [
    "RecordStore",
    "MemoryStore",
    "FlatFileStore",
    "LogStructuredStore",
    "HashIndex",
    "SortedIndex",
    "MessageDatabase",
    "MessageRecord",
    "PolicyDatabase",
    "PolicyRow",
    "UserDatabase",
    "DeviceKeyStore",
]
