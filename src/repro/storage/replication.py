"""Leader/follower replication for one warehouse shard via WAL shipping.

The ROADMAP's capacity model is shards × replicas × workers; this module
supplies the replicas.  A :class:`ReplicaSet` presents the exact
:class:`~repro.storage.message_db.MessageDatabase` surface the MMS and
the shard router consume, but keeps N copies in sync:

* every mutation is appended to a per-shard
  :class:`~repro.storage.wal.WriteAheadLog` first, then applied to the
  leader and **shipped** (as encoded WAL frames) to each follower;
* an acknowledgement requires a **quorum** of replicas (leader
  included) to have applied the record — a deposit acked to a device is
  therefore on at least ``quorum`` copies before the receipt leaves the
  MWS, which is what makes leader failover lossless;
* followers may **lag**: a fault plan can defer a non-quorum follower's
  application, leaving the frames queued.  Catch-up replays the queue
  in LSN order, and the decode path re-verifies every frame's CRC — a
  corrupted shipped frame is refused, never half-applied;
* :meth:`fail_leader` models a leader crash: the most-caught-up
  follower is promoted (deterministic tie-break on replica index),
  catches up to the committed watermark **before serving any read**
  (read-your-writes across failover), and a fresh replica is seeded
  from the WAL to restore the set to full strength.

With ``replicas=1`` the set degenerates to a thin wrapper over a single
``MessageDatabase`` — a pre-replication store opens unchanged under
this code path, which the interop regression suite pins.
"""

from __future__ import annotations

from collections import deque

from repro.errors import StorageError
from repro.storage.engine import MemoryStore, RecordStore
from repro.storage.message_db import MessageDatabase, MessageRecord
from repro.storage.wal import OP_DELETE, OP_STORE, WalRecord, WriteAheadLog

__all__ = ["Replica", "ReplicaSet"]


class Replica:
    """One copy of a shard: a ``MessageDatabase`` plus its WAL position.

    ``pending`` holds *encoded* WAL frames shipped but not yet applied —
    the follower-lag window.  Application decodes each frame (CRC
    verified) and replays it onto the local database in LSN order.
    """

    def __init__(self, db: MessageDatabase, replica_id: int) -> None:
        self.db = db
        self.replica_id = replica_id
        self.applied_lsn = 0
        self.pending: deque[bytes] = deque()

    @property
    def shipped_lsn(self) -> int:
        """The LSN this replica would reach by draining its queue."""
        return self.applied_lsn + len(self.pending)

    def enqueue(self, frame: bytes) -> None:
        self.pending.append(frame)

    def apply_next(self) -> WalRecord:
        """Decode and apply the oldest pending frame."""
        frame = self.pending.popleft()
        record = WalRecord.from_bytes(frame)
        if record.lsn != self.applied_lsn + 1:
            raise StorageError(
                f"replica {self.replica_id} got lsn {record.lsn}, "
                f"expected {self.applied_lsn + 1}"
            )
        if record.op == OP_STORE:
            self.db.store_record(MessageRecord.from_bytes(record.payload))
        elif record.op == OP_DELETE:
            self.db.delete(int.from_bytes(record.payload, "big"))
        else:  # pragma: no cover - append() rejects unknown ops already
            raise StorageError(f"unknown WAL opcode {record.op}")
        self.applied_lsn = record.lsn
        return record

    def catch_up(self, target_lsn: int) -> int:
        """Apply pending frames until ``applied_lsn >= target_lsn``.

        Returns how many records were applied.  Raises when the queue
        runs dry short of the target — the set then re-ships from the
        WAL instead.
        """
        applied = 0
        while self.applied_lsn < target_lsn:
            if not self.pending:
                raise StorageError(
                    f"replica {self.replica_id} stuck at lsn "
                    f"{self.applied_lsn}, target {target_lsn}"
                )
            self.apply_next()
            applied += 1
        return applied


class ReplicaSet:
    """N replicated copies of one shard behind the MessageDatabase surface.

    Parameters
    ----------
    stores:
        Backing :class:`RecordStore` per replica (``None`` entries mean
        in-memory), or an integer count of in-memory replicas.  The
        first entry seeds the initial leader; a non-empty leader store
        back-fills the WAL so followers converge on open.
    quorum:
        Replicas (leader included) that must have applied a mutation
        before it is acknowledged.  Defaults to a majority.
    registry / shard_index:
        Observability: counters live under ``replication.shard.<i>.*``
        and the WAL's under ``storage.wal.shard.<i>.*``.
    lag_decider:
        Optional zero-argument callable consulted once per (append,
        non-quorum follower); returning True defers that follower's
        application (the fault plan's ``decide_follower_lag``).
    """

    def __init__(
        self,
        stores: list[RecordStore | None] | int,
        quorum: int | None = None,
        registry=None,
        shard_index: int = 0,
        lag_decider=None,
    ) -> None:
        if isinstance(stores, int):
            stores = [None] * stores
        if not stores:
            raise StorageError("replica set needs at least one replica")
        count = len(stores)
        if quorum is None:
            quorum = count // 2 + 1
        if not 1 <= quorum <= count:
            raise StorageError(
                f"quorum {quorum} out of range for {count} replica(s)"
            )
        self.quorum = quorum
        self._lag_decider = lag_decider
        self._next_replica_id = 0
        self._replicas: list[Replica] = []
        for store in stores:
            self._replicas.append(self._new_replica(store))
        self._leader = 0
        prefix = f"replication.shard.{shard_index}"
        if registry is not None:
            self._wal = WriteAheadLog(
                registry, prefix=f"storage.wal.shard.{shard_index}"
            )
            self._shipped = registry.counter(f"{prefix}.shipped")
            self._acks = registry.counter(f"{prefix}.acks")
            self._lagged = registry.counter(f"{prefix}.lagged")
            self._failovers = registry.counter(f"{prefix}.failovers")
            self._catchup = registry.counter(f"{prefix}.catchup_records")
        else:
            self._wal = WriteAheadLog()
            self._shipped = self._acks = self._lagged = None
            self._failovers = self._catchup = None
        # A pre-loaded leader store back-fills the log so followers and
        # late joiners have a complete history to replay.
        leader_db = self._replicas[0].db
        for record in leader_db.records():
            wal_record = self._wal.append(OP_STORE, record.to_bytes())
            self._replicas[0].applied_lsn = wal_record.lsn
        if len(leader_db) and len(self._replicas) > 1:
            for follower in self._replicas[1:]:
                self._reseed(follower)

    def _new_replica(self, store: RecordStore | None) -> Replica:
        replica = Replica(
            MessageDatabase(store if store is not None else MemoryStore()),
            self._next_replica_id,
        )
        self._next_replica_id += 1
        return replica

    def _reseed(self, replica: Replica) -> None:
        """Bring a (possibly fresh) replica to the tip of the log.

        History still in the WAL is shipped as frames; history already
        truncated away is snapshot-copied from the current leader (the
        re-seed path :meth:`WriteAheadLog.since` demands).
        """
        replica.pending.clear()
        if replica.applied_lsn < self._wal.base_lsn:
            leader = self.leader
            for record in leader.db.records():
                replica.db.store_record(record)
            replica.applied_lsn = leader.applied_lsn
        for wal_record in self._wal.since(replica.applied_lsn):
            replica.enqueue(wal_record.to_bytes())
        replica.catch_up(self._wal.last_lsn)

    # -- replication topology ---------------------------------------------

    @property
    def replica_count(self) -> int:
        return len(self._replicas)

    @property
    def leader_index(self) -> int:
        return self._leader

    @property
    def leader(self) -> Replica:
        return self._replicas[self._leader]

    @property
    def replicas(self) -> list[Replica]:
        return list(self._replicas)

    @property
    def committed_lsn(self) -> int:
        """The shard's write watermark: every ack covered this LSN."""
        return self._wal.last_lsn

    def watermark(self) -> int:
        """Read-your-writes watermark a retrieval cursor carries."""
        return self._wal.last_lsn

    @property
    def wal(self) -> WriteAheadLog:
        return self._wal

    def set_lag_decider(self, decider) -> None:
        """Install/replace the follower-lag hook (fault-plan driven)."""
        self._lag_decider = decider

    # -- mutation path: WAL append + ship + quorum ack ---------------------

    def _replicate(self, op: int, payload: bytes) -> None:
        wal_record = self._wal.append(op, payload)
        frame = wal_record.to_bytes()
        acks = 0
        for offset in range(len(self._replicas)):
            # Walk from the leader so the ack set is deterministic:
            # leader first, then followers in ring order.
            replica = self._replicas[(self._leader + offset) % len(self._replicas)]
            replica.enqueue(frame)
            if self._shipped is not None:
                self._shipped.inc()
            must_apply = acks < self.quorum
            may_lag = (
                not must_apply
                and self._lag_decider is not None
                and self._lag_decider()
            )
            if may_lag:
                if self._lagged is not None:
                    self._lagged.inc()
                continue
            replica.catch_up(wal_record.lsn)
            acks += 1
            if self._acks is not None:
                self._acks.inc()

    # -- MessageDatabase surface ------------------------------------------

    def store(
        self,
        device_id: str,
        attribute: str,
        nonce: bytes,
        ciphertext: bytes,
        deposited_at_us: int,
        epoch: int = 0,
    ) -> MessageRecord:
        """Persist an accepted deposit; assigns the next local id."""
        record = MessageRecord(
            message_id=self.max_id() + 1,
            device_id=device_id,
            attribute=attribute,
            nonce=nonce,
            ciphertext=ciphertext,
            deposited_at_us=deposited_at_us,
            epoch=epoch,
        )
        self.store_record(record)
        return record

    def store_record(self, record: MessageRecord) -> None:
        """Quorum-replicated store of a caller-assigned record."""
        self._replicate(OP_STORE, record.to_bytes())

    def update_record(self, record: MessageRecord) -> None:
        """Quorum-replicated in-place overwrite (the re-encryption path).

        Ships as an ordinary store frame: ``MessageDatabase.store_record``
        is overwrite-idempotent, so every replica replays the frame onto
        the same id and converges on the new ciphertext — no new opcode,
        no divergence, and failover after a re-encryption promotes a
        follower already holding the re-wrapped bytes.
        """
        self.leader.db.fetch(record.message_id)  # raises KeyNotFoundError early
        self._replicate(OP_STORE, record.to_bytes())

    def delete(self, message_id: int) -> None:
        """Quorum-replicated delete."""
        self.leader.db.fetch(message_id)  # raises KeyNotFoundError early
        self._replicate(OP_DELETE, message_id.to_bytes(8, "big"))

    def _serving_db(self) -> MessageDatabase:
        """The database reads are served from, caught up to the watermark.

        The leader normally *is* caught up (it applies at append time);
        after a failover the promoted follower already replayed to the
        committed LSN during promotion, so this check is a cheap
        invariant rather than a hot-path catch-up — but it keeps
        read-your-writes true by construction, not by convention.
        """
        leader = self.leader
        if leader.applied_lsn < self._wal.last_lsn:
            applied = leader.catch_up(self._wal.last_lsn)
            if self._catchup is not None:
                self._catchup.inc(applied)
        return leader.db

    def fetch(self, message_id: int) -> MessageRecord:
        return self._serving_db().fetch(message_id)

    def by_attribute(self, attribute: str) -> list[MessageRecord]:
        return self._serving_db().by_attribute(attribute)

    def by_attributes(self, attributes: list[str]) -> list[MessageRecord]:
        return self._serving_db().by_attributes(attributes)

    def by_time_range(self, low_us: int, high_us: int) -> list[MessageRecord]:
        return self._serving_db().by_time_range(low_us, high_us)

    def attributes(self) -> list[str]:
        return self._serving_db().attributes()

    def records(self) -> list[MessageRecord]:
        return self._serving_db().records()

    def max_id(self) -> int:
        return self._serving_db().max_id()

    def compact(self) -> None:
        for replica in self._replicas:
            replica.db.compact()

    def __len__(self) -> int:
        return len(self._serving_db())

    def close(self) -> None:
        for replica in self._replicas:
            replica.db.close()

    # -- failover ----------------------------------------------------------

    def fail_leader(self, rejoin: bool = True) -> int:
        """Crash the leader and promote the most-caught-up follower.

        The dead leader's database is discarded outright — the model is
        a machine loss, not a clean shutdown.  Promotion picks the
        follower with the highest ``shipped_lsn`` (everything it holds,
        applied or queued), breaking ties on the lower replica id, and
        replays its queue to the committed watermark before the set
        serves another read.  With ``rejoin`` a fresh in-memory replica
        is seeded from the WAL so the set returns to full strength.

        Requires at least one follower; a single-replica set has nowhere
        to fail over to (the caller keeps its crash semantics instead).
        Returns the new leader's replica id.
        """
        if len(self._replicas) < 2:
            raise StorageError(
                "cannot fail over a single-replica set; nothing to promote"
            )
        committed = self.committed_lsn
        dead = self._replicas.pop(self._leader)
        dead.db.close()
        best = 0
        for index, replica in enumerate(self._replicas):
            if replica.shipped_lsn > self._replicas[best].shipped_lsn:
                best = index
        promoted = self._replicas[best]
        if promoted.shipped_lsn < committed:  # pragma: no cover - quorum>=1
            raise StorageError(
                f"no follower holds the committed lsn {committed}; "
                "quorum was misconfigured"
            )
        applied = promoted.catch_up(committed)
        if self._catchup is not None:
            self._catchup.inc(applied)
        self._leader = best
        if self._failovers is not None:
            self._failovers.inc()
        if rejoin:
            joiner = self._new_replica(None)
            self._reseed(joiner)
            self._replicas.append(joiner)
        return promoted.replica_id

    # -- maintenance -------------------------------------------------------

    def pump(self, max_records: int | None = None) -> int:
        """Apply queued frames on lagging followers (background drain).

        Walks followers round-robin, applying one frame at a time, so a
        bounded ``max_records`` spreads progress evenly.  Returns how
        many records were applied.
        """
        applied = 0
        progressed = True
        while progressed and (max_records is None or applied < max_records):
            progressed = False
            for replica in self._replicas:
                if not replica.pending:
                    continue
                replica.apply_next()
                applied += 1
                progressed = True
                if max_records is not None and applied >= max_records:
                    break
        if applied and self._catchup is not None:
            self._catchup.inc(applied)
        return applied

    def min_applied_lsn(self) -> int:
        return min(replica.applied_lsn for replica in self._replicas)

    def truncate_applied(self) -> int:
        """Reclaim WAL entries every replica has applied."""
        return self._wal.truncate_until(self.min_applied_lsn())
