"""Key-value storage engines behind one :class:`RecordStore` interface.

Three backends with identical semantics (binary keys and values, last
write wins, explicit tombstone deletes):

* :class:`MemoryStore` — a dict; the default for tests and benchmarks.
* :class:`FlatFileStore` — one file per record under a directory, which
  is faithful to the paper's Perl prototype ("instead of databases,
  flat files are used") and serves as the EXT-E ablation baseline.
* :class:`LogStructuredStore` — what the paper's future-work section
  asks for: an append-only log with CRC-32-framed records, an in-memory
  hash index built by a single recovery scan on open, crash recovery
  that truncates at the first corrupt frame, and offline compaction
  that drops shadowed and deleted records.
"""

from __future__ import annotations

import os
import struct

from repro.errors import CorruptRecordError, KeyNotFoundError, StorageError
from repro.hashes.crc import crc32

__all__ = [
    "RecordStore",
    "MemoryStore",
    "FlatFileStore",
    "LogStructuredStore",
    "open_store",
]


class RecordStore:
    """Abstract key-value store with byte keys/values.

    Context-manager friendly: ``with LogStructuredStore(path) as store:``.
    """

    def put(self, key: bytes, value: bytes) -> None:
        raise NotImplementedError

    def get(self, key: bytes) -> bytes:
        """Return the value for ``key``; raises :class:`KeyNotFoundError`."""
        raise NotImplementedError

    def delete(self, key: bytes) -> None:
        """Delete ``key``; raises :class:`KeyNotFoundError` if absent."""
        raise NotImplementedError

    def contains(self, key: bytes) -> bool:
        try:
            self.get(key)
            return True
        except KeyNotFoundError:
            return False

    def keys(self) -> list[bytes]:
        """All live keys (unordered)."""
        raise NotImplementedError

    def items(self):
        """Iterate ``(key, value)`` pairs for all live records."""
        for key in self.keys():
            yield key, self.get(key)

    def __len__(self) -> int:
        return len(self.keys())

    def close(self) -> None:
        """Release any resources; further operations are undefined."""

    def __enter__(self) -> "RecordStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class MemoryStore(RecordStore):
    """Dict-backed store; fastest, no durability."""

    def __init__(self) -> None:
        self._data: dict[bytes, bytes] = {}

    def put(self, key: bytes, value: bytes) -> None:
        self._data[bytes(key)] = bytes(value)

    def get(self, key: bytes) -> bytes:
        try:
            return self._data[bytes(key)]
        except KeyError:
            raise KeyNotFoundError(f"key {key!r} not found") from None

    def delete(self, key: bytes) -> None:
        if bytes(key) not in self._data:
            raise KeyNotFoundError(f"key {key!r} not found")
        del self._data[bytes(key)]

    def keys(self) -> list[bytes]:
        """All live keys (unordered)."""
        return list(self._data.keys())


class FlatFileStore(RecordStore):
    """One file per record in a directory — the paper prototype's design.

    Keys are hex-encoded into file names.  Every ``get`` is an open +
    read; every ``put`` rewrites the whole file.  Correct but slow at
    scale, which is exactly what the EXT-E ablation demonstrates.
    """

    def __init__(self, directory: str) -> None:
        self._directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, key: bytes) -> str:
        return os.path.join(self._directory, bytes(key).hex() + ".rec")

    def put(self, key: bytes, value: bytes) -> None:
        path = self._path(key)
        temp_path = path + ".tmp"
        with open(temp_path, "wb") as handle:
            handle.write(value)
        os.replace(temp_path, path)

    def get(self, key: bytes) -> bytes:
        try:
            with open(self._path(key), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            raise KeyNotFoundError(f"key {key!r} not found") from None

    def delete(self, key: bytes) -> None:
        try:
            os.remove(self._path(key))
        except FileNotFoundError:
            raise KeyNotFoundError(f"key {key!r} not found") from None

    def keys(self) -> list[bytes]:
        """All live keys (unordered).

        Only *canonically* encoded names are keys.  ``bytes.fromhex``
        accepts case variants and whitespace that :meth:`_path` never
        produces ("AB.rec" and "ab.rec" would both decode to b"\\xab"),
        so a directory holding such a foreign file would yield duplicate
        keys whose ``get`` reads only one of the files.  Re-encoding the
        decoded key and demanding an exact name match makes decode the
        true inverse of encode — injective in both directions.
        """
        result = []
        for name in os.listdir(self._directory):
            if not name.endswith(".rec"):
                continue
            try:
                key = bytes.fromhex(name[:-4])
            except ValueError:
                continue  # foreign file in the directory
            if name != key.hex() + ".rec":
                continue  # non-canonical encoding: not one of ours
            result.append(key)
        return result


# Log record framing: crc32 | flags | key_len | value_len | key | value.
_HEADER = struct.Struct(">IBII")
_FLAG_TOMBSTONE = 0x01


class LogStructuredStore(RecordStore):
    """Append-only log with CRC-framed records and an in-memory index.

    Durability model: every mutation is appended and flushed; ``fsync``
    is optional (``sync=True``) and costs throughput.  Opening scans the
    log once to rebuild ``{key -> (offset, length)}``, truncating at the
    first corrupt frame (a torn final write after a crash).  The index
    maps to value offsets so ``get`` is one seek + read + CRC check.

    :meth:`compact` rewrites live records to ``path + '.compact'`` and
    atomically replaces the log, reclaiming space from shadowed writes
    and tombstones.
    """

    def __init__(self, path: str, sync: bool = False) -> None:
        self._path = path
        self._sync = sync
        self._index: dict[bytes, tuple[int, int, int]] = {}  # key -> (off, klen, vlen)
        self._recover()
        self._append_handle = open(path, "ab")

    # -- recovery ---------------------------------------------------------

    def _recover(self) -> None:
        self._index.clear()
        if not os.path.exists(self._path):
            with open(self._path, "wb"):
                pass
            return
        valid_until = 0
        with open(self._path, "rb") as handle:
            data = handle.read()
        offset = 0
        while offset + _HEADER.size <= len(data):
            stored_crc, flags, key_len, value_len = _HEADER.unpack_from(data, offset)
            body_end = offset + _HEADER.size + key_len + value_len
            if body_end > len(data):
                break  # torn final record
            body = data[offset + 4 : body_end]  # flags + lengths + key + value
            if crc32(body) != stored_crc:
                break  # corruption: stop replay here
            key = data[offset + _HEADER.size : offset + _HEADER.size + key_len]
            if flags & _FLAG_TOMBSTONE:
                self._index.pop(key, None)
            else:
                self._index[key] = (offset, key_len, value_len)
            offset = body_end
            valid_until = offset
        if valid_until < len(data):
            # Truncate the torn/corrupt tail so future appends are clean.
            with open(self._path, "r+b") as handle:
                handle.truncate(valid_until)

    # -- primitives ---------------------------------------------------------

    def _append(self, key: bytes, value: bytes, flags: int) -> int:
        header_tail = struct.pack(">BII", flags, len(key), len(value))
        body = header_tail + key + value
        frame = struct.pack(">I", crc32(body)) + body
        offset = self._append_handle.tell()
        self._append_handle.write(frame)
        self._append_handle.flush()
        if self._sync:
            os.fsync(self._append_handle.fileno())
        return offset

    def put(self, key: bytes, value: bytes) -> None:
        key, value = bytes(key), bytes(value)
        offset = self._append(key, value, flags=0)
        self._index[key] = (offset, len(key), len(value))

    def get(self, key: bytes) -> bytes:
        key = bytes(key)
        entry = self._index.get(key)
        if entry is None:
            raise KeyNotFoundError(f"key {key!r} not found")
        offset, key_len, value_len = entry
        with open(self._path, "rb") as handle:
            handle.seek(offset)
            frame = handle.read(_HEADER.size + key_len + value_len)
        if len(frame) != _HEADER.size + key_len + value_len:
            raise CorruptRecordError(f"short read for key {key!r}")
        stored_crc = struct.unpack_from(">I", frame)[0]
        if crc32(frame[4:]) != stored_crc:
            raise CorruptRecordError(f"checksum mismatch for key {key!r}")
        return frame[_HEADER.size + key_len :]

    def delete(self, key: bytes) -> None:
        key = bytes(key)
        if key not in self._index:
            raise KeyNotFoundError(f"key {key!r} not found")
        self._append(key, b"", flags=_FLAG_TOMBSTONE)
        del self._index[key]

    def keys(self) -> list[bytes]:
        """All live keys (unordered)."""
        return list(self._index.keys())

    # -- maintenance --------------------------------------------------------

    def live_bytes(self) -> int:
        """Bytes occupied by live records (excludes shadowed/tombstoned)."""
        return sum(
            _HEADER.size + key_len + value_len
            for (_, key_len, value_len) in self._index.values()
        )

    def file_bytes(self) -> int:
        """Current size of the log file."""
        self._append_handle.flush()
        return os.path.getsize(self._path)

    def compact(self) -> None:
        """Rewrite only live records, atomically replacing the log."""
        compact_path = self._path + ".compact"
        live = [(key, self.get(key)) for key in self.keys()]
        self._append_handle.close()
        with open(compact_path, "wb") as handle:
            for key, value in live:
                header_tail = struct.pack(">BII", 0, len(key), len(value))
                body = header_tail + key + value
                handle.write(struct.pack(">I", crc32(body)) + body)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(compact_path, self._path)
        self._recover()
        self._append_handle = open(self._path, "ab")

    def close(self) -> None:
        """Release underlying resources."""
        if not self._append_handle.closed:
            self._append_handle.flush()
            self._append_handle.close()

    def reopen(self) -> None:
        """Close and recover from disk (simulates a process restart)."""
        self.close()
        self._recover()
        self._append_handle = open(self._path, "ab")


def open_store(kind: str, path: str | None = None, **kwargs) -> RecordStore:
    """Factory: ``memory``, ``flatfile`` or ``log``."""
    if kind == "memory":
        return MemoryStore()
    if kind == "flatfile":
        if path is None:
            raise StorageError("flatfile store requires a directory path")
        return FlatFileStore(path)
    if kind == "log":
        if path is None:
            raise StorageError("log store requires a file path")
        return LogStructuredStore(path, **kwargs)
    raise StorageError(f"unknown store kind {kind!r}")
