"""The Message Database (MD) of the paper's Fig. 3.

Stores authenticated, still-encrypted deposits: ``rP || C`` (inside the
hybrid ciphertext blob) together with the attribute string, the
per-message nonce and bookkeeping metadata.  The MWS can *route* on the
attribute but never decrypt — the whole point of the paper.

Primary data lives in any :class:`repro.storage.engine.RecordStore`;
an attribute hash-index and a deposit-time sorted index are rebuilt by
scanning on open.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import KeyNotFoundError, StorageError
from repro.storage.engine import MemoryStore, RecordStore
from repro.storage.indexes import HashIndex, SortedIndex
from repro.wire.encoding import Reader, Writer

__all__ = ["MessageRecord", "MessageDatabase"]


@dataclass
class MessageRecord:
    """One warehoused message: what the paper stores after SDA accepts it."""

    message_id: int
    device_id: str
    attribute: str
    nonce: bytes
    ciphertext: bytes
    deposited_at_us: int
    #: Key-lifecycle epoch of the *outermost* ciphertext layer; lazy
    #: re-encryption advances it.  0 is the legacy encoding and is not
    #: emitted, so pre-epoch records (and the WAL frames carrying them)
    #: stay byte-identical.
    epoch: int = 0

    def to_bytes(self) -> bytes:
        """Serialise to the canonical byte encoding."""
        writer = (
            Writer()
            .u64(self.message_id)
            .text(self.device_id)
            .text(self.attribute)
            .blob(self.nonce)
            .blob(self.ciphertext)
            .u64(self.deposited_at_us)
        )
        if self.epoch:
            writer.u32(self.epoch)
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "MessageRecord":
        """Parse an instance from its canonical byte encoding."""
        reader = Reader(data)
        record = cls(
            message_id=reader.u64(),
            device_id=reader.text(),
            attribute=reader.text(),
            nonce=reader.blob(),
            ciphertext=reader.blob(),
            deposited_at_us=reader.u64(),
        )
        if reader.remaining:
            record.epoch = reader.u32()
        reader.finish()
        return record


class MessageDatabase:
    """MD operations: store, fetch by attribute, fetch by time range."""

    def __init__(self, store: RecordStore | None = None) -> None:
        self._store = store if store is not None else MemoryStore()
        self._by_attribute = HashIndex()
        self._by_time = SortedIndex()
        self._next_id = 1
        self._rebuild_indexes()

    def _rebuild_indexes(self) -> None:
        for key, value in self._store.items():
            record = MessageRecord.from_bytes(value)
            self._by_attribute.add(record.attribute, record.message_id)
            self._by_time.add(record.deposited_at_us, record.message_id)
            self._next_id = max(self._next_id, record.message_id + 1)

    @staticmethod
    def _key(message_id: int) -> bytes:
        return message_id.to_bytes(8, "big")

    # -- writes -------------------------------------------------------------

    def store(
        self,
        device_id: str,
        attribute: str,
        nonce: bytes,
        ciphertext: bytes,
        deposited_at_us: int,
        epoch: int = 0,
    ) -> MessageRecord:
        """Persist an accepted deposit; assigns and returns the record."""
        record = MessageRecord(
            message_id=self._next_id,
            device_id=device_id,
            attribute=attribute,
            nonce=nonce,
            ciphertext=ciphertext,
            deposited_at_us=deposited_at_us,
            epoch=epoch,
        )
        self.store_record(record)
        return record

    def store_record(self, record: MessageRecord) -> None:
        """Persist a record whose ``message_id`` was assigned by the caller.

        The shard router allocates globally unique ids and routes the
        finished record here; ``_next_id`` is bumped past it so a later
        locally assigned id can never collide.

        Overwrite-idempotent: storing an id that already exists replaces
        the record and repairs the indexes first.  Re-encryption ships
        its updates as plain store frames over the WAL, so followers
        replay the same id twice — without this, each replay would
        duplicate the sorted time-index entry and a later promoted
        follower would serve the message twice per time scan.
        """
        key = self._key(record.message_id)
        try:
            existing = MessageRecord.from_bytes(self._store.get(key))
        except KeyNotFoundError:
            existing = None
        if existing is not None:
            self._by_attribute.remove(existing.attribute, existing.message_id)
            self._by_time.remove(existing.deposited_at_us, existing.message_id)
        self._store.put(key, record.to_bytes())
        self._by_attribute.add(record.attribute, record.message_id)
        self._by_time.add(record.deposited_at_us, record.message_id)
        self._next_id = max(self._next_id, record.message_id + 1)

    def update_record(self, record: MessageRecord) -> None:
        """Overwrite an *existing* record in place (re-encryption path).

        Raises :class:`KeyNotFoundError` when the id was never stored —
        an update inventing a message would break conservation.
        """
        self.fetch(record.message_id)  # existence check, raises early
        self.store_record(record)

    def delete(self, message_id: int) -> None:
        """Remove a message (e.g. retention policy)."""
        record = self.fetch(message_id)
        self._store.delete(self._key(message_id))
        self._by_attribute.remove(record.attribute, message_id)
        self._by_time.remove(record.deposited_at_us, message_id)

    # -- reads --------------------------------------------------------------

    def fetch(self, message_id: int) -> MessageRecord:
        return MessageRecord.from_bytes(self._store.get(self._key(message_id)))

    def by_attribute(self, attribute: str) -> list[MessageRecord]:
        """All messages deposited under one attribute string, oldest first."""
        ids = sorted(self._by_attribute.lookup(attribute))
        return [self.fetch(message_id) for message_id in ids]

    def by_attributes(self, attributes: list[str]) -> list[MessageRecord]:
        """Union over several attributes (what MMS runs per RC request)."""
        ids: set[int] = set()
        for attribute in attributes:
            ids |= self._by_attribute.lookup(attribute)
        return [self.fetch(message_id) for message_id in sorted(ids)]

    def by_time_range(self, low_us: int, high_us: int) -> list[MessageRecord]:
        """Messages deposited in the inclusive time window."""
        return [self.fetch(message_id) for message_id in self._by_time.range(low_us, high_us)]

    def attributes(self) -> list[str]:
        """Distinct attribute strings present in the warehouse."""
        return sorted(self._by_attribute.values())

    def records(self) -> list[MessageRecord]:
        """Every stored record, ordered by message id (rebalance scans)."""
        ids = sorted(
            int.from_bytes(key, "big") for key in self._store.keys()
        )
        return [self.fetch(message_id) for message_id in ids]

    def max_id(self) -> int:
        """Highest assigned message id (0 when empty)."""
        return self._next_id - 1

    # -- maintenance --------------------------------------------------------

    def compact(self) -> None:
        """Compact the backing store when the backend supports it.

        Log-structured backends reclaim shadowed/tombstoned space;
        memory and flat-file backends have nothing to compact and the
        call is a no-op.
        """
        compactor = getattr(self._store, "compact", None)
        if compactor is not None:
            compactor()

    def __len__(self) -> int:
        return len(self._store)

    def close(self) -> None:
        """Release underlying resources."""
        self._store.close()
