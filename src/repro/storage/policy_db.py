"""The Policy Database (PD): the paper's Table 1 made operational.

Maintains the ``Identity - Attribute - Attribute ID`` mapping:

====== ========= ============
IDRC1  A1        1
IDRC1  A2        2
IDRC2  A1        3
====== ========= ============

Attribute IDs are *per grant* (the same attribute gets a different AID
for each identity, exactly as in the table), so an RC can never learn
its attribute strings or correlate them with another RC's — the
property the paper relies on for device-free revocation.

Revocation (requirement iii) is a row delete: the identity keeps any
private keys it already extracted (old messages stay readable — the
paper's model) but is never handed keys for future messages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnknownAttributeError, UnknownIdentityError
from repro.storage.engine import MemoryStore, RecordStore
from repro.wire.encoding import Reader, Writer

__all__ = ["PolicyRow", "PolicyDatabase"]


@dataclass
class PolicyRow:
    """One Table 1 row."""

    identity: str
    attribute: str
    attribute_id: int

    def to_bytes(self) -> bytes:
        """Serialise to the canonical byte encoding."""
        return (
            Writer()
            .text(self.identity)
            .text(self.attribute)
            .u64(self.attribute_id)
            .getvalue()
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "PolicyRow":
        """Parse an instance from its canonical byte encoding."""
        reader = Reader(data)
        row = cls(
            identity=reader.text(),
            attribute=reader.text(),
            attribute_id=reader.u64(),
        )
        reader.finish()
        return row


class PolicyDatabase:
    """Identity/attribute grants with opaque per-grant attribute ids."""

    def __init__(self, store: RecordStore | None = None) -> None:
        self._store = store if store is not None else MemoryStore()
        self._by_identity: dict[str, dict[int, str]] = {}
        self._by_pair: dict[tuple[str, str], int] = {}
        self._next_attribute_id = 1
        #: Monotone policy version: bumps once per completed mutation
        #: (or per completed atomic batch).  Readers stamp tickets with
        #: it so a token provably reflects one coherent policy state.
        self._version = 0
        self._rebuild()

    @property
    def version(self) -> int:
        """The policy version the current state reflects."""
        return self._version

    def apply_batch(self, mutations) -> int:
        """Apply ``(op, identity, attribute)`` mutations as one version.

        ``op`` is ``"grant"`` or ``"revoke"``.  The whole batch bumps
        the version exactly once, *after* every mutation landed — a
        reader that snapshots ``attributes_for`` + ``version`` either
        predates the batch entirely or sees all of it (the
        no-torn-policy guarantee the Token Generator relies on while
        deposits are in flight).  A failing mutation rolls the already
        applied prefix back before re-raising, so a half-applied batch
        is never visible at any version.
        """
        applied: list[tuple[str, str, str]] = []
        try:
            for op, identity, attribute in mutations:
                if op == "grant":
                    before = self._by_pair.get((identity, attribute))
                    self._grant_row(identity, attribute)
                    if before is None:
                        applied.append(("grant", identity, attribute))
                elif op == "revoke":
                    self._revoke_row(identity, attribute)
                    applied.append(("revoke", identity, attribute))
                else:
                    raise ValueError(f"unknown policy mutation {op!r}")
        except Exception:
            for op, identity, attribute in reversed(applied):
                if op == "grant":
                    self._revoke_row(identity, attribute)
                else:
                    self._grant_row(identity, attribute)
            raise
        self._version += 1
        return self._version

    def _rebuild(self) -> None:
        for _key, value in self._store.items():
            row = PolicyRow.from_bytes(value)
            self._by_identity.setdefault(row.identity, {})[row.attribute_id] = (
                row.attribute
            )
            self._by_pair[(row.identity, row.attribute)] = row.attribute_id
            self._next_attribute_id = max(
                self._next_attribute_id, row.attribute_id + 1
            )

    @staticmethod
    def _key(attribute_id: int) -> bytes:
        return attribute_id.to_bytes(8, "big")

    # -- grants ---------------------------------------------------------

    def _grant_row(self, identity: str, attribute: str) -> int:
        existing = self._by_pair.get((identity, attribute))
        if existing is not None:
            return existing
        attribute_id = self._next_attribute_id
        self._next_attribute_id += 1
        row = PolicyRow(identity=identity, attribute=attribute, attribute_id=attribute_id)
        self._store.put(self._key(attribute_id), row.to_bytes())
        self._by_identity.setdefault(identity, {})[attribute_id] = attribute
        self._by_pair[(identity, attribute)] = attribute_id
        return attribute_id

    def _revoke_row(self, identity: str, attribute: str) -> None:
        attribute_id = self._by_pair.pop((identity, attribute), None)
        if attribute_id is None:
            raise UnknownAttributeError(
                f"no grant of {attribute!r} to {identity!r} to revoke"
            )
        self._store.delete(self._key(attribute_id))
        bucket = self._by_identity.get(identity, {})
        bucket.pop(attribute_id, None)
        if not bucket:
            self._by_identity.pop(identity, None)

    def grant(self, identity: str, attribute: str) -> int:
        """Authorize ``identity`` for ``attribute``; returns the AID.

        Idempotent: granting an existing pair returns the existing AID
        (and, being a no-op, leaves the policy version unchanged).
        """
        existing = self._by_pair.get((identity, attribute))
        if existing is not None:
            return existing
        attribute_id = self._grant_row(identity, attribute)
        self._version += 1
        return attribute_id

    def revoke(self, identity: str, attribute: str) -> None:
        """Remove a grant (paper requirement iii).  Unknown pairs raise."""
        self._revoke_row(identity, attribute)
        self._version += 1

    def revoke_identity(self, identity: str) -> int:
        """Remove every grant for ``identity``; returns the count removed.

        Atomic: all rows disappear under a single version bump, so no
        reader sees the identity half-revoked.
        """
        attributes = list(self._by_identity.get(identity, {}).values())
        for attribute in attributes:
            self._revoke_row(identity, attribute)
        if attributes:
            self._version += 1
        return len(attributes)

    # -- queries ----------------------------------------------------------

    def attributes_for(self, identity: str) -> dict[int, str]:
        """AID -> attribute map for an identity (what MMS and TG consume).

        Raises :class:`UnknownIdentityError` for identities with no grants,
        matching the MWS behaviour of rejecting unknown clients.
        """
        bucket = self._by_identity.get(identity)
        if bucket is None:
            raise UnknownIdentityError(f"identity {identity!r} has no grants")
        return dict(bucket)

    def is_authorized(self, identity: str, attribute: str) -> bool:
        return (identity, attribute) in self._by_pair

    def identities_for(self, attribute: str) -> list[str]:
        """All identities granted ``attribute`` (admin/audit view)."""
        return sorted(
            identity
            for (identity, attr) in self._by_pair
            if attr == attribute
        )

    def table(self) -> list[PolicyRow]:
        """The full Table 1, ordered by attribute id."""
        rows = [
            PolicyRow(identity=identity, attribute=attribute, attribute_id=attribute_id)
            for (identity, attribute), attribute_id in self._by_pair.items()
        ]
        return sorted(rows, key=lambda row: row.attribute_id)

    def __len__(self) -> int:
        return len(self._by_pair)

    def close(self) -> None:
        """Release underlying resources."""
        self._store.close()
