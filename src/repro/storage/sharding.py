"""Sharded Message DB: a consistent-hash router over N record stores.

The paper pitches the MWS as a SaaS intermediary for fleets of smart
meters; a single :class:`~repro.storage.message_db.MessageDatabase`
serialises every deposit through one store.  This module spreads the
warehouse across N independent shards, each a full ``MessageDatabase``
(own :class:`RecordStore`, own ``HashIndex``/``SortedIndex``) — or,
with ``replicas > 1``, a WAL-shipped
:class:`~repro.storage.replication.ReplicaSet` of such databases —
routed by a deterministic consistent hash of the **attribute string**:

* all messages under one attribute colocate on one shard, so an
  attribute retrieval stays a single-shard index lookup;
* the ring is built from SHA-256 positions of ``shard:<i>:vnode:<j>``
  labels — pure data, no process state — so shard assignment is
  byte-identical across runs and across backends;
* :meth:`ShardedMessageDatabase.rebalance` grows the fleet by adding
  shards; consistent hashing moves only the attributes whose ring
  successor changed (~K/N of them), never reshuffles the rest.

Rebalance comes in two flavours.  The classic :meth:`rebalance` is
offline-only (refused under live worker leases).  :meth:`rebalance_online`
is a *generator* that drains record moves one at a time — deposits keep
flowing between steps under the existing lease, routing updates
incrementally per moved record (store on the target, repoint the id
map, then delete from the source, so a concurrent ``fetch`` never hits
a gap), and reads consult **both** the new and the previous ring until
the drain finishes.

Message ids are allocated globally by the router (monotonic across
shards) and an id→shard map is rebuilt on open by scanning, mirroring
the durable-primary/volatile-index split of the engine layer.
"""

from __future__ import annotations

from bisect import bisect_right
from contextlib import contextmanager

from repro.errors import KeyNotFoundError, StorageError
from repro.hashes.sha256 import sha256
from repro.storage.engine import MemoryStore, RecordStore
from repro.storage.message_db import MessageDatabase, MessageRecord
from repro.storage.replication import ReplicaSet

__all__ = ["HashRing", "ShardedMessageDatabase", "DEFAULT_VNODES"]

#: Virtual nodes per shard.  128 keeps the expected per-shard attribute
#: imbalance under a few percent for realistic fleet sizes while the
#: ring stays small enough to rebuild instantly.
DEFAULT_VNODES = 128


def _ring_position(label: bytes) -> int:
    """A point on the ring: the first 8 bytes of SHA-256, big-endian."""
    return int.from_bytes(sha256(label)[:8], "big")


class HashRing:
    """Deterministic consistent-hash ring mapping strings to shard ids.

    Positions depend only on shard indices and ``vnodes`` — two rings
    built with the same shape are identical, which is what makes shard
    assignment reproducible across runs, machines and backends.
    """

    def __init__(self, shard_count: int, vnodes: int = DEFAULT_VNODES) -> None:
        if shard_count < 1:
            raise StorageError(f"ring needs at least one shard, got {shard_count}")
        if vnodes < 1:
            raise StorageError(f"ring needs at least one vnode, got {vnodes}")
        self.shard_count = shard_count
        self.vnodes = vnodes
        entries: list[tuple[int, int]] = []
        for shard in range(shard_count):
            for vnode in range(vnodes):
                label = f"shard:{shard}:vnode:{vnode}".encode("ascii")
                entries.append((_ring_position(label), shard))
        entries.sort()
        self._positions = [position for position, _ in entries]
        self._shards = [shard for _, shard in entries]

    def shard_for(self, value: str) -> int:
        """The shard owning ``value``: its clockwise ring successor."""
        point = _ring_position(value.encode("utf-8"))
        index = bisect_right(self._positions, point)
        if index == len(self._positions):
            index = 0  # wrap past the top of the ring
        return self._shards[index]


class ShardedMessageDatabase:
    """A drop-in ``MessageDatabase`` spread across N shard backends.

    Exposes the same surface the MMS and the MWS facade consume
    (``store``/``fetch``/``by_attribute``/``by_attributes``/
    ``by_time_range``/``attributes``/``delete``/``len``/``close``) plus
    shard-aware operations: :meth:`shard_for`, :meth:`shard_counts`,
    :meth:`rebalance`, :meth:`rebalance_online`, :meth:`compact`, and —
    on a replicated warehouse — :meth:`fail_shard_leader` and
    :meth:`shard_watermarks`.

    ``replicas`` > 1 turns every shard into a
    :class:`~repro.storage.replication.ReplicaSet` (the given store
    seeds the leader; followers are in-memory) with ``quorum`` acks per
    mutation.  ``registry`` (a
    :class:`repro.obs.registry.MetricsRegistry`) adds per-shard deposit
    counters and live message-count gauges under ``storage.shard.<i>.*``
    plus the replication layer's ``replication.shard.<i>.*`` /
    ``storage.wal.shard.<i>.*`` families.
    """

    def __init__(
        self,
        stores: list[RecordStore | None] | int,
        vnodes: int = DEFAULT_VNODES,
        registry=None,
        replicas: int = 1,
        quorum: int | None = None,
    ) -> None:
        if isinstance(stores, int):
            stores = [None] * stores
        if not stores:
            raise StorageError("sharded database needs at least one shard")
        if replicas < 1:
            raise StorageError(f"need at least one replica, got {replicas}")
        self._replicas = replicas
        self._quorum = quorum
        self._registry = registry
        self._shards: list = []
        for store in stores:
            self._shards.append(self._new_shard(store, len(self._shards)))
        self._vnodes = vnodes
        self._ring = HashRing(len(self._shards), vnodes)
        #: Previous ring, non-None only while an online rebalance drains;
        #: reads consult both rings so unmoved records stay reachable.
        self._prev_ring: HashRing | None = None
        self._live_workers = 0
        #: Optional callable invoked with the target shard backend
        #: before every mutation — the ownership sanitizer's probe
        #: point (:mod:`repro.sim.sanitizer`).  ``None`` costs one
        #: attribute test per write.
        self.mutation_hook = None
        self._id_to_shard: dict[int, int] = {}
        self._next_id = 1
        for index, shard in enumerate(self._shards):
            for record in shard.records():
                self._id_to_shard[record.message_id] = index
            self._next_id = max(self._next_id, shard.max_id() + 1)
        self._install_metrics()

    def _new_shard(self, store: RecordStore | None, index: int):
        if self._replicas > 1:
            return ReplicaSet(
                [store] + [None] * (self._replicas - 1),
                quorum=self._quorum,
                registry=self._registry,
                shard_index=index,
            )
        return MessageDatabase(store if store is not None else MemoryStore())

    def _install_metrics(self) -> None:
        self._deposit_counters = []
        self._message_gauges = []
        self._rebalance_moved = None
        if self._registry is None:
            return
        for index, shard in enumerate(self._shards):
            prefix = f"storage.shard.{index}"
            self._deposit_counters.append(
                self._registry.counter(f"{prefix}.deposits")
            )
            gauge = self._registry.gauge(f"{prefix}.messages")
            gauge.set(len(shard))
            self._message_gauges.append(gauge)
        self._rebalance_moved = self._registry.counter("storage.rebalance.moved")

    # -- routing ----------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def replicas(self) -> int:
        """Copies kept per shard (1 = unreplicated classic layout)."""
        return self._replicas

    @property
    def rebalancing(self) -> bool:
        """True while an online drain is in flight (dual-ring reads)."""
        return self._prev_ring is not None

    def shard_for(self, attribute: str) -> int:
        """The shard index owning every message under ``attribute``."""
        return self._ring.shard_for(attribute)

    def _read_shards_for(self, attribute: str) -> list[int]:
        """Shards a read must consult: the owner, plus — while an online
        drain is in flight — the previous owner still holding unmoved
        records."""
        owner = self._ring.shard_for(attribute)
        if self._prev_ring is None:
            return [owner]
        previous = self._prev_ring.shard_for(attribute)
        return [owner] if previous == owner else [owner, previous]

    def shard(self, index: int):
        """Direct access to one shard backend (tests, admin tooling)."""
        return self._shards[index]

    def shard_counts(self) -> list[int]:
        """Live message count per shard (conservation checks sum this)."""
        return [len(shard) for shard in self._shards]

    # -- replication surface ----------------------------------------------

    def fail_shard_leader(self, index: int) -> int:
        """Crash shard ``index``'s leader and promote a follower.

        Only meaningful on a replicated warehouse; returns the promoted
        replica's id.
        """
        shard = self._shards[index]
        if not isinstance(shard, ReplicaSet):
            raise StorageError(
                f"shard {index} is unreplicated; nothing to fail over"
            )
        return shard.fail_leader()

    def shard_watermarks(self) -> list[int]:
        """Per-shard committed-LSN watermarks (0 for unreplicated shards).

        A cursor-paged retrieval captures these; the replication layer
        guarantees the serving replica has applied at least this much
        before answering, which is the read-your-writes contract across
        a failover.
        """
        return [
            shard.watermark() if isinstance(shard, ReplicaSet) else 0
            for shard in self._shards
        ]

    def install_fault_plan(self, plan) -> None:
        """Wire a fault plan's follower-lag decisions into every shard."""
        decider = getattr(plan, "decide_follower_lag", None)
        if decider is None:
            return
        for shard in self._shards:
            if isinstance(shard, ReplicaSet):
                shard.set_lag_decider(decider)

    # -- writes -----------------------------------------------------------

    def store(
        self,
        device_id: str,
        attribute: str,
        nonce: bytes,
        ciphertext: bytes,
        deposited_at_us: int,
        epoch: int = 0,
    ) -> MessageRecord:
        """Route one accepted deposit to its shard; assigns the global id."""
        index = self.shard_for(attribute)
        if self.mutation_hook is not None:
            self.mutation_hook(self._shards[index])
        record = MessageRecord(
            message_id=self._next_id,
            device_id=device_id,
            attribute=attribute,
            nonce=nonce,
            ciphertext=ciphertext,
            deposited_at_us=deposited_at_us,
            epoch=epoch,
        )
        self._shards[index].store_record(record)
        self._id_to_shard[record.message_id] = index
        self._next_id += 1
        if self._deposit_counters:
            self._deposit_counters[index].inc()
            self._message_gauges[index].set(len(self._shards[index]))
        return record

    def update_record(self, record: MessageRecord) -> None:
        """Overwrite an existing record on whichever shard holds it.

        The lazy re-encryption path: the message count, id→shard map and
        deposit counters are untouched (the message is the *same*
        message, just re-wrapped), and on a replicated shard the
        overwrite ships through the WAL so every follower converges.
        """
        index = self._shard_of_id(record.message_id)
        if self.mutation_hook is not None:
            self.mutation_hook(self._shards[index])
        self._shards[index].update_record(record)

    def delete(self, message_id: int) -> None:
        """Remove a message from whichever shard holds it."""
        index = self._shard_of_id(message_id)
        if self.mutation_hook is not None:
            self.mutation_hook(self._shards[index])
        self._shards[index].delete(message_id)
        del self._id_to_shard[message_id]
        if self._message_gauges:
            self._message_gauges[index].set(len(self._shards[index]))

    # -- reads ------------------------------------------------------------

    def _shard_of_id(self, message_id: int) -> int:
        index = self._id_to_shard.get(message_id)
        if index is None:
            raise KeyNotFoundError(f"message id {message_id} not found")
        return index

    def fetch(self, message_id: int) -> MessageRecord:
        return self._shards[self._shard_of_id(message_id)].fetch(message_id)

    def by_attribute(self, attribute: str) -> list[MessageRecord]:
        """All messages under one attribute — a single-shard index lookup
        (two shards mid-drain, merged and de-duplicated by id)."""
        indexes = self._read_shards_for(attribute)
        if len(indexes) == 1:
            return self._shards[indexes[0]].by_attribute(attribute)
        seen: dict[int, MessageRecord] = {}
        for index in indexes:
            for record in self._shards[index].by_attribute(attribute):
                seen[record.message_id] = record
        return [seen[message_id] for message_id in sorted(seen)]

    def by_attributes(self, attributes: list[str]) -> list[MessageRecord]:
        """Union over attributes, grouped so each shard is scanned once.

        This is the MMS retrieval path: attributes are bucketed by
        owning shard first (both owners while a drain is in flight),
        each shard answers its whole bucket in one pass, and the union
        is re-sorted into global message-id order.
        """
        by_shard: dict[int, list[str]] = {}
        for attribute in attributes:
            for index in self._read_shards_for(attribute):
                by_shard.setdefault(index, []).append(attribute)
        seen: dict[int, MessageRecord] = {}
        for index in sorted(by_shard):
            for record in self._shards[index].by_attributes(by_shard[index]):
                seen[record.message_id] = record
        return [seen[message_id] for message_id in sorted(seen)]

    def by_time_range(self, low_us: int, high_us: int) -> list[MessageRecord]:
        """Messages in the inclusive window, merged across all shards."""
        seen: dict[int, MessageRecord] = {}
        for shard in self._shards:
            for record in shard.by_time_range(low_us, high_us):
                seen[record.message_id] = record
        return [seen[message_id] for message_id in sorted(seen)]

    def records(self) -> list[MessageRecord]:
        """Every stored record in global id order (re-encryption sweeps).

        Mid-drain a moved record can briefly exist on both its old and
        new shard; de-duplicating by id keeps the sweep seeing each
        message exactly once either way.
        """
        seen: dict[int, MessageRecord] = {}
        for shard in self._shards:
            for record in shard.records():
                seen[record.message_id] = record
        return [seen[message_id] for message_id in sorted(seen)]

    def attributes(self) -> list[str]:
        """Distinct attribute strings across the whole warehouse."""
        merged: set[str] = set()
        for shard in self._shards:
            merged.update(shard.attributes())
        return sorted(merged)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    # -- worker leases ----------------------------------------------------

    @property
    def live_workers(self) -> int:
        """Workers currently attached (offline rebalance refused while > 0)."""
        return self._live_workers

    def acquire_worker(self) -> None:
        """Register one live deposit worker against this warehouse."""
        self._live_workers += 1

    def release_worker(self) -> None:
        """Release one live worker lease."""
        if self._live_workers <= 0:
            raise StorageError("release_worker without a matching acquire")
        self._live_workers -= 1

    @contextmanager
    def worker_lease(self, count: int = 1):
        """Hold ``count`` worker leases for the duration of a ``with``.

        The shard-parallel runtime wraps its whole run in one lease so
        admin tooling cannot slide an *offline* rebalance under live
        traffic; the online drain is explicitly allowed to coexist with
        the lease.
        """
        for _ in range(count):
            self.acquire_worker()
        try:
            yield self
        finally:
            for _ in range(count):
                self.release_worker()

    # -- maintenance ------------------------------------------------------

    def compact(self) -> None:
        """Shard-local compaction: each backend compacts independently.

        Offline-only, like :meth:`rebalance`: compaction rewrites the
        backing stores wholesale, which must not race live deposit
        workers.
        """
        if self._live_workers:
            raise StorageError(
                "compact is offline-only: "
                f"{self._live_workers} live worker(s) attached; "
                "drain the worker pool first"
            )
        for shard in self._shards:
            shard.compact()

    def _move_record(self, source: int, record: MessageRecord, target: int) -> None:
        """Move one record, keeping it continuously readable.

        Order matters for live readers: store on the target first,
        repoint the id route (so ``fetch`` follows the copy), and only
        then delete the original.  On a replicated warehouse both the
        store and the delete flow through the shard WALs.
        """
        if self.mutation_hook is not None:
            self.mutation_hook(self._shards[target])
            self.mutation_hook(self._shards[source])
        self._shards[target].store_record(record)
        self._id_to_shard[record.message_id] = target
        self._shards[source].delete(record.message_id)

    def _grow_ring(self, new_stores: list[RecordStore | None]) -> HashRing:
        """Append the new shards and swap the ring; returns the old ring."""
        for store in new_stores:
            self._shards.append(self._new_shard(store, len(self._shards)))
        old_ring = self._ring
        self._ring = HashRing(len(self._shards), self._vnodes)
        return old_ring

    def _moves(self) -> list[tuple[int, MessageRecord, int]]:
        """Snapshot of ``(source, record, target)`` moves the new ring asks
        for.  Records deposited after the snapshot already route by the
        new ring and never need moving."""
        moves = []
        for index, shard in enumerate(self._shards):
            for record in shard.records():
                target = self._ring.shard_for(record.attribute)
                if target != index:
                    moves.append((index, record, target))
        return moves

    def rebalance(self, new_stores: list[RecordStore | None]) -> int:
        """Grow the fleet by ``len(new_stores)`` shards; returns moves.

        The offline path: refused under live worker leases (use
        :meth:`rebalance_online` to drain under traffic).  The ring
        keeps every existing vnode position, so only records whose
        attribute's ring successor is now one of the new shards migrate
        — the consistent-hashing guarantee that a split touches ~K/N
        keys.  Moved records keep their bytes verbatim (same id, same
        payload), so retrieval sets are unchanged.
        """
        if self._live_workers:
            raise StorageError(
                "rebalance is offline-only: "
                f"{self._live_workers} live worker(s) attached; "
                "drain the worker pool first or use rebalance_online() "
                "to migrate under the lease"
            )
        if not new_stores:
            return 0
        self._grow_ring(new_stores)
        moved = 0
        for source, record, target in self._moves():
            self._move_record(source, record, target)
            moved += 1
        self._install_metrics()
        if self._rebalance_moved is not None:
            self._rebalance_moved.inc(moved)
        return moved

    def rebalance_online(self, new_stores: list[RecordStore | None]):
        """Online shard growth: a generator that drains one move per step.

        Designed to run as a cooperative task under the deterministic
        scheduler while deposit workers hold the lease: the ring is
        swapped up front (new deposits route straight to their final
        shard), then each ``yield`` moves exactly one old record —
        store-then-repoint-then-delete, so every message stays
        continuously fetchable and attribute reads merge both owners
        until the drain completes.  Yields the running move count;
        returns the total via ``StopIteration.value``.
        """
        if self._prev_ring is not None:
            raise StorageError("an online rebalance is already in flight")
        if not new_stores:
            return 0
        self._prev_ring = self._grow_ring(new_stores)
        self._install_metrics()
        moved = 0
        try:
            for source, record, target in self._moves():
                self._move_record(source, record, target)
                moved += 1
                if self._rebalance_moved is not None:
                    self._rebalance_moved.inc()
                if self._message_gauges:
                    self._message_gauges[source].set(len(self._shards[source]))
                    self._message_gauges[target].set(len(self._shards[target]))
                yield moved
        finally:
            # Even if the driver is killed mid-drain the dual-ring read
            # path stays active only while moves remain; a crashed drain
            # leaves both rings consulted, so nothing becomes unreadable.
            if not self._pending_moves():
                self._prev_ring = None
        self._prev_ring = None
        return moved

    def finish_rebalance(self) -> int:
        """Complete an interrupted online drain synchronously.

        A drain task killed mid-flight leaves the dual-ring read path
        active (nothing unreadable, nothing lost); recovery replays the
        remaining moves in one pass and retires the previous ring.
        Returns how many records were moved; 0 when no drain was
        pending.
        """
        if self._prev_ring is None:
            return 0
        moved = 0
        for source, record, target in self._moves():
            self._move_record(source, record, target)
            moved += 1
        if self._rebalance_moved is not None:
            self._rebalance_moved.inc(moved)
        self._prev_ring = None
        return moved

    def _pending_moves(self) -> bool:
        """Whether any record still lives off its ring-assigned shard."""
        for index, shard in enumerate(self._shards):
            for record in shard.records():
                if self._ring.shard_for(record.attribute) != index:
                    return True
        return False

    def close(self) -> None:
        """Release every shard's resources.

        Refused while worker leases are live: a task still attached to
        the warehouse would be left holding closed stores.
        """
        if self._live_workers:
            raise StorageError(
                "close is offline-only: "
                f"{self._live_workers} live worker(s) attached; "
                "release the leases first"
            )
        for shard in self._shards:
            shard.close()
