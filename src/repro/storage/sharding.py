"""Sharded Message DB: a consistent-hash router over N record stores.

The paper pitches the MWS as a SaaS intermediary for fleets of smart
meters; a single :class:`~repro.storage.message_db.MessageDatabase`
serialises every deposit through one store.  This module spreads the
warehouse across N independent shards, each a full ``MessageDatabase``
(own :class:`RecordStore`, own ``HashIndex``/``SortedIndex``), routed by
a deterministic consistent hash of the **attribute string**:

* all messages under one attribute colocate on one shard, so an
  attribute retrieval stays a single-shard index lookup;
* the ring is built from SHA-256 positions of ``shard:<i>:vnode:<j>``
  labels — pure data, no process state — so shard assignment is
  byte-identical across runs and across backends;
* :meth:`ShardedMessageDatabase.rebalance` grows the fleet by adding
  shards; consistent hashing moves only the attributes whose ring
  successor changed (~K/N of them), never reshuffles the rest.

Message ids are allocated globally by the router (monotonic across
shards) and an id→shard map is rebuilt on open by scanning, mirroring
the durable-primary/volatile-index split of the engine layer.
"""

from __future__ import annotations

from bisect import bisect_right
from contextlib import contextmanager

from repro.errors import KeyNotFoundError, StorageError
from repro.hashes.sha256 import sha256
from repro.storage.engine import MemoryStore, RecordStore
from repro.storage.message_db import MessageDatabase, MessageRecord

__all__ = ["HashRing", "ShardedMessageDatabase", "DEFAULT_VNODES"]

#: Virtual nodes per shard.  128 keeps the expected per-shard attribute
#: imbalance under a few percent for realistic fleet sizes while the
#: ring stays small enough to rebuild instantly.
DEFAULT_VNODES = 128


def _ring_position(label: bytes) -> int:
    """A point on the ring: the first 8 bytes of SHA-256, big-endian."""
    return int.from_bytes(sha256(label)[:8], "big")


class HashRing:
    """Deterministic consistent-hash ring mapping strings to shard ids.

    Positions depend only on shard indices and ``vnodes`` — two rings
    built with the same shape are identical, which is what makes shard
    assignment reproducible across runs, machines and backends.
    """

    def __init__(self, shard_count: int, vnodes: int = DEFAULT_VNODES) -> None:
        if shard_count < 1:
            raise StorageError(f"ring needs at least one shard, got {shard_count}")
        if vnodes < 1:
            raise StorageError(f"ring needs at least one vnode, got {vnodes}")
        self.shard_count = shard_count
        self.vnodes = vnodes
        entries: list[tuple[int, int]] = []
        for shard in range(shard_count):
            for vnode in range(vnodes):
                label = f"shard:{shard}:vnode:{vnode}".encode("ascii")
                entries.append((_ring_position(label), shard))
        entries.sort()
        self._positions = [position for position, _ in entries]
        self._shards = [shard for _, shard in entries]

    def shard_for(self, value: str) -> int:
        """The shard owning ``value``: its clockwise ring successor."""
        point = _ring_position(value.encode("utf-8"))
        index = bisect_right(self._positions, point)
        if index == len(self._positions):
            index = 0  # wrap past the top of the ring
        return self._shards[index]


class ShardedMessageDatabase:
    """A drop-in ``MessageDatabase`` spread across N shard backends.

    Exposes the same surface the MMS and the MWS facade consume
    (``store``/``fetch``/``by_attribute``/``by_attributes``/
    ``by_time_range``/``attributes``/``delete``/``len``/``close``) plus
    shard-aware operations: :meth:`shard_for`, :meth:`shard_counts`,
    :meth:`rebalance`, :meth:`compact`.

    ``registry`` (a :class:`repro.obs.registry.MetricsRegistry`) adds
    per-shard deposit counters and live message-count gauges under
    ``storage.shard.<i>.*``.
    """

    def __init__(
        self,
        stores: list[RecordStore | None] | int,
        vnodes: int = DEFAULT_VNODES,
        registry=None,
    ) -> None:
        if isinstance(stores, int):
            stores = [None] * stores
        if not stores:
            raise StorageError("sharded database needs at least one shard")
        self._shards = [
            MessageDatabase(store if store is not None else MemoryStore())
            for store in stores
        ]
        self._vnodes = vnodes
        self._ring = HashRing(len(self._shards), vnodes)
        self._registry = registry
        self._live_workers = 0
        self._id_to_shard: dict[int, int] = {}
        self._next_id = 1
        for index, shard in enumerate(self._shards):
            for record in shard.records():
                self._id_to_shard[record.message_id] = index
            self._next_id = max(self._next_id, shard.max_id() + 1)
        self._install_metrics()

    def _install_metrics(self) -> None:
        self._deposit_counters = []
        self._message_gauges = []
        self._rebalance_moved = None
        if self._registry is None:
            return
        for index, shard in enumerate(self._shards):
            prefix = f"storage.shard.{index}"
            self._deposit_counters.append(
                self._registry.counter(f"{prefix}.deposits")
            )
            gauge = self._registry.gauge(f"{prefix}.messages")
            gauge.set(len(shard))
            self._message_gauges.append(gauge)
        self._rebalance_moved = self._registry.counter("storage.rebalance.moved")

    # -- routing ----------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def shard_for(self, attribute: str) -> int:
        """The shard index owning every message under ``attribute``."""
        return self._ring.shard_for(attribute)

    def shard(self, index: int) -> MessageDatabase:
        """Direct access to one shard (tests, admin tooling)."""
        return self._shards[index]

    def shard_counts(self) -> list[int]:
        """Live message count per shard (conservation checks sum this)."""
        return [len(shard) for shard in self._shards]

    # -- writes -----------------------------------------------------------

    def store(
        self,
        device_id: str,
        attribute: str,
        nonce: bytes,
        ciphertext: bytes,
        deposited_at_us: int,
    ) -> MessageRecord:
        """Route one accepted deposit to its shard; assigns the global id."""
        index = self.shard_for(attribute)
        record = MessageRecord(
            message_id=self._next_id,
            device_id=device_id,
            attribute=attribute,
            nonce=nonce,
            ciphertext=ciphertext,
            deposited_at_us=deposited_at_us,
        )
        self._shards[index].store_record(record)
        self._id_to_shard[record.message_id] = index
        self._next_id += 1
        if self._deposit_counters:
            self._deposit_counters[index].inc()
            self._message_gauges[index].set(len(self._shards[index]))
        return record

    def delete(self, message_id: int) -> None:
        """Remove a message from whichever shard holds it."""
        index = self._shard_of_id(message_id)
        self._shards[index].delete(message_id)
        del self._id_to_shard[message_id]
        if self._message_gauges:
            self._message_gauges[index].set(len(self._shards[index]))

    # -- reads ------------------------------------------------------------

    def _shard_of_id(self, message_id: int) -> int:
        index = self._id_to_shard.get(message_id)
        if index is None:
            raise KeyNotFoundError(f"message id {message_id} not found")
        return index

    def fetch(self, message_id: int) -> MessageRecord:
        return self._shards[self._shard_of_id(message_id)].fetch(message_id)

    def by_attribute(self, attribute: str) -> list[MessageRecord]:
        """All messages under one attribute — a single-shard index lookup."""
        return self._shards[self.shard_for(attribute)].by_attribute(attribute)

    def by_attributes(self, attributes: list[str]) -> list[MessageRecord]:
        """Union over attributes, grouped so each shard is scanned once.

        This is the MMS retrieval path: attributes are bucketed by
        owning shard first, each shard answers its whole bucket in one
        pass, and the union is re-sorted into global message-id order.
        """
        by_shard: dict[int, list[str]] = {}
        for attribute in attributes:
            by_shard.setdefault(self.shard_for(attribute), []).append(attribute)
        records: list[MessageRecord] = []
        for index in sorted(by_shard):
            records.extend(self._shards[index].by_attributes(by_shard[index]))
        records.sort(key=lambda record: record.message_id)
        return records

    def by_time_range(self, low_us: int, high_us: int) -> list[MessageRecord]:
        """Messages in the inclusive window, merged across all shards."""
        records: list[MessageRecord] = []
        for shard in self._shards:
            records.extend(shard.by_time_range(low_us, high_us))
        records.sort(key=lambda record: record.message_id)
        return records

    def attributes(self) -> list[str]:
        """Distinct attribute strings across the whole warehouse."""
        merged: set[str] = set()
        for shard in self._shards:
            merged.update(shard.attributes())
        return sorted(merged)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    # -- worker leases ----------------------------------------------------

    @property
    def live_workers(self) -> int:
        """Workers currently attached (rebalance is refused while > 0)."""
        return self._live_workers

    def acquire_worker(self) -> None:
        """Register one live deposit worker against this warehouse."""
        self._live_workers += 1

    def release_worker(self) -> None:
        """Release one live worker lease."""
        if self._live_workers <= 0:
            raise StorageError("release_worker without a matching acquire")
        self._live_workers -= 1

    @contextmanager
    def worker_lease(self, count: int = 1):
        """Hold ``count`` worker leases for the duration of a ``with``.

        The shard-parallel runtime wraps its whole run in one lease so
        admin tooling cannot slide a rebalance under live traffic.
        """
        for _ in range(count):
            self.acquire_worker()
        try:
            yield self
        finally:
            for _ in range(count):
                self.release_worker()

    # -- maintenance ------------------------------------------------------

    def compact(self) -> None:
        """Shard-local compaction: each backend compacts independently."""
        for shard in self._shards:
            shard.compact()

    def rebalance(self, new_stores: list[RecordStore | None]) -> int:
        """Grow the fleet by ``len(new_stores)`` shards; returns moves.

        The ring keeps every existing vnode position, so only records
        whose attribute's ring successor is now one of the new shards
        migrate — the consistent-hashing guarantee that a split touches
        ~K/N keys.  Moved records keep their bytes verbatim (same id,
        same payload), so retrieval sets are unchanged.
        """
        if self._live_workers:
            raise StorageError(
                "rebalance is offline-only: "
                f"{self._live_workers} live worker(s) attached; "
                "drain the worker pool first (ROADMAP item 4 tracks "
                "online rebalancing)"
            )
        if not new_stores:
            return 0
        for store in new_stores:
            self._shards.append(
                MessageDatabase(store if store is not None else MemoryStore())
            )
        self._ring = HashRing(len(self._shards), self._vnodes)
        moved = 0
        for index, shard in enumerate(self._shards):
            for record in shard.records():
                target = self.shard_for(record.attribute)
                if target == index:
                    continue
                shard.delete(record.message_id)
                self._shards[target].store_record(record)
                self._id_to_shard[record.message_id] = target
                moved += 1
        self._install_metrics()
        if self._rebalance_moved is not None:
            self._rebalance_moved.inc(moved)
        return moved

    def close(self) -> None:
        """Release every shard's resources."""
        for shard in self._shards:
            shard.close()
