"""Per-shard write-ahead log: the replication substrate.

The paper's warehouse is a single store that simply assumes durability;
a replicated MWS needs an ordered, verifiable record of every mutation
so follower replicas can be kept in sync and a promoted follower can
prove it is caught up.  This module provides that record:

* :class:`WalRecord` — one logged mutation in a TLV frame
  (``tag | crc32 | length | body``) whose body carries a **monotone
  LSN** (log sequence number), an opcode and the opaque payload bytes.
  The CRC covers the whole body, so a truncated or bit-flipped frame is
  detected on decode rather than silently applied — the same discipline
  as the log-structured store's record framing.
* :class:`WriteAheadLog` — an append-only sequence of records with
  strictly increasing LSNs.  ``append`` assigns the next LSN;
  ``since(lsn)`` is the shipping primitive (everything a lagging
  follower still needs); ``truncate_until(lsn)`` reclaims entries every
  live replica has applied.

Payloads are deliberately opaque at this layer: the replication layer
logs :class:`~repro.storage.message_db.MessageRecord` bytes for stores
and an 8-byte big-endian id for deletes, so a WAL record round-trips
byte-identically no matter what it carries — the conservation suite
pins that moved ciphertexts stay verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CorruptRecordError, DecodeError, StorageError
from repro.hashes.crc import crc32
from repro.wire.encoding import Reader, Writer

__all__ = [
    "WAL_RECORD_TAG",
    "OP_STORE",
    "OP_DELETE",
    "WalRecord",
    "WriteAheadLog",
]

#: TLV tag byte opening every WAL record frame on the wire.
WAL_RECORD_TAG = 0x57  # 'W'

#: Opcodes a record body may carry.
OP_STORE = 1
OP_DELETE = 2

_KNOWN_OPS = (OP_STORE, OP_DELETE)


@dataclass(frozen=True)
class WalRecord:
    """One logged mutation: ``(lsn, op, payload)`` in a CRC'd TLV frame."""

    lsn: int
    op: int
    payload: bytes

    def to_bytes(self) -> bytes:
        """Serialise to the canonical TLV frame.

        Layout: ``u8 tag | u32 crc32(body) | u32 len(body) | body`` with
        ``body = u64 lsn | u8 op | blob payload``.  The explicit length
        lets a shipping stream skip to the next frame without parsing
        the body; the CRC makes corruption loud.
        """
        body = Writer().u64(self.lsn).u8(self.op).blob(self.payload).getvalue()
        return (
            Writer()
            .u8(WAL_RECORD_TAG)
            .u32(crc32(body))
            .u32(len(body))
            .getvalue()
            + body
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "WalRecord":
        """Parse one frame; rejects bad tags, truncation and CRC damage."""
        # ``tag`` is the public wire-framing byte every frame leads with.
        # # repro-lint: nonsecret=tag,WAL_RECORD_TAG
        reader = Reader(data)
        tag = reader.u8()
        if tag != WAL_RECORD_TAG:
            raise DecodeError(f"bad WAL record tag {tag:#x}")
        # The CRC guards the frame against disk/transport corruption; the
        # body is a wire-format blob (ciphertext frames are already
        # public), so this is an integrity check, not a MAC comparison.
        # # repro-lint: nonsecret=stored_crc,body
        stored_crc = reader.u32()
        body = reader.blob()
        reader.finish()
        if crc32(body) != stored_crc:
            raise CorruptRecordError(
                f"WAL record CRC mismatch: stored {stored_crc:#010x}"
            )
        body_reader = Reader(body)
        record = cls(
            lsn=body_reader.u64(),
            op=body_reader.u8(),
            payload=body_reader.blob(),
        )
        body_reader.finish()
        if record.op not in _KNOWN_OPS:
            raise DecodeError(f"unknown WAL opcode {record.op}")
        return record


class WriteAheadLog:
    """Append-only mutation log with strictly monotone LSNs.

    LSNs start at 1; ``last_lsn`` is 0 for an empty log.  ``registry``
    adds ``<prefix>.appends`` / ``<prefix>.bytes`` counters (the
    replication layer passes ``storage.wal.shard.<i>``).
    """

    def __init__(self, registry=None, prefix: str = "storage.wal") -> None:
        self._records: list[WalRecord] = []
        #: LSN of the last *truncated* record; entries before it are gone.
        self._base_lsn = 0
        self._last_lsn = 0
        if registry is not None:
            self._appends = registry.counter(f"{prefix}.appends")
            self._bytes = registry.counter(f"{prefix}.bytes")
        else:
            self._appends = None
            self._bytes = None

    @property
    def last_lsn(self) -> int:
        """The highest LSN ever appended (the shard's write watermark)."""
        return self._last_lsn

    @property
    def base_lsn(self) -> int:
        """Every record with ``lsn <= base_lsn`` has been truncated away."""
        return self._base_lsn

    def __len__(self) -> int:
        return len(self._records)

    def append(self, op: int, payload: bytes) -> WalRecord:
        """Log one mutation; assigns and returns the next LSN's record."""
        if op not in _KNOWN_OPS:
            raise StorageError(f"unknown WAL opcode {op}")
        record = WalRecord(lsn=self._last_lsn + 1, op=op, payload=bytes(payload))
        self._records.append(record)
        self._last_lsn = record.lsn
        if self._appends is not None:
            self._appends.inc()
            self._bytes.inc(len(record.payload))
        return record

    def since(self, lsn: int) -> list[WalRecord]:
        """Every record with ``record.lsn > lsn`` — the shipping window.

        Raises :class:`StorageError` when the window reaches below the
        truncation point: a replica that far behind cannot be caught up
        from this log and must be re-seeded.
        """
        if lsn < self._base_lsn:
            raise StorageError(
                f"WAL truncated past lsn {lsn} (base is {self._base_lsn}); "
                "replica needs a re-seed"
            )
        # Records are LSN-ordered, so the window is a suffix.
        start = lsn - self._base_lsn
        return self._records[start:]

    def truncate_until(self, lsn: int) -> int:
        """Drop records with ``lsn <= lsn`` (all replicas applied them).

        Returns how many records were reclaimed; never drops past the
        tail.
        """
        lsn = min(lsn, self._last_lsn)
        if lsn <= self._base_lsn:
            return 0
        dropped = lsn - self._base_lsn
        self._records = self._records[dropped:]
        self._base_lsn = lsn
        return dropped
