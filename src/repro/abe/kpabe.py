"""Goyal–Pandey–Sahai–Waters KP-ABE over the library's pairing group.

Large-universe-free variant (fixed attribute universe, §4.2 of the
paper's reference [6]) with the symmetric distortion pairing:

* Setup: per attribute ``t_a`` random, ``T_a = t_a * P``; master ``y``,
  ``Y = e(P, P)^y``.
* Encrypt to set ``S``: pick ``s``; ``E_a = s * T_a`` for each ``a`` in
  ``S``; the KEM value is ``Y^s``, which keys an authenticated
  symmetric container for the message body.
* KeyGen for tree ``T``: share ``y`` down the tree; each leaf with
  attribute ``a`` and share ``q_x(0)`` gets ``D_x = (q_x(0)/t_a) * P``.
* Decrypt: ``e(D_x, E_a) = e(P, P)^(s * q_x(0))`` at satisfied leaves,
  Lagrange-combined up the tree to ``Y^s``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.abe.access_tree import AccessTree, lagrange_coefficient
from repro.errors import AccessDeniedError, ParameterError
from repro.mathlib.modular import inverse_mod
from repro.mathlib.rand import RandomSource, SystemRandomSource
from repro.pairing.curve import Point
from repro.pairing.fields import Fp2Element
from repro.pairing.hashing import gt_to_bytes, mask_bytes
from repro.pairing.params import BFParams
from repro.symciph.cipher import CIPHER_REGISTRY, SymmetricScheme

__all__ = ["KpAbeAuthority", "KpAbePrivateKey", "KpAbeCiphertext"]

_KEM_DOMAIN = b"repro-kpabe-kem"


@dataclass
class KpAbePrivateKey:
    """An access tree plus one key point per leaf (keyed by leaf identity)."""

    tree: AccessTree
    leaf_points: dict[int, Point]


@dataclass
class KpAbeCiphertext:
    """Attribute label set, per-attribute points, sealed body."""

    attributes: set[str]
    components: dict[str, Point]
    cipher_name: str
    sealed: bytes


class KpAbeAuthority:
    """Holds the ABE master key; performs setup, keygen, encrypt helpers.

    Encryption itself needs only the public part
    (:meth:`public_components`); the authority object doubles as the
    encryptor in examples for brevity.
    """

    def __init__(
        self,
        params: BFParams,
        universe: list[str],
        rng: RandomSource | None = None,
    ) -> None:
        if not universe:
            raise ParameterError("KP-ABE requires a non-empty attribute universe")
        if len(set(universe)) != len(universe):
            raise ParameterError("attribute universe contains duplicates")
        self._params = params
        self._rng = rng if rng is not None else SystemRandomSource()
        self._master_y = params.random_scalar(self._rng)
        self._attribute_secrets = {
            attribute: params.random_scalar(self._rng) for attribute in universe
        }
        self.public_t = {
            attribute: secret * params.generator
            for attribute, secret in self._attribute_secrets.items()
        }
        self.public_y: Fp2Element = (
            params.pair(params.generator, params.generator) ** self._master_y
        )

    @property
    def params(self) -> BFParams:
        return self._params

    @property
    def universe(self) -> list[str]:
        return sorted(self._attribute_secrets)

    def public_components(self) -> tuple[dict[str, Point], Fp2Element]:
        """Everything an encryptor needs: ``({attr: T_a}, Y)``."""
        return dict(self.public_t), self.public_y

    # -- keygen -------------------------------------------------------------

    def keygen(self, tree: AccessTree) -> KpAbePrivateKey:
        """Issue a private key whose policy is ``tree``."""
        unknown = tree.attributes() - set(self._attribute_secrets)
        if unknown:
            raise ParameterError(
                f"tree references attributes outside the universe: {sorted(unknown)}"
            )
        q = self._params.q
        shares = tree.distribute_shares(self._master_y, q, self._rng)
        leaf_points = {}
        for node in tree.leaves():
            share = shares[id(node)]
            t_inv = inverse_mod(self._attribute_secrets[node.attribute], q)
            leaf_points[id(node)] = (share * t_inv % q) * self._params.generator
        return KpAbePrivateKey(tree=tree, leaf_points=leaf_points)

    # -- encrypt / decrypt ------------------------------------------------------

    def encrypt(
        self,
        attributes: set[str],
        message: bytes,
        cipher_name: str = "AES-128",
        rng: RandomSource | None = None,
    ) -> KpAbeCiphertext:
        """Encrypt ``message`` labelled with ``attributes``."""
        rng = rng if rng is not None else self._rng
        unknown = attributes - set(self._attribute_secrets)
        if unknown:
            raise ParameterError(
                f"ciphertext labels outside the universe: {sorted(unknown)}"
            )
        if not attributes:
            raise ParameterError("ciphertext needs at least one attribute label")
        s = self._params.random_scalar(rng)
        components = {
            attribute: s * self.public_t[attribute] for attribute in attributes
        }
        kem_value = self.public_y ** s
        key = mask_bytes(
            gt_to_bytes(kem_value),
            CIPHER_REGISTRY[cipher_name].key_size,
            _KEM_DOMAIN,
        )
        scheme = SymmetricScheme(cipher_name, key, mac=True, rng=rng)
        return KpAbeCiphertext(
            attributes=set(attributes),
            components=components,
            cipher_name=cipher_name,
            sealed=scheme.seal(message),
        )

    def decrypt(self, key: KpAbePrivateKey, ciphertext: KpAbeCiphertext) -> bytes:
        """Decrypt when ``key.tree`` accepts the ciphertext's label set.

        Raises :class:`AccessDeniedError` when the policy is not
        satisfied (checked structurally before any pairing work).
        """
        if not key.tree.satisfied_by(ciphertext.attributes):
            raise AccessDeniedError(
                "access tree not satisfied by ciphertext attributes "
                f"{sorted(ciphertext.attributes)}"
            )
        kem_value = self._decrypt_node(key, ciphertext, key.tree)
        assert kem_value is not None  # satisfied_by() guaranteed success
        symmetric_key = mask_bytes(
            gt_to_bytes(kem_value),
            CIPHER_REGISTRY[ciphertext.cipher_name].key_size,
            _KEM_DOMAIN,
        )
        scheme = SymmetricScheme(ciphertext.cipher_name, symmetric_key, mac=True)
        return scheme.open(ciphertext.sealed)

    def _decrypt_node(
        self,
        key: KpAbePrivateKey,
        ciphertext: KpAbeCiphertext,
        node: AccessTree,
    ) -> Fp2Element | None:
        """Recursive DecryptNode of [6]: e(P,P)^(s*q_node(0)) or None."""
        if node.is_leaf():
            component = ciphertext.components.get(node.attribute)
            if component is None:
                return None
            return self._params.pair(key.leaf_points[id(node)], component)
        child_values: list[tuple[int, Fp2Element]] = []
        for child_index, child in enumerate(node.children, start=1):
            value = self._decrypt_node(key, ciphertext, child)
            if value is not None:
                child_values.append((child_index, value))
            if len(child_values) == node.threshold_k:
                break
        if len(child_values) < node.threshold_k:
            return None
        index_set = [index for index, _ in child_values]
        result = self._params.ext_curve.field.one()
        for index, value in child_values:
            coefficient = lagrange_coefficient(index, index_set, 0, self._params.q)
            result = result * (value ** coefficient)
        return result
