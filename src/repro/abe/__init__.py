"""Key-policy attribute-based encryption (paper reference [6]).

The paper's related-work section says its design "adopts the solution
presented in [6] and applies a variation of it" — Goyal, Pandey, Sahai,
Waters (CCS 2006).  This package implements that KP-ABE scheme over the
library's own pairing group: ciphertexts are labelled with attribute
sets, private keys carry threshold access trees, and decryption succeeds
exactly when the tree accepts the label set.

It is the natural upgrade path from the paper's single-attribute
encryption: a utility company's key can express
``2-of-3(ELECTRIC-*, GAS-*, region)`` instead of one flat string.
"""

from repro.abe.access_tree import AccessTree, leaf, threshold
from repro.abe.kpabe import KpAbeAuthority, KpAbeCiphertext, KpAbePrivateKey

__all__ = [
    "AccessTree",
    "leaf",
    "threshold",
    "KpAbeAuthority",
    "KpAbePrivateKey",
    "KpAbeCiphertext",
]
