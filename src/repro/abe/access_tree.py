"""Threshold access trees for KP-ABE (Goyal et al. §4).

A tree node is either a leaf naming an attribute or a k-of-n threshold
gate over child subtrees (AND = n-of-n, OR = 1-of-n).  The tree both
*evaluates* over attribute sets (plain boolean logic) and *carries
secret shares*: keygen runs a random polynomial of degree k-1 through
each gate with the parent's share at x=0 and child shares at x=1..n,
and decryption recombines with Lagrange coefficients at 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ParameterError
from repro.mathlib.modular import inverse_mod
from repro.mathlib.rand import RandomSource

__all__ = ["AccessTree", "leaf", "threshold", "lagrange_coefficient"]


def lagrange_coefficient(i: int, index_set: list[int], x: int, q: int) -> int:
    """Lagrange basis polynomial Δ_{i,S}(x) mod q.

    ``i`` must be in ``index_set``; used with x=0 to recombine shares.
    """
    if i not in index_set:
        raise ParameterError(f"index {i} not in the interpolation set {index_set}")
    numerator, denominator = 1, 1
    for j in index_set:
        if j == i:
            continue
        numerator = numerator * ((x - j) % q) % q
        denominator = denominator * ((i - j) % q) % q
    return numerator * inverse_mod(denominator, q) % q


@dataclass
class AccessTree:
    """A node: leaf (``attribute`` set) or gate (``threshold_k`` of children)."""

    attribute: str | None = None
    threshold_k: int = 1
    children: list["AccessTree"] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.is_leaf():
            if self.children:
                raise ParameterError("a leaf node cannot have children")
        else:
            if not self.children:
                raise ParameterError("a gate node needs at least one child")
            if not 1 <= self.threshold_k <= len(self.children):
                raise ParameterError(
                    f"threshold {self.threshold_k} invalid for "
                    f"{len(self.children)} children"
                )

    def is_leaf(self) -> bool:
        """True when this node is an attribute leaf."""
        return self.attribute is not None

    # -- boolean evaluation -------------------------------------------------

    def satisfied_by(self, attributes: set[str]) -> bool:
        """Does the attribute set satisfy this (sub)tree?"""
        if self.is_leaf():
            return self.attribute in attributes
        satisfied = sum(
            1 for child in self.children if child.satisfied_by(attributes)
        )
        return satisfied >= self.threshold_k

    def leaves(self) -> list["AccessTree"]:
        """All leaf nodes, left to right."""
        if self.is_leaf():
            return [self]
        result = []
        for child in self.children:
            result.extend(child.leaves())
        return result

    def attributes(self) -> set[str]:
        """The set of attribute strings this tree references."""
        return {node.attribute for node in self.leaves()}

    # -- share distribution -----------------------------------------------------

    def distribute_shares(
        self, secret: int, q: int, rng: RandomSource
    ) -> dict[int, int]:
        """Run keygen's polynomial cascade; returns ``{id(leaf): share}``.

        Each gate draws a random degree-(k-1) polynomial with
        ``poly(0) = its share`` and hands ``poly(child_index)`` to each
        child (children indexed from 1).
        """
        shares: dict[int, int] = {}
        self._distribute(secret % q, q, rng, shares)
        return shares

    def _distribute(
        self, secret: int, q: int, rng: RandomSource, shares: dict[int, int]
    ) -> None:
        if self.is_leaf():
            shares[id(self)] = secret
            return
        # Random polynomial of degree k-1 with constant term = secret.
        coefficients = [secret] + [
            rng.randbelow(q) for _ in range(self.threshold_k - 1)
        ]
        for child_index, child in enumerate(self.children, start=1):
            value = 0
            for power, coefficient in enumerate(coefficients):
                value = (value + coefficient * pow(child_index, power, q)) % q
            child._distribute(value, q, rng, shares)

    def __repr__(self) -> str:
        if self.is_leaf():
            return f"leaf({self.attribute!r})"
        return f"threshold({self.threshold_k}, {self.children!r})"


def leaf(attribute: str) -> AccessTree:
    """A leaf node requiring ``attribute``."""
    return AccessTree(attribute=attribute)


def threshold(k: int, *children: AccessTree) -> AccessTree:
    """A k-of-n gate; ``threshold(len(c), *c)`` is AND, ``threshold(1, *c)`` OR."""
    return AccessTree(threshold_k=k, children=list(children))
