"""repro: end-to-end confidential message warehousing with IBE.

A full reproduction of "End-to-End Confidentiality for a Message
Warehousing Service Using Identity-Based Encryption" (Karabulut et al.,
ICDE Workshops 2010), including every substrate from the pairing math
up: Boneh–Franklin IBE over a from-scratch supersingular-curve pairing,
DES/AES, SHA/HMAC, an embedded storage engine, the four-party protocol
(smart device, MWS, PKG, receiving client), a certificate-PKI baseline
and a KP-ABE extension.

Quickstart::

    from repro import Deployment, DeploymentConfig

    deployment = Deployment.build(DeploymentConfig(preset="TEST80"))
    meter = deployment.new_smart_device("ELECTRIC-GLENBROOK-001")
    utility = deployment.new_receiving_client(
        "c-services", "s3cret", attributes=["ELECTRIC-GLENBROOK-SV-CA"]
    )
    meter.deposit(
        deployment.sd_channel(meter.device_id),
        "ELECTRIC-GLENBROOK-SV-CA",
        b"reading=42.7kWh",
    )
    messages = utility.retrieve_and_decrypt(
        deployment.rc_mws_channel(utility.rc_id),
        deployment.rc_pkg_channel(utility.rc_id),
    )
"""

from repro.core.deployment import Deployment, DeploymentConfig
from repro.core.protocol import ProtocolDriver, ProtocolTranscript
from repro.core.revocation import RevocationManager
from repro.errors import ReproError
from repro.ibe import (
    BasicIdent,
    FullIdent,
    hybrid_decrypt,
    hybrid_encrypt,
    setup,
)
from repro.pairing import BFParams, generate_params, get_preset

__version__ = "1.0.0"

__all__ = [
    "Deployment",
    "DeploymentConfig",
    "ProtocolDriver",
    "ProtocolTranscript",
    "RevocationManager",
    "ReproError",
    "setup",
    "BasicIdent",
    "FullIdent",
    "hybrid_encrypt",
    "hybrid_decrypt",
    "BFParams",
    "get_preset",
    "generate_params",
    "__version__",
]
