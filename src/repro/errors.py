"""Exception hierarchy for the ``repro`` library.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at an integration boundary.  Subsystems define
narrower subclasses below; protocol-level failures carry enough context to
distinguish an attack (tampering, replay) from an operational fault
(unknown identity, revoked access).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "MathError",
    "NotInvertibleError",
    "NoSquareRootError",
    "ParameterError",
    "CurveError",
    "PointNotOnCurveError",
    "PairingError",
    "CipherError",
    "InvalidKeySizeError",
    "InvalidBlockSizeError",
    "PaddingError",
    "EncodingError",
    "DecodeError",
    "StorageError",
    "CorruptRecordError",
    "DuplicateKeyError",
    "KeyNotFoundError",
    "ProtocolError",
    "AuthenticationError",
    "MacMismatchError",
    "ReplayError",
    "TicketError",
    "RevokedError",
    "UnknownIdentityError",
    "UnknownAttributeError",
    "DecryptionError",
    "PolicyError",
    "AccessDeniedError",
    "CiphertextFormatError",
    "NetworkError",
    "ChannelClosedError",
    "RequestDroppedError",
    "ResponseDroppedError",
    "RetriesExhaustedError",
    "SchedulerError",
    "SanitizerError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


# --------------------------------------------------------------------------
# Math / algebra substrate
# --------------------------------------------------------------------------


class MathError(ReproError):
    """Base class for number-theoretic failures."""


class NotInvertibleError(MathError):
    """An element had no multiplicative inverse (gcd with modulus != 1)."""


class NoSquareRootError(MathError):
    """Requested a square root of a quadratic non-residue."""


class ParameterError(MathError):
    """Cryptographic system parameters are malformed or inconsistent."""


# --------------------------------------------------------------------------
# Elliptic curve / pairing substrate
# --------------------------------------------------------------------------


class CurveError(ReproError):
    """Base class for elliptic-curve failures."""


class PointNotOnCurveError(CurveError):
    """A coordinate pair does not satisfy the curve equation."""


class PairingError(CurveError):
    """The pairing computation hit a degenerate input it cannot handle."""


# --------------------------------------------------------------------------
# Symmetric ciphers and encodings
# --------------------------------------------------------------------------


class CipherError(ReproError):
    """Base class for symmetric-cipher failures."""


class InvalidKeySizeError(CipherError):
    """Key length is not valid for the selected cipher."""


class InvalidBlockSizeError(CipherError):
    """Input is not a whole number of cipher blocks."""


class PaddingError(CipherError):
    """PKCS#7 (or similar) padding failed to validate on removal."""


class EncodingError(ReproError):
    """Base class for wire-format failures."""


class DecodeError(EncodingError):
    """A byte string could not be parsed as the expected structure."""


# --------------------------------------------------------------------------
# Storage substrate
# --------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for storage-engine failures."""


class CorruptRecordError(StorageError):
    """A stored record failed its checksum or structural validation."""


class DuplicateKeyError(StorageError):
    """Insert attempted with a primary key that already exists."""


class KeyNotFoundError(StorageError):
    """Lookup or delete referenced a key that does not exist."""


# --------------------------------------------------------------------------
# Protocol layer
# --------------------------------------------------------------------------


class ProtocolError(ReproError):
    """Base class for protocol violations between SD, MWS, PKG and RC."""


class AuthenticationError(ProtocolError):
    """A party failed to authenticate (bad password, bad authenticator)."""


class MacMismatchError(AuthenticationError):
    """A message MAC did not verify; the message is discarded (paper SDA)."""


class ReplayError(ProtocolError):
    """A timestamp or nonce indicates the message was replayed."""


class TicketError(ProtocolError):
    """A PKG ticket failed to decrypt or validate."""


class RevokedError(ProtocolError):
    """The acting identity's access to the attribute has been revoked."""


class UnknownIdentityError(ProtocolError):
    """The referenced identity is not registered."""


class UnknownAttributeError(ProtocolError):
    """The referenced attribute (or attribute id) is not registered."""


class DecryptionError(ProtocolError):
    """Ciphertext failed to decrypt or failed its integrity check."""


class CiphertextFormatError(DecryptionError):
    """A ciphertext container was structurally malformed."""


class PolicyError(ProtocolError):
    """A policy expression is malformed or cannot be evaluated."""


class AccessDeniedError(PolicyError):
    """Policy evaluation denied the requested access."""


# --------------------------------------------------------------------------
# Simulated network
# --------------------------------------------------------------------------


class NetworkError(ReproError):
    """Base class for simulated-transport failures."""


class ChannelClosedError(NetworkError):
    """Send or receive attempted on a closed channel."""


class RequestDroppedError(NetworkError):
    """The request was lost before reaching the destination handler.

    The operation definitely did **not** execute; a retry is always safe.
    """


class ResponseDroppedError(NetworkError):
    """The handler ran but its response was lost in transit.

    The operation **may have committed** server-side; retries must be
    idempotent (the SDA replays the cached response for a retransmitted
    deposit MAC instead of raising :class:`ReplayError`).
    """


class RetriesExhaustedError(NetworkError):
    """A retrying transport gave up after its attempt budget.

    Chained from the last underlying failure (``__cause__``).
    """


# --------------------------------------------------------------------------
# Deterministic scheduler
# --------------------------------------------------------------------------


class SchedulerError(ReproError):
    """The deterministic task scheduler hit an invalid state.

    Raised for misuse (spawning after shutdown, duplicate task names)
    and for runaway runs that exceed the step budget.
    """


class SanitizerError(ReproError):
    """The ownership sanitizer caught a cross-task access.

    Raised deterministically (same seed, same step) when a scheduler
    task touches shard state tagged to a different owner task; see
    :mod:`repro.sim.sanitizer`.
    """
