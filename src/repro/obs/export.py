"""Stable JSON export of a deployment's full observability state.

``build_dump`` assembles the registry snapshot, span forest and crypto
counters into one plain dict; ``dump_to_json`` renders it with sorted
keys and fixed separators so a same-seed run serialises to the *same
bytes* — the property the determinism tests assert and the reason the
dump is suitable for committed ``BENCH_*.json`` trajectories (diffs are
meaningful, not noise).

Anything wall-clock or host-specific (timestamps, hostnames, pids) is
deliberately absent.  Context that varies per run on purpose — preset
name, seed, workload shape — belongs in the ``meta`` argument supplied
by the caller.
"""

from __future__ import annotations

import json

__all__ = ["build_dump", "dump_to_json"]

#: Bumped when the dump layout changes shape (not when values change).
#: v2: the ``crypto`` section (and the mirrored ``crypto.*`` metric
#: counters) gained ``fp_inversions``, ``cube_roots`` and the four
#: ``cache.{h1,pairing}.{hit,miss}`` keys.
#: v3: sharded deployments add ``storage.shard.<i>.deposits`` counters,
#: ``storage.shard.<i>.messages`` gauges, ``storage.rebalance.moved``,
#: and the batch pipeline adds the ``mws.deposits.batch_size`` /
#: ``mws.mms.page_size`` histograms plus their companion counters.
#: v4: the shard-parallel worker runtime adds ``runtime.*`` counters and
#: histograms (``runtime.worker.<i>.jobs``/``.busy_steps`` per worker,
#: ``runtime.queue.depth``, ``runtime.retrieval.*``) and the fault plan
#: gains ``sim.faults.worker_crashes`` / ``sim.faults.worker_restarts``.
#: Strictly additive — v1..v3 consumers that ignore unknown keys keep
#: working (see docs/OBSERVABILITY.md §4).
#:
#: v5 adds the replicated-warehouse families (``replication.shard.<i>.*``
#: WAL-shipping/ack/failover counters, ``storage.wal.shard.<i>.*``
#: append/byte counters, ``runtime.failovers``) and the fault plan gains
#: ``sim.faults.leader_kills`` / ``sim.faults.follower_lags``.  Still
#: strictly additive.
#:
#: v6: the ``crypto`` section (and the mirrored ``crypto.*`` metric
#: counters) gains the base-field operation splits ``fp_muls``,
#: ``fp_sqrs`` and ``fp_adds`` — the machine-independent quantities the
#: op-count perf gates compare across field backends.  Strictly
#: additive; the pre-existing counters keep their cross-backend parity.
#:
#: v7: the deterministic ownership sanitizer (sim/sanitizer.py) exports
#: ``sim.sanitizer.checks`` / ``sim.sanitizer.violations`` /
#: ``sim.sanitizer.tagged`` when installed with a registry.  Strictly
#: additive — deployments that never install the sanitizer emit no
#: ``sim.sanitizer.*`` keys at all.
#:
#: v8: the key-lifecycle layer (policy/revocation.py) adds the
#: ``revocation.*`` family — ``revocations``, ``epoch_rolls``,
#: ``extract_denied``, ``deposits_rejected``, ``reencryptions``,
#: ``retrieval_filtered`` counters and the ``current_epoch`` gauge.
#: Strictly additive: every pre-v8 key keeps its name and meaning, and
#: deployments built without a revocation registry emit none of these.
DUMP_SCHEMA_VERSION = 8


def build_dump(registry, tracer=None, crypto=None, meta=None) -> dict:
    """One JSON-able dict for the whole deployment's observability state.

    ``crypto`` counters usually also arrive via a registry collector;
    passing them here as well gives the dump a dedicated ``crypto``
    section that is convenient to diff in isolation.
    """
    dump: dict = {
        "schema_version": DUMP_SCHEMA_VERSION,
        "meta": dict(meta) if meta else {},
        "metrics": registry.snapshot(),
    }
    if tracer is not None:
        dump["trace"] = tracer.to_dict()
    if crypto is not None:
        dump["crypto"] = crypto.as_dict()
    return dump


def dump_to_json(dump: dict, indent: int | None = None) -> str:
    """Canonical serialisation: sorted keys, fixed separators, trailing \\n."""
    if indent is None:
        text = json.dumps(dump, sort_keys=True, separators=(",", ":"))
    else:
        text = json.dumps(dump, sort_keys=True, indent=indent)
    return text + "\n"
