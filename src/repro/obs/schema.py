"""The obs dump metric-name catalogue.

Every metric name a deployment may mint — counters, gauges, histograms,
collector-contributed values — is declared here, either exactly
(:data:`KNOWN_METRICS`) or as a per-instance family prefix
(:data:`KNOWN_METRIC_PREFIXES`).  The ``OBS001`` lint rule statically
extracts metric names from registry factory calls and fails the build on
any name missing from this catalogue, so the canonical dump's key set
(docs/OBSERVABILITY.md) cannot grow or drift without a reviewed edit to
this file.
"""

from __future__ import annotations

__all__ = ["KNOWN_METRICS", "KNOWN_METRIC_PREFIXES", "is_known_metric"]

#: Exact metric names, grouped by owning component.
KNOWN_METRICS: frozenset[str] = frozenset({
    # -- smart-device authenticator (mws/authenticator.py) ----------------
    "mws.sda.accepted",
    "mws.sda.retransmits_replayed",
    "mws.sda.rejections.bad_mac",
    "mws.sda.rejections.replayed",
    "mws.sda.rejections.stale_timestamp",
    "mws.sda.rejections.unknown_device",
    "mws.sda.rejections.bad_signature",
    # -- other MWS components ---------------------------------------------
    "mws.deposits.malformed",
    "mws.gatekeeper.authenticated",
    "mws.gatekeeper.rejected",
    "mws.gatekeeper.assertion_auths",
    "mws.mms.retrievals",
    "mws.mms.messages_served",
    "mws.mms.policy_denials",
    "mws.mms.pages_served",
    "mws.mms.page_size",
    "mws.tg.tokens_issued",
    # -- batched deposit pipeline (mws/service.py) -------------------------
    "mws.deposits.batch_size",
    "mws.deposits.batch_items_rejected",
    # -- sharded message warehouse (storage/sharding.py) -------------------
    "storage.rebalance.moved",
    # -- private key generator (pkg/service.py) ---------------------------
    "pkg.sessions_established",
    "pkg.keys_extracted",
    "pkg.auth_failures",
    "pkg.extract_denials",
    # -- simulated network / fault plan -----------------------------------
    "sim.faults.drops",
    "sim.faults.duplicates",
    "sim.faults.corruptions",
    "sim.faults.delays",
    "sim.faults.partition_drops",
    "sim.faults.worker_crashes",
    "sim.faults.worker_restarts",
    "sim.faults.leader_kills",
    "sim.faults.follower_lags",
    "sim.sanitizer.checks",
    "sim.sanitizer.violations",
    "sim.sanitizer.tagged",
    "net.request_bytes",
    "net.response_bytes",
    "net.messages_sent",
    "net.bytes_sent",
    "net.handler_errors",
    # -- protocol driver histograms ---------------------------------------
    "protocol.deposit.duration_us",
    # -- shard-parallel worker runtime (mws/runtime.py, schema v4) ---------
    "runtime.jobs.completed",
    "runtime.jobs.requeued",
    "runtime.crashes",
    "runtime.restarts",
    "runtime.queue.depth",
    "runtime.steps",
    "runtime.retrieval.pages",
    "runtime.retrieval.retries",
    # -- replicated warehouse (storage/replication.py, schema v5) ----------
    "runtime.failovers",
    # -- key lifecycle / revocation (policy/revocation.py, schema v8) ------
    "revocation.revocations",
    "revocation.epoch_rolls",
    "revocation.extract_denied",
    "revocation.deposits_rejected",
    "revocation.reencryptions",
    "revocation.retrieval_filtered",
    "revocation.current_epoch",
})

#: Name families minted per instance (device id, endpoint name, crypto
#: counter group); a metric is catalogued if it starts with one of
#: these.  Keep prefixes as long as possible — a short prefix is a hole
#: in the gate.
KNOWN_METRIC_PREFIXES: tuple[str, ...] = (
    "client.rc.",        # per-RC stats + retrying transport
    "client.sd.",        # per-device stats + retrying transport
    "transport.",        # standalone RetryingTransport default name
    "net.endpoint.",     # per-endpoint network tallies (collector)
    "protocol.phase.",   # per-phase sim-time duration histograms
    "crypto.",           # crypto profiler collector (incl. crypto.cache.*
                         # and the schema-v6 crypto.fp_{muls,sqrs,adds}
                         # base-field op splits)
    "cache.",            # CryptoCache hit/miss counters
    "storage.shard.",    # per-shard deposit counters and message gauges
    "runtime.worker.",   # per-worker job counters and busy-step histograms
    "replication.shard.",  # per-shard WAL-shipping/ack/failover counters
    "storage.wal.",      # per-shard write-ahead-log append/byte counters
)


def is_known_metric(name: str) -> bool:
    """Whether ``name`` is declared by the catalogue."""
    return name in KNOWN_METRICS or any(
        name.startswith(prefix) for prefix in KNOWN_METRIC_PREFIXES
    )
