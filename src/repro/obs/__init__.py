"""Unified observability: metrics registry, protocol tracing, crypto profiling.

The paper's MWS is an operator-run service with an admin surface and an
alert feed (Fig. 3); this package gives the reproduction the matching
instrumentation layer:

* :mod:`repro.obs.registry` — a zero-dependency :class:`MetricsRegistry`
  with typed counters, gauges and SimClock-timed histograms whose output
  is seed-deterministic (fixed bucket boundaries, integer microseconds).
* :mod:`repro.obs.tracing` — a span tracer for the three Fig. 4 protocol
  phases with nested child spans (MAC verify, IBE encrypt/decrypt, token
  generation, key extraction) and fault/retry annotations.
* :mod:`repro.obs.crypto` — process-global profiling hooks fed by the
  pairing hot paths (Miller-loop iterations, F_p^2 mul/inv counts,
  pairing invocations), so "pairings per deposit" is an asserted
  invariant rather than folklore.
* :mod:`repro.obs.export` — one stable JSON-able dict (``obs dump``)
  combining all of the above; byte-identical across same-seed runs.

Everything is import-cycle-free with the crypto layers: nothing in this
package imports from :mod:`repro.pairing` or :mod:`repro.ibe`.
"""

from repro.obs.crypto import CryptoCounters, profiled
from repro.obs.export import build_dump, dump_to_json
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    StatsView,
)
from repro.obs.tracing import NULL_TRACER, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "StatsView",
    "Span",
    "Tracer",
    "NULL_TRACER",
    "CryptoCounters",
    "profiled",
    "build_dump",
    "dump_to_json",
]
