"""Profiling hooks for the pairing / IBE hot paths.

The inner loops (``Fp2Element.__mul__``, the Miller loop) run millions
of times per benchmark, so the hooks must cost almost nothing when
profiling is off.  The design: one process-global ``ACTIVE`` slot read
into a local at each hot-path entry; when it is ``None`` (the default)
the instrumented code pays a single ``is not None`` test.  When a
:class:`CryptoCounters` is installed, counts are bumped by plain
attribute adds on a ``__slots__`` object — no dict hashing, no locks
(the reproduction is single-threaded by design).

``Deployment.build()`` installs a fresh ``CryptoCounters`` and registers
it as a registry collector under ``crypto.*`` names; ``Deployment.close()``
uninstalls it if it is still the active one.  For scoped measurement in
tests use the :func:`profiled` context manager, which saves and restores
whatever was active around the block.

This module imports nothing from :mod:`repro` — the pairing layer
imports *it*, and any dependency in the other direction would be a
cycle.
"""

from __future__ import annotations

from contextlib import contextmanager

__all__ = ["CryptoCounters", "install", "uninstall", "active", "profiled"]


class CryptoCounters:
    """Operation counts from the pairing, field and IBE layers.

    Every field is an exact integer operation count, so tests can assert
    equalities like "FullIdent encrypt costs exactly one pairing" or
    "one Miller loop over TOY64 performs ``q.bit_length() - 1``
    doublings" — the crypto-cost invariants of ``tests/obs/``.
    """

    __slots__ = (
        "pairings",
        "miller_loops",
        "miller_doublings",
        "miller_additions",
        "fp2_mul",
        "fp2_sqr",
        "fp2_inv",
        "fp_muls",
        "fp_sqrs",
        "fp_adds",
        "fp_inversions",
        "cube_roots",
        "cache_h1_hit",
        "cache_h1_miss",
        "cache_pairing_hit",
        "cache_pairing_miss",
        "ibe_encrypts",
        "ibe_decrypts",
        "kem_encapsulations",
        "kem_decapsulations",
        "key_extractions",
    )

    #: Dump names that deviate from the slot name — the cache counters
    #: live under the dotted ``crypto.cache.{h1,pairing}.{hit,miss}``
    #: namespace expected by dashboards and the perf-gate tests.
    _EXPORT_NAMES = {
        "cache_h1_hit": "cache.h1.hit",
        "cache_h1_miss": "cache.h1.miss",
        "cache_pairing_hit": "cache.pairing.hit",
        "cache_pairing_miss": "cache.pairing.miss",
    }

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for field in self.__slots__:
            setattr(self, field, 0)

    def as_dict(self, prefix: str = "crypto.") -> dict[str, int]:
        return {
            prefix + self._EXPORT_NAMES.get(field, field): getattr(self, field)
            for field in self.__slots__
        }

    def __repr__(self) -> str:
        nonzero = {k: v for k, v in self.as_dict("").items() if v}
        return f"CryptoCounters({nonzero})"


#: The counters currently receiving hot-path increments, or None.
ACTIVE: CryptoCounters | None = None


def install(counters: CryptoCounters) -> None:
    """Make ``counters`` the process-wide profiling sink (last wins)."""
    global ACTIVE
    ACTIVE = counters


def uninstall(counters: CryptoCounters | None = None) -> None:
    """Clear the sink; with an argument, only if it is still the active one."""
    global ACTIVE
    if counters is None or ACTIVE is counters:
        ACTIVE = None


def active() -> CryptoCounters | None:
    return ACTIVE


@contextmanager
def profiled(counters: CryptoCounters | None = None):
    """Scope-install counters, restoring the previous sink on exit.

    >>> with profiled() as ops:
    ...     params.pair(p, q)
    >>> assert ops.pairings == 1
    """
    global ACTIVE
    if counters is None:
        counters = CryptoCounters()
    previous = ACTIVE
    ACTIVE = counters
    try:
        yield counters
    finally:
        ACTIVE = previous
