"""The metrics registry: typed counters, gauges and deterministic histograms.

One :class:`MetricsRegistry` is built per deployment and injected into
every component (SDA, TG, MMS, gatekeeper, PKG, network, fault plan,
clients), replacing the scattered per-component ``stats`` dicts.  The
old dict API is preserved by :class:`StatsView`, a mutable mapping whose
items are registry counters — ``stats["accepted"] += 1`` keeps working
in component code and tests while the value lands in the registry under
a stable dotted name.

Determinism: histograms use *fixed* bucket boundaries and integer
values (microseconds, bytes), and the timer reads a simulation clock,
so a same-seed run produces a byte-identical snapshot.  Nothing here
reads wall-clock time.

Naming convention: lowercase dotted paths, ``layer.component.metric``
(e.g. ``mws.sda.accepted``, ``net.endpoint.mws-sd.requests_served``).
Rejection-style counters that must aggregate live under a common
prefix (``mws.sda.rejections.*``) so a total derived with
:meth:`MetricsRegistry.sum_prefix` can never silently lose a renamed or
newly added reason.
"""

from __future__ import annotations

from collections.abc import MutableMapping
from contextlib import contextmanager
from typing import Callable, Iterable, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "StatsView",
    "MetricsRegistry",
    "DURATION_BOUNDS_US",
    "SIZE_BOUNDS_BYTES",
]

#: Fixed boundaries for duration histograms, in microseconds.  Spans the
#: SimClock tick (7 us) through fault delays (1-20 ms) and retry
#: backoffs (up to 2 s).
DURATION_BOUNDS_US: tuple[int, ...] = (
    10, 50, 100, 500,
    1_000, 5_000, 10_000, 50_000, 100_000, 500_000,
    1_000_000, 5_000_000, 10_000_000,
)

#: Fixed boundaries for message-size histograms, in bytes.
SIZE_BOUNDS_BYTES: tuple[int, ...] = (
    64, 128, 256, 512, 1_024, 2_048, 4_096, 8_192, 16_384, 65_536,
)


class Counter:
    """A monotonically used integer metric (resettable via :meth:`set`)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def set(self, value: int) -> None:
        self.value = int(value)

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time integer measurement (queue depth, cache size)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, value: int) -> None:
        self.value = int(value)

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Fixed-boundary histogram with deterministic percentile estimates.

    ``bounds`` are inclusive upper edges of the first ``len(bounds)``
    buckets; one overflow bucket catches everything beyond the last
    edge.  Because the boundaries are fixed at construction and the
    observed values are integers from deterministic sources (SimClock
    durations, payload sizes), the snapshot is identical across
    same-seed runs.

    Percentiles are estimated as the upper edge of the bucket containing
    the requested quantile, clamped to the exact observed min/max — a
    coarse but *stable* estimator (no interpolation on float division).
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Iterable[int] = DURATION_BOUNDS_US) -> None:
        self.name = name
        self.bounds = tuple(int(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(f"histogram bounds must be strictly increasing: {bounds}")
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0
        self.min: int | None = None
        self.max: int | None = None

    def observe(self, value: int) -> None:
        value = int(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    def percentile(self, fraction: float) -> int:
        """Deterministic estimate of the ``fraction`` quantile (0 < f <= 1)."""
        if self.count == 0:
            return 0
        # Rank of the target observation, 1-based, without float rounding
        # ambiguity: ceil(fraction * count) via integer math on ppm.
        ppm = int(fraction * 1_000_000)
        rank = max(1, -(-self.count * ppm // 1_000_000))
        cumulative = 0
        for index, bucket in enumerate(self.bucket_counts):
            cumulative += bucket
            if cumulative >= rank:
                if index < len(self.bounds):
                    edge = self.bounds[index]
                else:
                    edge = self.max if self.max is not None else 0
                low = self.min if self.min is not None else 0
                high = self.max if self.max is not None else edge
                return max(low, min(edge, high))
        return self.max if self.max is not None else 0

    def snapshot(self) -> dict:
        """A stable JSON-able rendering of the histogram state."""
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0,
            "max": self.max if self.max is not None else 0,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count})"


class StatsView(MutableMapping):
    """A dict-shaped facade over registry counters.

    Components keep their historical ``self.stats["key"] += 1`` idiom
    (and tests keep reading ``component.stats["key"]``) while every
    increment lands in a named registry counter.  Keys are fixed at
    construction; adding or deleting keys is an error — a counter that
    exists must stay discoverable by the aggregation layer.
    """

    __slots__ = ("_counters",)

    def __init__(self, counters: dict[str, Counter]) -> None:
        self._counters = counters

    def __getitem__(self, key: str) -> int:
        return self._counters[key].value

    def __setitem__(self, key: str, value: int) -> None:
        self._counters[key].set(value)

    def __delitem__(self, key: str) -> None:
        raise TypeError("registry-backed stats keys cannot be deleted")

    def __iter__(self) -> Iterator[str]:
        return iter(self._counters)

    def __len__(self) -> int:
        return len(self._counters)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (dict, StatsView)):
            return dict(self) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"StatsView({dict(self)!r})"


class MetricsRegistry:
    """The one place every metric in a deployment lives.

    Instruments are created on first use (``counter``/``gauge``/
    ``histogram`` are get-or-create); a name registered as one type
    cannot be re-registered as another.  ``collectors`` are pull-based
    callables contributing externally owned integer counters (the
    network's per-endpoint tallies, the crypto profiler) to the
    snapshot without putting attribute lookups on their hot paths.

    ``clock`` is any object with ``now_us()``; under a ``SimClock`` the
    :meth:`timer` histograms are fully deterministic.
    """

    def __init__(self, clock=None) -> None:
        self._clock = clock
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._collectors: list[Callable[[], dict[str, int]]] = []

    # -- instrument factories ---------------------------------------------

    def _check_free(self, name: str, kind: dict) -> None:
        for space in (self._counters, self._gauges, self._histograms):
            if space is not kind and name in space:
                raise ValueError(f"metric {name!r} already registered as another type")

    def counter(self, name: str) -> Counter:
        existing = self._counters.get(name)
        if existing is None:
            self._check_free(name, self._counters)
            existing = self._counters[name] = Counter(name)
        return existing

    def gauge(self, name: str) -> Gauge:
        existing = self._gauges.get(name)
        if existing is None:
            self._check_free(name, self._gauges)
            existing = self._gauges[name] = Gauge(name)
        return existing

    def histogram(
        self, name: str, bounds: Iterable[int] = DURATION_BOUNDS_US
    ) -> Histogram:
        existing = self._histograms.get(name)
        if existing is None:
            self._check_free(name, self._histograms)
            existing = self._histograms[name] = Histogram(name, bounds)
        return existing

    def stats_dict(
        self,
        prefix: str,
        keys: Iterable[str] = (),
        names: dict[str, str] | None = None,
    ) -> StatsView:
        """A :class:`StatsView` mapping each key to ``prefix.key``.

        ``names`` overrides the counter name for specific keys — how the
        SDA parks every rejection reason under ``mws.sda.rejections.*``
        while keeping the flat dict keys its callers already use.
        """
        names = names or {}
        counters: dict[str, Counter] = {}
        for key in keys:
            counters[key] = self.counter(names.get(key, f"{prefix}.{key}"))
        for key, full_name in names.items():
            if key not in counters:
                counters[key] = self.counter(full_name)
        return StatsView(counters)

    @contextmanager
    def timer(self, name: str, bounds: Iterable[int] = DURATION_BOUNDS_US):
        """Time a block on the registry clock into histogram ``name``."""
        if self._clock is None:
            raise ValueError("registry has no clock; pass one to time blocks")
        histogram = self.histogram(name, bounds)
        started = self._clock.now_us()
        try:
            yield histogram
        finally:
            histogram.observe(self._clock.now_us() - started)

    # -- aggregation -------------------------------------------------------

    def add_collector(self, collector: Callable[[], dict[str, int]]) -> None:
        """Register a pull-based contributor of ``name -> int`` counters."""
        self._collectors.append(collector)

    def sum_prefix(self, prefix: str) -> int:
        """Sum every owned counter whose name starts with ``prefix``.

        Totals derived this way survive counter renames and additions:
        anything parked under the prefix is counted, full stop.
        """
        return sum(
            counter.value
            for name, counter in self._counters.items()
            if name.startswith(prefix)
        )

    def counter_values(self) -> dict[str, int]:
        """All counters — owned and collected — as a sorted flat dict."""
        values = {name: counter.value for name, counter in self._counters.items()}
        for collector in self._collectors:
            values.update(collector())
        return dict(sorted(values.items()))

    def snapshot(self) -> dict:
        """The full registry state as a stable JSON-able dict."""
        return {
            "counters": self.counter_values(),
            "gauges": dict(
                sorted((name, g.value) for name, g in self._gauges.items())
            ),
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(self._histograms.items())
            },
        }
