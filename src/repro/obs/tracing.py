"""Span-based tracing for the three Fig. 4 protocol phases.

A :class:`Tracer` records a forest of :class:`Span` trees.  The whole
reproduction is single-threaded and synchronous — client call, network
hop, server handler — so a simple span *stack* captures parent/child
links exactly: whatever span is open when a child starts is its parent.
A phase span opened by :class:`~repro.core.protocol.ProtocolDriver`
therefore naturally contains the client-side crypto spans, which contain
the server-side MAC-verify / token-generation / key-extraction spans
reached through the in-process network.

Timestamps come from the deployment clock.  Under a ``SimClock`` they
are pure functions of the seed, so :meth:`Tracer.fingerprint` is
byte-identical across same-seed runs — the property the determinism
suite in ``tests/obs/`` locks down.

Annotations are small ``str -> int|str`` pairs attached to a span:
fault counts, retry counts, sizes, error class names.  Values must stay
JSON-able and deterministic (no object reprs with addresses).

``NULL_TRACER`` is a no-op stand-in so instrumented components built
without a deployment (unit tests, direct construction) pay one ``if``
per span and allocate nothing.
"""

from __future__ import annotations

import json
from contextlib import contextmanager

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


class Span:
    """One timed, annotated node in a trace tree."""

    __slots__ = ("name", "start_us", "end_us", "annotations", "children")

    def __init__(self, name: str, start_us: int) -> None:
        self.name = name
        self.start_us = start_us
        self.end_us: int | None = None
        self.annotations: dict[str, int | str] = {}
        self.children: list[Span] = []

    @property
    def duration_us(self) -> int:
        if self.end_us is None:
            return 0
        return self.end_us - self.start_us

    def annotate(self, key: str, value: int | str) -> None:
        self.annotations[key] = value

    def to_dict(self) -> dict:
        """Stable JSON-able rendering; annotation keys are sorted."""
        return {
            "name": self.name,
            "start_us": self.start_us,
            "end_us": self.end_us if self.end_us is not None else self.start_us,
            "duration_us": self.duration_us,
            "annotations": dict(sorted(self.annotations.items())),
            "children": [child.to_dict() for child in self.children],
        }

    def find(self, name: str) -> list["Span"]:
        """All descendant spans (including self) with the given name."""
        found = [self] if self.name == name else []
        for child in self.children:
            found.extend(child.find(name))
        return found

    def __repr__(self) -> str:
        return f"Span({self.name}, {self.duration_us}us, {len(self.children)} children)"


class Tracer:
    """Records span trees off a deployment clock.

    ``roots`` holds every finished top-level span in completion order.
    The open-span stack gives nesting for free in this single-threaded
    codebase; an exception propagating out of a ``span()`` block closes
    the span and annotates it with the exception class name, so retried
    operations show up as repeated sibling spans with ``error`` marks on
    the failed attempts.
    """

    def __init__(self, clock) -> None:
        self._clock = clock
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    @contextmanager
    def span(self, name: str):
        span = Span(name, self._clock.now_us())
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        try:
            yield span
        except BaseException as exc:
            span.annotate("error", type(exc).__name__)
            raise
        finally:
            self._stack.pop()
            span.end_us = self._clock.now_us()

    def current(self) -> Span | None:
        """The innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    def annotate(self, key: str, value: int | str) -> None:
        """Annotate the innermost open span; silently no-op outside one."""
        if self._stack:
            self._stack[-1].annotate(key, value)

    def to_dict(self) -> dict:
        return {"spans": [root.to_dict() for root in self.roots]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def fingerprint(self) -> str:
        """SHA-256 over the canonical JSON rendering of all span trees."""
        from repro.hashes import sha256

        return sha256(self.to_json().encode()).hex()

    def find(self, name: str) -> list[Span]:
        found = []
        for root in self.roots:
            found.extend(root.find(name))
        return found

    def reset(self) -> None:
        self.roots = []
        self._stack = []


class NullTracer:
    """Drop-in no-op tracer for components built without a deployment."""

    _SPAN = None  # one shared dead span, allocated lazily

    @contextmanager
    def span(self, name: str):
        if NullTracer._SPAN is None:
            NullTracer._SPAN = Span("null", 0)
        yield NullTracer._SPAN

    def current(self) -> None:
        return None

    def annotate(self, key: str, value: int | str) -> None:
        pass

    def to_dict(self) -> dict:
        return {"spans": []}

    def find(self, name: str) -> list[Span]:
        return []

    def reset(self) -> None:
        pass


NULL_TRACER = NullTracer()
