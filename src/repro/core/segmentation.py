"""Message segmentation (paper §VIII future work).

"Another future feature would be to divide a message into segments,
where each segment has a different attribute assigned. ... a message may
provide three parts ... total consumption in a day, error notifications
and events ... a case may arise where sharing of this information would
break confidentiality."

Each segment becomes its own deposit under its own attribute, so every
receiving class decrypts exactly its slice.  Segments of one logical
message share a group id and carry ``index``/``total`` headers inside
the encrypted envelope, letting an RC (a) reassemble the parts it is
entitled to and (b) *know* how many parts it cannot see — without
learning anything about their content.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clients.smart_device import SmartDevice
from repro.errors import DecodeError
from repro.sim.network import Channel
from repro.wire.encoding import Reader, Writer

__all__ = [
    "Segment",
    "SegmentedMessage",
    "segment_payload",
    "parse_segment_payload",
    "reassemble",
]


@dataclass
class Segment:
    """One attribute-scoped slice of a logical message."""

    attribute: str
    body: bytes


@dataclass
class SegmentedMessage:
    """A logical message split across attributes."""

    group_id: int
    segments: list[Segment]

    def deposit_all(self, device: SmartDevice, channel: Channel) -> list[int]:
        """Deposit every segment; returns the warehouse message ids."""
        ids = []
        total = len(self.segments)
        for index, segment in enumerate(self.segments):
            payload = segment_payload(self.group_id, index, total, segment.body)
            response = device.deposit(channel, segment.attribute, payload)
            ids.append(response.message_id)
        return ids


def segment_payload(group_id: int, index: int, total: int, body: bytes) -> bytes:
    """Envelope a segment body with its reassembly header (encrypted end
    to end together with the body)."""
    return (
        Writer()
        .u64(group_id)
        .u8(index)
        .u8(total)
        .blob(body)
        .getvalue()
    )


def parse_segment_payload(payload: bytes) -> tuple[int, int, int, bytes]:
    """Inverse of :func:`segment_payload`: ``(group_id, index, total, body)``."""
    reader = Reader(payload)
    group_id = reader.u64()
    index = reader.u8()
    total = reader.u8()
    body = reader.blob()
    reader.finish()
    if total == 0 or index >= total:
        raise DecodeError(f"invalid segment header index={index} total={total}")
    return group_id, index, total, body


def reassemble(plaintexts: list[bytes]) -> dict[int, dict]:
    """Group decrypted segment payloads by group id.

    Returns ``{group_id: {"total": n, "parts": {index: body}}}``; callers
    can see which indices are missing (segments their attributes do not
    cover).
    """
    groups: dict[int, dict] = {}
    for payload in plaintexts:
        group_id, index, total, body = parse_segment_payload(payload)
        entry = groups.setdefault(group_id, {"total": total, "parts": {}})
        if entry["total"] != total:
            raise DecodeError(
                f"segment group {group_id} has inconsistent totals "
                f"({entry['total']} vs {total})"
            )
        entry["parts"][index] = body
    return groups
