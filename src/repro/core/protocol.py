"""End-to-end protocol driver with per-phase transcripts.

Runs the paper's Fig. 4 interactions over a deployment and records what
crossed the wire and how long each phase took — the data behind the
FIG4 benchmark and the integration tests' assertions about *who saw
what* (e.g. the MWS never observed a plaintext).

Under a chaos plan the transcript additionally records, per phase, how
many faults the network injected, how many attempts the clients
retried, and how many operations recovered after at least one failure.
:meth:`ProtocolTranscript.fingerprint` hashes every deterministic field
(wall-clock durations excluded), which is what the chaos suite compares
across same-seed runs to prove bit-for-bit reproducibility.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.clients.receiving_client import ReceivingClient, RetrievedMessage
from repro.clients.smart_device import SmartDevice
from repro.clients.transport import RetryingTransport
from repro.core.deployment import Deployment
from repro.errors import ReproError

__all__ = ["PhaseTiming", "ProtocolTranscript", "ProtocolDriver"]


@dataclass
class PhaseTiming:
    """Wall-clock duration and message count of one protocol phase."""

    phase: str
    duration_s: float
    network_messages: int
    network_bytes: int
    #: Chaos bookkeeping: faults the network injected during the phase,
    #: retry attempts the acting client spent, and how many operations
    #: succeeded only after retrying (i.e. messages recovered).
    faults_injected: int = 0
    retries: int = 0
    recovered: int = 0


@dataclass
class ProtocolTranscript:
    """Everything a full protocol run produced."""

    timings: list[PhaseTiming] = field(default_factory=list)
    deposited_ids: list[int] = field(default_factory=list)
    retrieved: list[RetrievedMessage] = field(default_factory=list)

    def phase(self, name: str) -> PhaseTiming:
        for timing in self.timings:
            if timing.phase == name:
                return timing
        raise KeyError(f"no phase named {name!r} in transcript")

    def total_faults_injected(self) -> int:
        return sum(t.faults_injected for t in self.timings)

    def total_retries(self) -> int:
        return sum(t.retries for t in self.timings)

    def total_recovered(self) -> int:
        return sum(t.recovered for t in self.timings)

    def fingerprint(self) -> bytes:
        """SHA-256 over every deterministic field of the transcript.

        Durations are excluded (wall-clock noise); everything else —
        phase order, wire traffic counts, fault/retry tallies, message
        ids and recovered plaintexts — must replay identically for the
        same deployment seed and fault plan.
        """
        from repro.hashes import sha256
        from repro.wire.encoding import Writer

        writer = Writer()
        writer.u32(len(self.timings))
        for timing in self.timings:
            writer.text(timing.phase)
            writer.u64(timing.network_messages)
            writer.u64(timing.network_bytes)
            writer.u64(timing.faults_injected)
            writer.u64(timing.retries)
            writer.u64(timing.recovered)
        writer.u32(len(self.deposited_ids))
        for message_id in self.deposited_ids:
            writer.u64(message_id)
        writer.u32(len(self.retrieved))
        for message in self.retrieved:
            writer.u64(message.message_id)
            writer.u64(message.attribute_id)
            writer.blob(message.plaintext)
            writer.u64(message.deposited_at_us)
        return sha256(writer.getvalue())


class ProtocolDriver:
    """Convenience orchestration of the three §V.D phases."""

    def __init__(self, deployment: Deployment) -> None:
        self._deployment = deployment

    def _measure(
        self,
        transcript: ProtocolTranscript,
        phase: str,
        action,
        transport: RetryingTransport | None = None,
    ):
        deployment = self._deployment
        network = deployment.network
        plan = network.fault_plan
        messages_before = network.messages_sent
        bytes_before = network.bytes_sent
        faults_before = plan.total_injected() if plan is not None else 0
        retries_before = transport.stats["retries"] if transport else 0
        recovered_before = transport.stats["recovered"] if transport else 0
        started = time.perf_counter()
        # The phase span is the root of the trace tree: every client and
        # server span opened while the action runs nests underneath it.
        with deployment.tracer.span(f"phase.{phase}") as span:
            result = action()
        timing = PhaseTiming(
            phase=phase,
            duration_s=time.perf_counter() - started,
            network_messages=network.messages_sent - messages_before,
            network_bytes=network.bytes_sent - bytes_before,
            faults_injected=(
                plan.total_injected() - faults_before
                if plan is not None
                else 0
            ),
            retries=(
                transport.stats["retries"] - retries_before
                if transport
                else 0
            ),
            recovered=(
                transport.stats["recovered"] - recovered_before
                if transport
                else 0
            ),
        )
        span.annotate("network_messages", timing.network_messages)
        span.annotate("network_bytes", timing.network_bytes)
        span.annotate("faults_injected", timing.faults_injected)
        span.annotate("retries", timing.retries)
        span.annotate("recovered", timing.recovered)
        # Sim-time duration histogram: deterministic, unlike duration_s.
        deployment.registry.histogram(
            f"protocol.phase.{phase}.duration_us"
        ).observe(span.end_us - span.start_us)
        transcript.timings.append(timing)
        return result

    def run_deposits(
        self,
        device: SmartDevice,
        deposits: list[tuple[str, bytes]],
        transcript: ProtocolTranscript | None = None,
    ) -> ProtocolTranscript:
        """Phase 1 (SD–MWS) for a batch of ``(attribute, message)`` pairs."""
        transcript = transcript if transcript is not None else ProtocolTranscript()
        channel = self._deployment.sd_channel(device.device_id)

        registry = self._deployment.registry

        def action():
            ids = []
            for attribute, message in deposits:
                with registry.timer("protocol.deposit.duration_us"):
                    response = device.deposit(channel, attribute, message)
                ids.append(response.message_id)
            return ids

        transcript.deposited_ids.extend(
            self._measure(transcript, "SD-MWS", action, transport=device.transport)
        )
        return transcript

    def run_retrieval(
        self,
        client: ReceivingClient,
        transcript: ProtocolTranscript | None = None,
    ) -> ProtocolTranscript:
        """Phases 2 + 3 (MWS–RC then RC–PKG), measured separately."""
        transcript = transcript if transcript is not None else ProtocolTranscript()
        mws_channel = self._deployment.rc_mws_channel(client.rc_id)
        pkg_channel = self._deployment.rc_pkg_channel(client.rc_id)

        response = self._measure(
            transcript,
            "MWS-RC",
            lambda: client.retrieve(mws_channel),
            transport=client.transport,
        )

        def pkg_phase_once():
            token = client.open_token(response.token)
            results = []
            if response.messages:
                session_id = client.authenticate_to_pkg(pkg_channel, token)
                for message in response.messages:
                    private_point = client.fetch_key(
                        pkg_channel,
                        session_id,
                        token.session_key,
                        message.attribute_id,
                        message.nonce,
                    )
                    results.append(
                        RetrievedMessage(
                            message_id=message.message_id,
                            attribute_id=message.attribute_id,
                            plaintext=client.decrypt_message(message, private_point),
                            deposited_at_us=message.deposited_at_us,
                        )
                    )
            return results

        def pkg_phase():
            try:
                return pkg_phase_once()
            except ReproError:
                # A fault slipped past the per-call retries (e.g. the
                # retrieval response parsed but carried a corrupted
                # token or ciphertext).  With a retry policy the client
                # restarts the pipeline end-to-end; without one the
                # failure surfaces as before.
                if client.transport.policy is None:
                    raise
                return client.retrieve_and_decrypt(mws_channel, pkg_channel)

        transcript.retrieved.extend(
            self._measure(
                transcript, "RC-PKG", pkg_phase, transport=client.transport
            )
        )
        return transcript

    def run_full(
        self,
        device: SmartDevice,
        client: ReceivingClient,
        deposits: list[tuple[str, bytes]],
    ) -> ProtocolTranscript:
        """All three phases in sequence for one device/client pair."""
        transcript = ProtocolTranscript()
        self.run_deposits(device, deposits, transcript)
        self.run_retrieval(client, transcript)
        return transcript
