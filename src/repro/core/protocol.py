"""End-to-end protocol driver with per-phase transcripts.

Runs the paper's Fig. 4 interactions over a deployment and records what
crossed the wire and how long each phase took — the data behind the
FIG4 benchmark and the integration tests' assertions about *who saw
what* (e.g. the MWS never observed a plaintext).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.clients.receiving_client import ReceivingClient, RetrievedMessage
from repro.clients.smart_device import SmartDevice
from repro.core.deployment import Deployment

__all__ = ["PhaseTiming", "ProtocolTranscript", "ProtocolDriver"]


@dataclass
class PhaseTiming:
    """Wall-clock duration and message count of one protocol phase."""

    phase: str
    duration_s: float
    network_messages: int
    network_bytes: int


@dataclass
class ProtocolTranscript:
    """Everything a full protocol run produced."""

    timings: list[PhaseTiming] = field(default_factory=list)
    deposited_ids: list[int] = field(default_factory=list)
    retrieved: list[RetrievedMessage] = field(default_factory=list)

    def phase(self, name: str) -> PhaseTiming:
        for timing in self.timings:
            if timing.phase == name:
                return timing
        raise KeyError(f"no phase named {name!r} in transcript")


class ProtocolDriver:
    """Convenience orchestration of the three §V.D phases."""

    def __init__(self, deployment: Deployment) -> None:
        self._deployment = deployment

    def _measure(self, transcript: ProtocolTranscript, phase: str, action):
        network = self._deployment.network
        messages_before = network.messages_sent
        bytes_before = network.bytes_sent
        started = time.perf_counter()
        result = action()
        transcript.timings.append(
            PhaseTiming(
                phase=phase,
                duration_s=time.perf_counter() - started,
                network_messages=network.messages_sent - messages_before,
                network_bytes=network.bytes_sent - bytes_before,
            )
        )
        return result

    def run_deposits(
        self,
        device: SmartDevice,
        deposits: list[tuple[str, bytes]],
        transcript: ProtocolTranscript | None = None,
    ) -> ProtocolTranscript:
        """Phase 1 (SD–MWS) for a batch of ``(attribute, message)`` pairs."""
        transcript = transcript if transcript is not None else ProtocolTranscript()
        channel = self._deployment.sd_channel(device.device_id)

        def action():
            ids = []
            for attribute, message in deposits:
                response = device.deposit(channel, attribute, message)
                ids.append(response.message_id)
            return ids

        transcript.deposited_ids.extend(
            self._measure(transcript, "SD-MWS", action)
        )
        return transcript

    def run_retrieval(
        self,
        client: ReceivingClient,
        transcript: ProtocolTranscript | None = None,
    ) -> ProtocolTranscript:
        """Phases 2 + 3 (MWS–RC then RC–PKG), measured separately."""
        transcript = transcript if transcript is not None else ProtocolTranscript()
        mws_channel = self._deployment.rc_mws_channel(client.rc_id)
        pkg_channel = self._deployment.rc_pkg_channel(client.rc_id)

        response = self._measure(
            transcript, "MWS-RC", lambda: client.retrieve(mws_channel)
        )

        def pkg_phase():
            token = client.open_token(response.token)
            results = []
            if response.messages:
                session_id = client.authenticate_to_pkg(pkg_channel, token)
                for message in response.messages:
                    private_point = client.fetch_key(
                        pkg_channel,
                        session_id,
                        token.session_key,
                        message.attribute_id,
                        message.nonce,
                    )
                    results.append(
                        RetrievedMessage(
                            message_id=message.message_id,
                            attribute_id=message.attribute_id,
                            plaintext=client.decrypt_message(message, private_point),
                            deposited_at_us=message.deposited_at_us,
                        )
                    )
            return results

        transcript.retrieved.extend(
            self._measure(transcript, "RC-PKG", pkg_phase)
        )
        return transcript

    def run_full(
        self,
        device: SmartDevice,
        client: ReceivingClient,
        deposits: list[tuple[str, bytes]],
    ) -> ProtocolTranscript:
        """All three phases in sequence for one device/client pair."""
        transcript = ProtocolTranscript()
        self.run_deposits(device, deposits, transcript)
        self.run_retrieval(client, transcript)
        return transcript
