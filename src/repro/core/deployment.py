"""One-call construction of a complete deployment (the paper's Fig. 2/3).

``Deployment.build()`` stands up the PKG, the MWS (both servers), the
simulated network, and factories for smart devices and receiving
clients — the in-process equivalent of the prototype's "four servers
are required to be started up".

Everything is deterministic given ``seed``, which is what makes the
benchmark suite reproducible run to run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ibe import setup
from repro.ibe.cache import CryptoCache
from repro.ibe.keys import MasterKeyPair, PublicParams
from repro.clients.receiving_client import ReceivingClient
from repro.clients.smart_device import SmartDevice
from repro.clients.transport import RetryPolicy
from repro.core.conventions import SESSION_KEY_LENGTH
from repro.mathlib.rand import HmacDrbg, RandomSource
from repro.mws.reencrypt import ReencryptionEngine
from repro.mws.service import MessageWarehousingService, MwsConfig
from repro.obs import crypto as obs_crypto
from repro.policy.revocation import RevocationRegistry
from repro.obs.export import build_dump, dump_to_json
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.pki.rsa import RsaKeyPair, generate_rsa_keypair
from repro.pkg.service import PkgConfig, PrivateKeyGenerator
from repro.sim.clock import Clock, SimClock
from repro.sim.faults import FaultPlan, FaultSpec
from repro.sim.network import Channel, Network

__all__ = ["DeploymentConfig", "Deployment"]

#: Process-wide RSA keypair cache.  Deployment RSA keys are derived
#: deterministically from (seed, rc_id), so caching by that tuple is
#: semantically transparent and saves seconds of pure-Python keygen per
#: deployment in tests and benchmarks.
_RSA_KEYPAIR_CACHE: dict[tuple[bytes, str, int], RsaKeyPair] = {}

#: Endpoint names, mirroring the prototype's servers.
MWS_SD_ENDPOINT = "mws-sd"
MWS_SD_BATCH_ENDPOINT = "mws-sd-batch"
MWS_SD_MANY_ENDPOINT = "mws-sd-many"
MWS_CLIENT_ENDPOINT = "mws-client"
MWS_CLIENT_PAGE_ENDPOINT = "mws-client-page"
PKG_ENDPOINT = "pkg"


@dataclass
class DeploymentConfig:
    """Deployment-wide knobs with paper-faithful defaults."""

    #: Pairing parameter preset (see repro.pairing.params.PRESETS).
    preset: str = "TEST80"
    #: "tate" (default) or "weil" — DESIGN.md ablation 1.
    pairing_algorithm: str = "tate"
    #: Prime-field backend: None = the preset's default (montgomery),
    #: or "schoolbook"/"montgomery" explicitly — the A/B knob for the
    #: lazy-reduction lane (see repro.pairing.montgomery).
    field_backend: str | None = None
    #: Device-side message cipher (paper: DES).
    message_cipher: str = "DES"
    #: Gatekeeper auth-blob cipher (paper: DES).
    gatekeeper_cipher: str = "DES"
    #: RSA modulus bits for RC key pairs (small default: pure-Python math).
    rsa_bits: int = 1024
    #: Per-message nonces (True) vs static attribute keys — ablation 2.
    use_nonce: bool = True
    #: Route pairings through the projective fast path (bit-identical
    #: output; see docs/PERFORMANCE.md).  False forces the legacy affine
    #: Miller loop everywhere — the benchmark baseline.
    use_fast_pairing: bool = True
    #: Capacity of the shared identity-keyed CryptoCache (H1 points and
    #: G_T pairing values; see repro.ibe.cache).  0 disables caching
    #: entirely — every pairing and MapToPoint is recomputed.
    crypto_cache_size: int = 256
    #: Devices additionally sign deposits with identity-based signatures
    #: and the SDA verifies them (§VIII future work).
    use_device_signatures: bool = False
    #: Simulated one-way latency added per network message.
    latency_us: int = 0
    #: Chaos: fault probabilities applied to every link in both
    #: directions (a seeded FaultPlan is built from the deployment DRBG,
    #: so a chaos run replays exactly from ``seed``).  None = clean net.
    faults: FaultSpec | None = None
    #: Client resilience: retry policy handed to every smart device and
    #: receiving client the deployment constructs.  None = no retries.
    retry_policy: RetryPolicy | None = None
    #: Deterministic seed for every key, nonce and IV in the deployment.
    seed: bytes = b"repro-deployment"
    mws: MwsConfig = field(default_factory=MwsConfig)
    pkg: PkgConfig = field(default_factory=PkgConfig)


class Deployment:
    """A wired SD/MWS/PKG/RC world plus admin conveniences."""

    def __init__(
        self,
        config: DeploymentConfig,
        clock: Clock,
        network: Network,
        master: MasterKeyPair,
        mws: MessageWarehousingService,
        pkg: PrivateKeyGenerator,
        rng: HmacDrbg,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        crypto_counters: obs_crypto.CryptoCounters | None = None,
    ) -> None:
        self.config = config
        self.clock = clock
        self.network = network
        self.master = master
        self.mws = mws
        self.pkg = pkg
        self._rng = rng
        #: Deployment-wide observability: one registry and one tracer
        #: shared by every component (see repro.obs).
        self.registry = registry if registry is not None else MetricsRegistry(clock)
        self.tracer = tracer if tracer is not None else Tracer(clock)
        self.crypto_counters = crypto_counters

    # -- construction ----------------------------------------------------

    @classmethod
    def build(
        cls,
        config: DeploymentConfig | None = None,
        clock: Clock | None = None,
    ) -> "Deployment":
        """Stand up PKG + MWS + network from a config."""
        config = config if config is not None else DeploymentConfig()
        # tick_us=7 keeps every timestamp distinct, so replay caches keyed
        # on timestamps never collide for honest traffic.
        clock = clock if clock is not None else SimClock(tick_us=7)
        rng = HmacDrbg(config.seed)
        registry = MetricsRegistry(clock)
        tracer = Tracer(clock)
        # Process-global crypto profiler (last built deployment wins);
        # exported through the registry so pairing counts land in the
        # same snapshot as everything else.
        crypto_counters = obs_crypto.CryptoCounters()
        obs_crypto.install(crypto_counters)
        registry.add_collector(crypto_counters.as_dict)
        master = setup(
            config.preset,
            rng=rng.fork(b"master"),
            pairing_algorithm=config.pairing_algorithm,
            field_backend=config.field_backend,
        )
        master.public.params.use_fast_path = config.use_fast_pairing
        if config.crypto_cache_size > 0:
            # One cache for the whole deployment: every component shares
            # master.public, and cached values are public material.
            master.public.cache = CryptoCache(config.crypto_cache_size)
        mws_pkg_key = rng.fork(b"mws-pkg").randbytes(SESSION_KEY_LENGTH)
        # One revocation registry shared by the MWS and the PKG: a
        # revocation or epoch roll publishes one atomic view that every
        # component reads, so it bites everywhere in the same step.
        revocation = RevocationRegistry(registry)
        mws_config = config.mws
        mws_config.gatekeeper_cipher = config.gatekeeper_cipher
        mws_config.revocation = revocation
        config.pkg.revocation = revocation
        if config.use_device_signatures:
            from repro.ibe.signatures import IbeVerifier

            mws_config.device_signature_verifier = IbeVerifier(master.public)
            mws_config.require_device_signature = True
        mws = MessageWarehousingService(
            mws_pkg_key,
            clock=clock,
            rng=rng.fork(b"mws"),
            config=mws_config,
            registry=registry,
            tracer=tracer,
        )
        pkg = PrivateKeyGenerator(
            master,
            mws_pkg_key,
            clock=clock,
            rng=rng.fork(b"pkg"),
            config=config.pkg,
            registry=registry,
            tracer=tracer,
        )
        # The warehouse re-keys stored ciphertexts with *public*
        # material only — requirement i survives the lifecycle layer.
        mws.attach_reencryptor(
            ReencryptionEngine(
                master.public,
                mws.message_db,
                revocation,
                rng=rng.fork(b"reencrypt"),
            )
        )
        network = Network(
            clock=clock, latency_us=config.latency_us, registry=registry
        )
        network.register(MWS_SD_ENDPOINT, mws.deposit_handler)
        network.register(MWS_SD_BATCH_ENDPOINT, mws.batch_deposit_handler)
        network.register(MWS_SD_MANY_ENDPOINT, mws.deposit_many_handler)
        network.register(MWS_CLIENT_ENDPOINT, mws.retrieve_handler)
        network.register(MWS_CLIENT_PAGE_ENDPOINT, mws.retrieve_page_handler)
        network.register(PKG_ENDPOINT, pkg.handler)
        if config.faults is not None:
            network.install_fault_plan(
                FaultPlan(
                    rng.fork(b"faults"), default=config.faults, registry=registry
                )
            )
        return cls(
            config,
            clock,
            network,
            master,
            mws,
            pkg,
            rng,
            registry=registry,
            tracer=tracer,
            crypto_counters=crypto_counters,
        )

    # -- party factories -----------------------------------------------------

    @property
    def public_params(self) -> PublicParams:
        return self.master.public

    @property
    def crypto_cache(self) -> CryptoCache | None:
        """The shared identity-keyed cache (None when disabled by config)."""
        return self.master.public.cache

    @property
    def fault_plan(self) -> FaultPlan | None:
        """The seeded chaos plan, when the config asked for one."""
        return self.network.fault_plan

    # -- key lifecycle ----------------------------------------------------

    @property
    def revocation(self) -> RevocationRegistry:
        """The registry shared by the MWS and the PKG."""
        return self.mws.revocation

    @property
    def reencryptor(self) -> ReencryptionEngine:
        """The warehouse's lazy re-encryption engine."""
        return self.mws.reencryptor

    def roll_epoch(self) -> int:
        """Advance the key epoch everywhere; returns the new epoch.

        Publishes the roll to the revocation view (MWS admission, MMS
        filtering, PKG extraction bounds) and to the shared public
        parameters (devices stamp new deposits; the crypto cache sees a
        fingerprint change and drops every pre-roll entry).
        """
        epoch = self.revocation.roll_epoch()
        self.master.public.current_epoch = epoch
        return epoch

    def revoke_rc(self, rc_id: str, attribute: str | None = None,
                  roll: bool = True):
        """Revoke an RC (optionally one attribute), rolling by default.

        Returns the recorded :class:`RevocationEntry`.  With
        ``roll=False`` the entry waits for a later :meth:`roll_epoch`,
        letting several revocations share one roll.
        """
        entry = self.revocation.revoke(rc_id, attribute, roll=roll)
        self.master.public.current_epoch = self.revocation.current_epoch
        return entry

    def new_smart_device(self, device_id: str) -> SmartDevice:
        """Register a device with the MWS and hand back the client object.

        With ``use_device_signatures`` the PKG additionally extracts the
        device's identity-based signing key at registration (the paper's
        "initial interaction between the PKG and SD ... during the
        registration of the device").
        """
        shared_key = self.mws.register_device(device_id)
        signer = None
        if self.config.use_device_signatures:
            from repro.ibe.signatures import IbeSigner, extract_signing_key

            signing_key = extract_signing_key(self.master, device_id.encode())
            signer = IbeSigner(
                self.public_params,
                device_id.encode(),
                signing_key,
                rng=self._rng.fork(b"sig:" + device_id.encode()),
            )
        return SmartDevice(
            device_id,
            self.public_params,
            shared_key,
            clock=self.clock,
            rng=self._rng.fork(b"sd:" + device_id.encode()),
            cipher_name=self.config.message_cipher,
            use_nonce=self.config.use_nonce,
            signer=signer,
            retry_policy=self.config.retry_policy,
            registry=self.registry,
            tracer=self.tracer,
        )

    def new_receiving_client(
        self,
        rc_id: str,
        password: str,
        attributes: list[str] | None = None,
    ) -> ReceivingClient:
        """Register an RC, grant its attributes, return the client object.

        RSA key generation dominates setup cost, so key pairs are cached
        per rc_id for repeated builds in benchmarks.
        """
        self.mws.register_rc(rc_id, password)
        for attribute in attributes or []:
            self.mws.grant(rc_id, attribute)
        cache_key = (self.config.seed, rc_id, self.config.rsa_bits)
        keypair = _RSA_KEYPAIR_CACHE.get(cache_key)
        if keypair is None:
            keypair = generate_rsa_keypair(
                self.config.rsa_bits, rng=self._rng.fork(b"rsa:" + rc_id.encode())
            )
            _RSA_KEYPAIR_CACHE[cache_key] = keypair
        return ReceivingClient(
            rc_id,
            password,
            self.public_params,
            keypair,
            clock=self.clock,
            rng=self._rng.fork(b"rc:" + rc_id.encode()),
            gatekeeper_cipher=self.config.gatekeeper_cipher,
            session_cipher=self.config.pkg.session_cipher,
            retry_policy=self.config.retry_policy,
            registry=self.registry,
            tracer=self.tracer,
        )

    # -- channels ---------------------------------------------------------------

    def sd_channel(self, device_id: str) -> Channel:
        return self.network.channel(device_id, MWS_SD_ENDPOINT)

    def sd_batch_channel(self, device_id: str) -> Channel:
        return self.network.channel(device_id, MWS_SD_BATCH_ENDPOINT)

    def sd_many_channel(self, device_id: str) -> Channel:
        """Channel to the per-item batch pipeline endpoint."""
        return self.network.channel(device_id, MWS_SD_MANY_ENDPOINT)

    def rc_mws_channel(self, rc_id: str) -> Channel:
        return self.network.channel(rc_id, MWS_CLIENT_ENDPOINT)

    def rc_page_channel(self, rc_id: str) -> Channel:
        """Channel to the paged retrieval endpoint."""
        return self.network.channel(rc_id, MWS_CLIENT_PAGE_ENDPOINT)

    def rc_pkg_channel(self, rc_id: str) -> Channel:
        return self.network.channel(rc_id, PKG_ENDPOINT)

    # -- observability ----------------------------------------------------------

    def obs_dump(self, meta: dict | None = None) -> dict:
        """The full observability state (metrics + trace + crypto counts).

        Byte-identical across same-seed runs when serialised with
        :func:`repro.obs.export.dump_to_json`.
        """
        info = {
            "preset": self.config.preset,
            "pairing_algorithm": self.config.pairing_algorithm,
            "seed": self.config.seed.hex(),
        }
        if meta:
            info.update(meta)
        return build_dump(
            self.registry,
            tracer=self.tracer,
            crypto=self.crypto_counters,
            meta=info,
        )

    def obs_dump_json(self, meta: dict | None = None, indent: int | None = None) -> str:
        return dump_to_json(self.obs_dump(meta), indent=indent)

    def close(self) -> None:
        """Release underlying resources."""
        self.mws.close()
        obs_crypto.uninstall(self.crypto_counters)
