"""Protocol conventions shared by devices, the MWS, the PKG and RCs.

The paper's security hinges on both ends computing identical byte
strings (the IBE identity ``A || Nonce``, the MAC payload, the
password-derived key).  Centralising the canonical encodings here means
a device and the PKG cannot drift apart, and tests can target the
conventions directly.
"""

from __future__ import annotations

from repro.hashes.hmac import Hmac
from repro.hashes.kdf import kdf2
from repro.symciph.cipher import CIPHER_REGISTRY
from repro.wire.encoding import Writer

__all__ = [
    "identity_string",
    "derive_password_key",
    "compute_deposit_mac",
    "MAC_ALGORITHM",
    "MAC_LENGTH",
    "NONCE_LENGTH",
    "SESSION_KEY_LENGTH",
]

#: HMAC algorithm for smart-device MACs (the paper's H_K).
MAC_ALGORITHM = "sha256"
MAC_LENGTH = 32
#: Per-message nonce length (the revocation nonce of §V.B).
NONCE_LENGTH = 16
#: RC <-> PKG session key length.
SESSION_KEY_LENGTH = 32
#: Tag byte framing the optional epoch suffix of an identity string.
#: Chosen outside the range a length-prefixed field could open with in
#: practice purely for legibility in hexdumps; uniqueness comes from the
#: framing (the suffix only ever follows a complete ``A || Nonce``).
_EPOCH_TAG = 0x45  # 'E'


def identity_string(attribute: str, nonce: bytes, epoch: int = 0) -> bytes:
    """The IBE identity ``A || Nonce [|| Epoch]`` with unambiguous framing.

    This is the string both the SD (at encryption time) and the PKG (at
    extraction time) hash to a curve point: ``I = H1(A || Nonce)``.
    An empty nonce is the "static keys" ablation mode (DESIGN.md §6.2).

    ``epoch`` scopes the identity to one key-lifecycle epoch
    (docs/REVOCATION.md): epoch 0 produces the exact pre-epoch byte
    string, so every identity derived before the lifecycle existed is an
    epoch-0 identity by construction — old ciphertexts and extracted
    keys keep working unchanged.  A non-zero epoch appends a tagged
    suffix, so identities from different epochs can never collide with
    each other or with the legacy encoding (the string is only ever
    hashed, never parsed).
    """
    writer = Writer().text(attribute).blob(nonce)
    if epoch:
        writer.u8(_EPOCH_TAG).u32(epoch)
    return writer.getvalue()


def derive_password_key(password_hash: bytes, cipher_name: str) -> bytes:
    """Turn the stored ``HashPassword`` into a key for ``cipher_name``.

    The paper uses the hash directly as a DES key; our ciphers have
    different key sizes, so a KDF bridges them deterministically.
    """
    key_size = CIPHER_REGISTRY[cipher_name].key_size
    return kdf2(b"repro-gatekeeper-key" + password_hash, key_size)


def compute_deposit_mac(shared_key: bytes, mac_payload: bytes) -> bytes:
    """``MAC = H_K(rP || C || (A || Nonce) || ID_SD || T)`` per §V.D."""
    return Hmac(shared_key, MAC_ALGORITHM, mac_payload).digest()
