"""Protocol conventions shared by devices, the MWS, the PKG and RCs.

The paper's security hinges on both ends computing identical byte
strings (the IBE identity ``A || Nonce``, the MAC payload, the
password-derived key).  Centralising the canonical encodings here means
a device and the PKG cannot drift apart, and tests can target the
conventions directly.
"""

from __future__ import annotations

from repro.hashes.hmac import Hmac
from repro.hashes.kdf import kdf2
from repro.symciph.cipher import CIPHER_REGISTRY
from repro.wire.encoding import Writer

__all__ = [
    "identity_string",
    "derive_password_key",
    "compute_deposit_mac",
    "MAC_ALGORITHM",
    "MAC_LENGTH",
    "NONCE_LENGTH",
    "SESSION_KEY_LENGTH",
]

#: HMAC algorithm for smart-device MACs (the paper's H_K).
MAC_ALGORITHM = "sha256"
MAC_LENGTH = 32
#: Per-message nonce length (the revocation nonce of §V.B).
NONCE_LENGTH = 16
#: RC <-> PKG session key length.
SESSION_KEY_LENGTH = 32


def identity_string(attribute: str, nonce: bytes) -> bytes:
    """The IBE identity ``A || Nonce`` with unambiguous framing.

    This is the string both the SD (at encryption time) and the PKG (at
    extraction time) hash to a curve point: ``I = H1(A || Nonce)``.
    An empty nonce is the "static keys" ablation mode (DESIGN.md §6.2).
    """
    return Writer().text(attribute).blob(nonce).getvalue()


def derive_password_key(password_hash: bytes, cipher_name: str) -> bytes:
    """Turn the stored ``HashPassword`` into a key for ``cipher_name``.

    The paper uses the hash directly as a DES key; our ciphers have
    different key sizes, so a KDF bridges them deterministically.
    """
    key_size = CIPHER_REGISTRY[cipher_name].key_size
    return kdf2(b"repro-gatekeeper-key" + password_hash, key_size)


def compute_deposit_mac(shared_key: bytes, mac_payload: bytes) -> bytes:
    """``MAC = H_K(rP || C || (A || Nonce) || ID_SD || T)`` per §V.D."""
    return Hmac(shared_key, MAC_ALGORITHM, mac_payload).digest()
