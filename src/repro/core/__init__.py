"""The paper's primary contribution wired end to end.

:class:`Deployment` builds the whole world (PKG + MWS + network);
:class:`ProtocolDriver` runs the three Fig. 4 phases with transcripts;
:class:`RevocationManager` implements requirement iii; the segmentation
helpers implement the §VIII future-work feature.
"""

from repro.core.conventions import (
    compute_deposit_mac,
    derive_password_key,
    identity_string,
)
from repro.core.deployment import Deployment, DeploymentConfig
from repro.core.protocol import PhaseTiming, ProtocolDriver, ProtocolTranscript
from repro.core.revocation import RevocationEvent, RevocationManager
from repro.core.segmentation import (
    Segment,
    SegmentedMessage,
    parse_segment_payload,
    reassemble,
    segment_payload,
)

__all__ = [
    "Deployment",
    "DeploymentConfig",
    "ProtocolDriver",
    "ProtocolTranscript",
    "PhaseTiming",
    "RevocationManager",
    "RevocationEvent",
    "Segment",
    "SegmentedMessage",
    "segment_payload",
    "parse_segment_payload",
    "reassemble",
    "identity_string",
    "derive_password_key",
    "compute_deposit_mac",
]
