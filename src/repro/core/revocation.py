"""Revocation management (paper requirement iii).

"When access to a message for a receiving client is revoked ... the
affected client should not be able to access future messages sent by
that particular smart device."

Mechanics in this system:

* the Policy DB row is removed, so the MWS stops listing the attribute
  in the RC's tickets immediately;
* because every message carries a fresh nonce and the IBE identity is
  ``H1(A || nonce)``, private keys the RC extracted *before* revocation
  open only the messages they were extracted for — it cannot decrypt any
  future message even if it obtains the ciphertexts out of band;
* smart devices are untouched (they never knew the RC existed).

The manager wraps the policy operations with an audit trail and exposes
:meth:`effective_exposure`, which tests use to prove exactly which
messages a revoked client can still read (its historical extractions),
and the static-mode contrast for DESIGN.md ablation 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.deployment import Deployment

__all__ = ["RevocationEvent", "RevocationManager"]


@dataclass
class RevocationEvent:
    """Audit record of one revocation."""

    rc_id: str
    attribute: str
    at_us: int


class RevocationManager:
    """Policy-level revocation with an audit trail."""

    def __init__(self, deployment: Deployment) -> None:
        self._deployment = deployment
        self.events: list[RevocationEvent] = []

    def revoke(self, rc_id: str, attribute: str) -> RevocationEvent:
        """Remove the grant; effective for all subsequent retrievals."""
        self._deployment.mws.revoke(rc_id, attribute)
        event = RevocationEvent(
            rc_id=rc_id,
            attribute=attribute,
            at_us=self._deployment.clock.now_us(),
        )
        self.events.append(event)
        return event

    def revoke_all(self, rc_id: str) -> list[RevocationEvent]:
        """Drop every grant for ``rc_id`` (the paper's C-Services example:
        the retailer discontinues service for the apartment complex)."""
        policy_db = self._deployment.mws.policy_db
        attributes = list(policy_db.attributes_for(rc_id).values())
        return [self.revoke(rc_id, attribute) for attribute in attributes]

    def reinstate(self, rc_id: str, attribute: str) -> int:
        """Re-grant after revocation (dynamic recipients, requirement v).

        Returns the *new* attribute id — a fresh opaque AID, so the RC
        cannot link it to its pre-revocation grant.
        """
        return self._deployment.mws.grant(rc_id, attribute)

    def effective_exposure(self, rc_id: str) -> set[tuple[str, str]]:
        """``(attribute, nonce_hex)`` pairs the RC has extracted keys for.

        After revocation this set is frozen: it is precisely the set of
        messages the RC can ever decrypt again, the guarantee the
        EXT-C bench and the revocation tests assert.
        """
        return {
            (attribute, nonce_hex)
            for (logged_rc, attribute, nonce_hex, _at) in self._deployment.pkg.audit_log
            if logged_rc == rc_id
        }
