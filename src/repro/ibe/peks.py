"""Public-key Encryption with Keyword Search (paper reference [1]).

The paper's related work cites Waters/Balfanz/Durfee/Smetters' encrypted
searchable audit log, which builds on Boneh–Di Crescenzo–Ostrovsky–
Persiano PEKS — itself constructed from exactly the BF-IBE machinery
this library implements.  PEKS closes a real gap in the warehousing
service: an RC can ask the MWS for "messages about OUTAGE" without the
MWS ever learning which deposits mention outages or what the RC is
searching for beyond the trapdoor it was handed.

Construction over the symmetric pairing (generator P, receiver secret
``x``, public key ``X = xP``):

* Tag(W):      r random; ``tag = (rP, H2(e(H1(W), X)^r))``
* Trapdoor(W): ``T_W = x * H1(W)``
* Test:        ``H2(e(T_W, rP)) == tag.check``

In the warehousing deployment the *attribute authority* plays the
receiver: the PKG derives per-attribute search keys, the Token carries
trapdoors to authorised RCs, and the MWS runs Test over stored tags.
This module provides the primitive plus a small searchable index.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DecodeError
from repro.hashes.hmac import constant_time_equal
from repro.ibe.keys import _decode_blob, _encode_blob
from repro.mathlib.rand import RandomSource, SystemRandomSource
from repro.pairing.curve import Point
from repro.pairing.hashing import gt_to_bytes, hash_to_point, mask_bytes
from repro.pairing.params import BFParams

__all__ = ["PeksTag", "PeksTrapdoor", "PeksScheme", "SearchableIndex"]

_KEYWORD_NAMESPACE = b"repro-peks-v1:"
_CHECK_DOMAIN = b"repro-peks-check"
_CHECK_LENGTH = 20


@dataclass
class PeksTag:
    """A searchable tag: reveals nothing about its keyword without the
    matching trapdoor."""

    point: Point  # rP
    check: bytes  # H2(e(H1(W), X)^r)

    def to_bytes(self) -> bytes:
        """Serialise to the canonical byte encoding."""
        return _encode_blob(self.point.to_bytes()) + _encode_blob(self.check)

    @classmethod
    def from_bytes(cls, data: bytes, params: BFParams) -> "PeksTag":
        """Parse an instance from its canonical byte encoding."""
        point_bytes, data = _decode_blob(data)
        check, data = _decode_blob(data)
        if data:
            raise DecodeError(f"{len(data)} trailing bytes after PeksTag")
        return cls(point=params.curve.from_bytes(point_bytes), check=check)


@dataclass
class PeksTrapdoor:
    """``x * H1(W)`` — lets the holder *test* for W, not learn others."""

    point: Point

    def to_bytes(self) -> bytes:
        """Serialise to the canonical byte encoding."""
        return _encode_blob(self.point.to_bytes())

    @classmethod
    def from_bytes(cls, data: bytes, params: BFParams) -> "PeksTrapdoor":
        """Parse an instance from its canonical byte encoding."""
        point_bytes, data = _decode_blob(data)
        if data:
            raise DecodeError(f"{len(data)} trailing bytes after PeksTrapdoor")
        return cls(point=params.curve.from_bytes(point_bytes))


class PeksScheme:
    """Tag generation (public), trapdoor derivation (secret), testing.

    The secret holder constructs with ``secret``; taggers construct with
    ``public_point`` only.
    """

    def __init__(
        self,
        params: BFParams,
        secret: int | None = None,
        public_point: Point | None = None,
        rng: RandomSource | None = None,
    ) -> None:
        if secret is None and public_point is None:
            raise DecodeError("PeksScheme needs a secret or a public point")
        self._params = params
        self._secret = secret
        self.public_point = (
            public_point if public_point is not None else secret * params.generator
        )
        self._rng = rng if rng is not None else SystemRandomSource()

    @classmethod
    def generate(cls, params: BFParams, rng: RandomSource | None = None) -> "PeksScheme":
        rng = rng if rng is not None else SystemRandomSource()
        return cls(params, secret=params.random_scalar(rng), rng=rng)

    def _keyword_point(self, keyword: str) -> Point:
        normalised = keyword.strip().lower().encode("utf-8")
        return hash_to_point(self._params, _KEYWORD_NAMESPACE + normalised)

    # -- public side ------------------------------------------------------

    def tag(self, keyword: str) -> PeksTag:
        """Produce a searchable tag for ``keyword`` (public-key side)."""
        r = self._params.random_scalar(self._rng)
        shared = self._params.pair(self._keyword_point(keyword), self.public_point) ** r
        return PeksTag(
            point=r * self._params.generator,
            check=mask_bytes(gt_to_bytes(shared), _CHECK_LENGTH, _CHECK_DOMAIN),
        )

    def tag_all(self, keywords: list[str]) -> list[PeksTag]:
        """Tags for several keywords (order randomised tags anyway by r)."""
        return [self.tag(keyword) for keyword in keywords]

    # -- secret side --------------------------------------------------------

    def trapdoor(self, keyword: str) -> PeksTrapdoor:
        """Derive the trapdoor for ``keyword`` (requires the secret)."""
        if self._secret is None:
            raise DecodeError("trapdoor derivation requires the PEKS secret")
        return PeksTrapdoor(point=self._secret * self._keyword_point(keyword))

    # -- server side ----------------------------------------------------------

    def test(self, trapdoor: PeksTrapdoor, tag: PeksTag) -> bool:
        """True iff ``tag`` was produced for the trapdoor's keyword.

        Needs no secrets: this is what the MWS runs.
        """
        shared = self._params.pair(trapdoor.point, tag.point)
        expected = mask_bytes(gt_to_bytes(shared), _CHECK_LENGTH, _CHECK_DOMAIN)
        return constant_time_equal(expected, tag.check)


class SearchableIndex:
    """A server-side index of (record id, tags) supporting trapdoor search.

    The index stores only opaque tags; :meth:`search` evaluates one
    pairing per (record, tag) pair, so it also exposes the cost profile
    the EXT-H bench measures.
    """

    def __init__(self, scheme: PeksScheme) -> None:
        self._scheme = scheme
        self._entries: list[tuple[int, list[PeksTag]]] = []
        self.stats = {"tags_stored": 0, "tests_run": 0}

    def add(self, record_id: int, tags: list[PeksTag]) -> None:
        self._entries.append((record_id, list(tags)))
        self.stats["tags_stored"] += len(tags)

    def search(self, trapdoor: PeksTrapdoor) -> list[int]:
        """Record ids with at least one tag matching the trapdoor."""
        matches = []
        for record_id, tags in self._entries:
            for tag in tags:
                self.stats["tests_run"] += 1
                if self._scheme.test(trapdoor, tag):
                    matches.append(record_id)
                    break
        return matches

    def __len__(self) -> int:
        return len(self._entries)
