"""FullIdent: BasicIdent + Fujisaki–Okamoto transform (IND-ID-CCA).

Encryption commits to a random seed ``sigma``; the Miller randomness is
``r = H3(sigma || M)`` so decryption can re-derive ``r`` and reject any
ciphertext whose ``U`` was not honestly computed — chosen-ciphertext
attacks against the warehousing service's stored ciphertexts therefore
fail closed.  This is the CCA option for DESIGN.md ablation 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DecodeError, DecryptionError
from repro.ibe.keys import IdentityPrivateKey, PublicParams, _decode_blob, _encode_blob
from repro.mathlib.rand import RandomSource, SystemRandomSource
from repro.obs import crypto as _obs_crypto
from repro.pairing.curve import Point
from repro.pairing.hashing import gt_to_bytes, hash_to_scalar, mask_bytes
from repro.pairing.params import BFParams

__all__ = ["FullIdent", "FullCiphertext"]

_SIGMA_LEN = 32
_H2_DOMAIN = b"repro-bf-h2"
_H4_DOMAIN = b"repro-bf-h4"


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


@dataclass
class FullCiphertext:
    """``(U, V, W)``: point, masked seed, masked message."""

    u: Point
    v: bytes
    w: bytes

    def to_bytes(self) -> bytes:
        """Serialise to the canonical byte encoding."""
        return (
            _encode_blob(self.u.to_bytes())
            + _encode_blob(self.v)
            + _encode_blob(self.w)
        )

    @classmethod
    def from_bytes(cls, data: bytes, params: BFParams) -> "FullCiphertext":
        """Parse an instance from its canonical byte encoding."""
        u_bytes, data = _decode_blob(data)
        v, data = _decode_blob(data)
        w, data = _decode_blob(data)
        if data:
            raise DecodeError(f"{len(data)} trailing bytes after FullCiphertext")
        return cls(u=params.curve.from_bytes(u_bytes), v=v, w=w)


class FullIdent:
    """CCA-secure encrypt/decrypt facade over a parameter set."""

    def __init__(self, public: PublicParams, rng: RandomSource | None = None) -> None:
        self._public = public
        self._rng = rng if rng is not None else SystemRandomSource()

    def encrypt(self, identity: bytes, message: bytes) -> FullCiphertext:
        """FO-transformed encryption of ``message`` to ``identity``."""
        prof = _obs_crypto.ACTIVE
        if prof is not None:
            prof.ibe_encrypts += 1
        params = self._public.params
        sigma = self._rng.randbytes(_SIGMA_LEN)
        r = hash_to_scalar(params, sigma + message)
        g_r = self._public.gt_power(identity, r)
        v = _xor(sigma, mask_bytes(gt_to_bytes(g_r), _SIGMA_LEN, _H2_DOMAIN))
        w = _xor(message, mask_bytes(sigma, len(message), _H4_DOMAIN))
        return FullCiphertext(u=params.mul_generator(r), v=v, w=w)

    def decrypt(self, private_key: IdentityPrivateKey, ciphertext: FullCiphertext) -> bytes:
        """Decrypt and verify the FO consistency check.

        Raises :class:`DecryptionError` when ``U != H3(sigma||M) * P``,
        i.e. for any ciphertext not produced by honest encryption under
        this identity.
        """
        prof = _obs_crypto.ACTIVE
        if prof is not None:
            prof.ibe_decrypts += 1
        params = self._public.params
        if len(ciphertext.v) != _SIGMA_LEN:
            raise DecryptionError(
                f"FullIdent V component must be {_SIGMA_LEN} bytes, "
                f"got {len(ciphertext.v)}"
            )
        g = self._public.pair(private_key.point, ciphertext.u)
        sigma = _xor(
            ciphertext.v, mask_bytes(gt_to_bytes(g), _SIGMA_LEN, _H2_DOMAIN)
        )
        message = _xor(
            ciphertext.w, mask_bytes(sigma, len(ciphertext.w), _H4_DOMAIN)
        )
        r = hash_to_scalar(params, sigma + message)
        # The FO consistency check rejects publicly: *every* ciphertext
        # not produced by honest encryption fails here, so the rejection
        # (and its timing) reveals nothing beyond validity, which the
        # sender already knows.  Point equality is over group elements,
        # not attacker-controlled byte strings.
        if params.mul_generator(r) != ciphertext.u:  # repro-lint: disable=CT002
            raise DecryptionError(
                "Fujisaki-Okamoto check failed: ciphertext is not a valid "
                "encryption under this identity"
            )
        return message
