"""IBE key material: system setup, master keys, identity private keys.

``setup`` is the paper's §IV Setup algorithm: the PKG fixes the group
parameters, draws the master secret ``s`` and publishes ``P_pub = sP``.
``MasterKeyPair.extract`` is the Extract algorithm producing
``d_ID = s * H1(ID)``.  All key objects serialise to bytes so they can
cross the simulated network and be persisted in the storage engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DecodeError, ParameterError
from repro.ibe.cache import CryptoCache
from repro.mathlib.rand import RandomSource, SystemRandomSource
from repro.obs import crypto as _obs_crypto
from repro.pairing.curve import Point
from repro.pairing.fields import Fp2Element
from repro.pairing.hashing import hash_to_point
from repro.pairing.params import BFParams, get_preset

__all__ = ["PublicParams", "MasterKeyPair", "IdentityPrivateKey", "setup"]


@dataclass
class PublicParams:
    """Everything an encryptor needs: group parameters and ``P_pub = sP``.

    Smart devices hold exactly this (the paper notes the SD "uses the
    public parameters from the PKG"); it contains no secrets.
    """

    params: BFParams
    p_pub: Point
    #: Optional identity-keyed memoization (see :mod:`repro.ibe.cache`);
    #: excluded from equality/serialisation — it is an accelerator, not
    #: part of the public parameters.
    cache: CryptoCache | None = field(default=None, compare=False, repr=False)
    #: The current key-lifecycle epoch (docs/REVOCATION.md).  Folded
    #: into identity derivation by callers and into the crypto-cache
    #: fingerprint so a rolled epoch can never serve a stale H1/G_T
    #: entry.  Excluded from equality/serialisation: epoch 0 is the
    #: legacy single-epoch mode and serialised params are epoch-free by
    #: design (the epoch travels in the protocol messages instead).
    current_epoch: int = field(default=0, compare=False)

    def hash_identity(self, identity: bytes) -> Point:
        """Q_ID = H1(identity): the public key derived from a string."""
        if self.cache is not None:
            return self.cache.h1_point(self, identity)
        return hash_to_point(self.params, identity)

    def pair(self, a: Point, b: Point) -> Fp2Element:
        """The modified symmetric pairing over base-field points."""
        return self.params.pair(a, b)

    def shared_gt(self, identity: bytes) -> Fp2Element:
        """``e(H1(identity), P_pub)`` — the encryptor's fixed pairing.

        This is the value every deposit-phase encryption raises to its
        ephemeral ``r``; routing it here lets an attached cache skip the
        whole MapToPoint + Miller computation for repeated identities.
        """
        if self.cache is not None:
            return self.cache.shared_gt(self, identity)
        q_id = self.hash_identity(identity)
        return self.pair(q_id, self.p_pub)

    def gt_power(self, identity: bytes, exponent: int) -> Fp2Element:
        """``shared_gt(identity) ** exponent`` — the encryptor's ``g^r``.

        With a cache attached the power runs through a per-identity
        fixed-base window table; the value is bit-identical either way.
        """
        if self.cache is not None:
            return self.cache.gt_power(self, identity, exponent)
        return self.shared_gt(identity) ** exponent

    def to_bytes(self) -> bytes:
        """Serialise as ``p || q || algorithm || P || P_pub`` (self-describing)."""
        algorithm = self.params.pairing_algorithm.encode("ascii")
        chunks = [
            _encode_int(self.params.p),
            _encode_int(self.params.q),
            _encode_blob(algorithm),
            _encode_blob(self.params.generator.to_bytes()),
            _encode_blob(self.p_pub.to_bytes()),
        ]
        return b"".join(chunks)

    @classmethod
    def from_bytes(cls, data: bytes) -> "PublicParams":
        """Parse an instance from its canonical byte encoding."""
        p, data = _decode_int(data)
        q, data = _decode_int(data)
        algorithm, data = _decode_blob(data)
        generator_bytes, data = _decode_blob(data)
        p_pub_bytes, data = _decode_blob(data)
        if data:
            raise DecodeError(f"{len(data)} trailing bytes after PublicParams")
        params = BFParams.from_primes(
            p, q, pairing_algorithm=algorithm.decode("ascii")
        )
        generator = params.curve.from_bytes(generator_bytes)
        # The deterministic default generator normally matches, but honour
        # the serialised one so custom setups round-trip exactly.
        params.generator = generator
        return cls(params=params, p_pub=params.curve.from_bytes(p_pub_bytes))


@dataclass
class MasterKeyPair:
    """The PKG's key material: public parameters plus the master secret ``s``."""

    public: PublicParams
    master_secret: int

    def extract(self, identity: bytes) -> "IdentityPrivateKey":
        """Extract: d_ID = s * H1(identity) — the paper's §IV Extract."""
        prof = _obs_crypto.ACTIVE
        if prof is not None:
            prof.key_extractions += 1
        q_id = self.public.hash_identity(identity)
        return IdentityPrivateKey(
            identity=bytes(identity), point=self.master_secret * q_id
        )

    def extract_point(self, q_id: Point) -> Point:
        """Extract from an already-hashed point (used by the PKG service,
        which receives ``A || Nonce`` and hashes it itself)."""
        prof = _obs_crypto.ACTIVE
        if prof is not None:
            prof.key_extractions += 1
        return self.master_secret * q_id


@dataclass
class IdentityPrivateKey:
    """A private key ``d_ID = s * Q_ID`` bound to the identity string."""

    identity: bytes
    point: Point

    def to_bytes(self) -> bytes:
        """Serialise to the canonical byte encoding."""
        return _encode_blob(self.identity) + _encode_blob(self.point.to_bytes())

    @classmethod
    def from_bytes(cls, data: bytes, params: BFParams) -> "IdentityPrivateKey":
        """Parse an instance from its canonical byte encoding."""
        identity, data = _decode_blob(data)
        point_bytes, data = _decode_blob(data)
        if data:
            raise DecodeError(f"{len(data)} trailing bytes after IdentityPrivateKey")
        return cls(identity=identity, point=params.curve.from_bytes(point_bytes))


def setup(
    preset: str | BFParams = "TEST80",
    rng: RandomSource | None = None,
    pairing_algorithm: str = "tate",
    field_backend: str | None = None,
) -> MasterKeyPair:
    """The paper's Setup: fix parameters, draw ``s``, publish ``sP``.

    ``preset`` may be a preset name or a ready :class:`BFParams`.
    ``field_backend`` selects the arithmetic lane for named presets
    (``None`` = the preset's default; ignored for ready params).
    """
    rng = rng if rng is not None else SystemRandomSource()
    if isinstance(preset, str):
        params = get_preset(
            preset, pairing_algorithm=pairing_algorithm, field_backend=field_backend
        )
    elif isinstance(preset, BFParams):
        params = preset
    else:
        raise ParameterError(
            f"preset must be a name or BFParams, got {type(preset).__name__}"
        )
    s = params.random_scalar(rng)
    public = PublicParams(params=params, p_pub=s * params.generator)
    return MasterKeyPair(public=public, master_secret=s)


# -- minimal length-prefixed primitives used by key serialisation ----------


def _encode_int(value: int) -> bytes:
    raw = value.to_bytes((value.bit_length() + 7) // 8 or 1, "big")
    return len(raw).to_bytes(2, "big") + raw


def _decode_int(data: bytes) -> tuple[int, bytes]:
    blob, rest = _decode_blob(data)
    return int.from_bytes(blob, "big"), rest


def _encode_blob(blob: bytes) -> bytes:
    if len(blob) > 0xFFFF:
        raise DecodeError(f"blob too long to encode ({len(blob)} bytes)")
    return len(blob).to_bytes(2, "big") + blob


def _decode_blob(data: bytes) -> tuple[bytes, bytes]:
    if len(data) < 2:
        raise DecodeError("truncated length prefix")
    length = int.from_bytes(data[:2], "big")
    if len(data) < 2 + length:
        raise DecodeError(f"truncated blob (want {length} bytes)")
    return data[2 : 2 + length], data[2 + length :]
