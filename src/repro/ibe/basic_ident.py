"""BasicIdent: the textbook Boneh–Franklin scheme (IND-ID-CPA).

Encrypt (paper §IV): ``C = (U, V) = (rP, M xor H2(e(Q_ID, P_pub)^r))``.
Decrypt: ``M = V xor H2(e(d_ID, U))``.  The two pairing values agree
because ``e(d_ID, rP) = e(s Q_ID, rP) = e(Q_ID, sP)^r``.

This is the one-shot XOR-pad variant; for arbitrary-length messages with
a symmetric cipher, use :mod:`repro.ibe.kem` (what the warehousing
protocol does), and for CCA security use :mod:`repro.ibe.full_ident`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DecodeError
from repro.ibe.keys import IdentityPrivateKey, PublicParams, _decode_blob, _encode_blob
from repro.mathlib.rand import RandomSource, SystemRandomSource
from repro.obs import crypto as _obs_crypto
from repro.pairing.curve import Point
from repro.pairing.hashing import gt_to_bytes, mask_bytes
from repro.pairing.params import BFParams

__all__ = ["BasicIdent", "BasicCiphertext"]


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


@dataclass
class BasicCiphertext:
    """``(U, V)`` with ``U = rP`` and ``V`` the masked message."""

    u: Point
    v: bytes

    def to_bytes(self) -> bytes:
        """Serialise to the canonical byte encoding."""
        return _encode_blob(self.u.to_bytes()) + _encode_blob(self.v)

    @classmethod
    def from_bytes(cls, data: bytes, params: BFParams) -> "BasicCiphertext":
        """Parse an instance from its canonical byte encoding."""
        u_bytes, data = _decode_blob(data)
        v, data = _decode_blob(data)
        if data:
            raise DecodeError(f"{len(data)} trailing bytes after BasicCiphertext")
        return cls(u=params.curve.from_bytes(u_bytes), v=v)


class BasicIdent:
    """Stateless encrypt/decrypt facade over a parameter set."""

    def __init__(self, public: PublicParams, rng: RandomSource | None = None) -> None:
        self._public = public
        self._rng = rng if rng is not None else SystemRandomSource()

    def encrypt(self, identity: bytes, message: bytes) -> BasicCiphertext:
        """Encrypt ``message`` to the holder of ``identity``'s private key."""
        prof = _obs_crypto.ACTIVE
        if prof is not None:
            prof.ibe_encrypts += 1
        params = self._public.params
        r = params.random_scalar(self._rng)
        g = self._public.gt_power(identity, r)
        mask = mask_bytes(gt_to_bytes(g), len(message))
        return BasicCiphertext(u=params.mul_generator(r), v=_xor(message, mask))

    def decrypt(self, private_key: IdentityPrivateKey, ciphertext: BasicCiphertext) -> bytes:
        """Decrypt with ``d_ID``; any key yields *some* bytes (CPA scheme:
        authenticity comes from the layers above)."""
        prof = _obs_crypto.ACTIVE
        if prof is not None:
            prof.ibe_decrypts += 1
        g = self._public.pair(private_key.point, ciphertext.u)
        mask = mask_bytes(gt_to_bytes(g), len(ciphertext.v))
        return _xor(ciphertext.v, mask)
