"""Boneh–Franklin Identity-Based Encryption (paper reference [2]).

Three schemes, matching the paper's usage:

* :class:`BasicIdent` — the textbook IND-ID-CPA scheme (Setup / Extract /
  Encrypt / Decrypt exactly as the paper's §IV recounts them).
* :class:`FullIdent` — BasicIdent hardened with the Fujisaki–Okamoto
  transform (IND-ID-CCA).
* :class:`IbeKem` / :func:`hybrid_encrypt` — the IBE-as-KEM construction
  the paper's protocol actually uses: ``K = e(Q_ID, sP)^r`` keys a
  symmetric cipher (DES in the paper) and ``rP`` rides along with the
  ciphertext.
"""

from repro.ibe.basic_ident import BasicIdent, BasicCiphertext
from repro.ibe.cache import CryptoCache
from repro.ibe.full_ident import FullIdent, FullCiphertext
from repro.ibe.kem import (
    HybridCiphertext,
    IbeKem,
    hybrid_decrypt,
    hybrid_encrypt,
    hybrid_encrypt_many,
)
from repro.ibe.keys import (
    IdentityPrivateKey,
    MasterKeyPair,
    PublicParams,
    setup,
)
from repro.ibe.hibe import HibeDomain, HibePrivateKey, HibeRoot
from repro.ibe.peks import PeksScheme, PeksTag, PeksTrapdoor, SearchableIndex
from repro.ibe.signatures import (
    IbeSignature,
    IbeSigner,
    IbeVerifier,
    extract_signing_key,
)

__all__ = [
    "setup",
    "CryptoCache",
    "PublicParams",
    "MasterKeyPair",
    "IdentityPrivateKey",
    "BasicIdent",
    "BasicCiphertext",
    "FullIdent",
    "FullCiphertext",
    "IbeKem",
    "HybridCiphertext",
    "hybrid_encrypt",
    "hybrid_encrypt_many",
    "hybrid_decrypt",
    "IbeSigner",
    "IbeVerifier",
    "IbeSignature",
    "extract_signing_key",
    "HibeRoot",
    "HibeDomain",
    "HibePrivateKey",
    "PeksScheme",
    "PeksTag",
    "PeksTrapdoor",
    "SearchableIndex",
]
