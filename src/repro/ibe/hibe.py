"""Hierarchical IBE (Gentry–Silverberg 2002) over the library's pairing.

The paper's future work contemplates multiple PKGs ("a choice between
PKGs ... a model of trust between the three parties may have to
pre-exist").  HIBE is the principled version of that: one root PKG
delegates key generation down a domain hierarchy —

    REGION-SV  →  GLENBROOK  →  ELECTRIC

— so the complex operator can extract keys for its own meter classes
without ever seeing the root master secret, and a parent domain can
read (and audit) everything addressed below it.

Scheme (symmetric pairing, generator ``P``):

* Root: master ``s0``, public ``Q0 = s0·P``.
* Identity tuple ``(I1..It)``: ``P_i = H1(I1‖…‖Ii)``.
* Entity at level ``i`` holds its own secret ``s_i``; its key is
  ``S_t = Σ_{i=1..t} s_{i−1}·P_i`` plus ``Q_i = s_i·P`` for ``1 ≤ i < t``.
* Encrypt to ``(I1..It)``: pick ``r``;
  ``U0 = rP``, ``U_i = r·P_i`` for ``2 ≤ i ≤ t``;
  mask with ``H2(e(Q0, P_1)^r)``.
* Decrypt: ``e(S_t, U0) / Π_{i=2..t} e(Q_{i−1}, U_i) = e(Q0, P_1)^r``.

Correctness: the numerator telescopes to
``Π e(P_i, P)^{r·s_{i−1}}`` and the denominator cancels every term but
``i = 1``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DecodeError, DecryptionError, ParameterError
from repro.ibe.keys import _decode_blob, _encode_blob
from repro.mathlib.rand import RandomSource, SystemRandomSource
from repro.pairing.curve import Point
from repro.pairing.hashing import gt_to_bytes, hash_to_point, mask_bytes
from repro.pairing.params import BFParams
from repro.symciph.cipher import CIPHER_REGISTRY, SymmetricScheme

__all__ = ["HibeCiphertext", "HibePrivateKey", "HibeRoot", "HibeDomain"]

_ID_NAMESPACE = b"repro-hibe-v1:"
_KEM_DOMAIN = b"repro-hibe-kem"


def _level_point(params: BFParams, identity_path: tuple[str, ...], depth: int) -> Point:
    """``P_depth = H1(I1 ‖ … ‖ I_depth)`` with unambiguous framing."""
    joined = b"\x00".join(part.encode("utf-8") for part in identity_path[:depth])
    return hash_to_point(params, _ID_NAMESPACE + joined)


@dataclass
class HibePrivateKey:
    """A decryption key for one identity path (plus delegation data)."""

    identity_path: tuple[str, ...]
    s_point: Point  # S_t
    q_points: list[Point]  # Q_1 .. Q_{t-1}

    @property
    def depth(self) -> int:
        return len(self.identity_path)

    def to_bytes(self) -> bytes:
        """Serialise to the canonical byte encoding."""
        out = _encode_blob("\x00".join(self.identity_path).encode("utf-8"))
        out += _encode_blob(self.s_point.to_bytes())
        out += len(self.q_points).to_bytes(2, "big")
        for point in self.q_points:
            out += _encode_blob(point.to_bytes())
        return out

    @classmethod
    def from_bytes(cls, data: bytes, params: BFParams) -> "HibePrivateKey":
        """Parse an instance from its canonical byte encoding."""
        path_raw, data = _decode_blob(data)
        s_raw, data = _decode_blob(data)
        if len(data) < 2:
            raise DecodeError("truncated HibePrivateKey")
        count = int.from_bytes(data[:2], "big")
        data = data[2:]
        q_points = []
        for _ in range(count):
            q_raw, data = _decode_blob(data)
            q_points.append(params.curve.from_bytes(q_raw))
        if data:
            raise DecodeError(f"{len(data)} trailing bytes after HibePrivateKey")
        return cls(
            identity_path=tuple(path_raw.decode("utf-8").split("\x00")),
            s_point=params.curve.from_bytes(s_raw),
            q_points=q_points,
        )


@dataclass
class HibeCiphertext:
    """``U0 ‖ U2..Ut ‖ sealed body`` for an identity path of depth t."""

    u0: Point
    u_tail: list[Point]  # U_2 .. U_t
    cipher_name: str
    sealed: bytes


class HibeRoot:
    """The root PKG: holds ``s0``, publishes ``Q0``, spawns level-1 domains."""

    def __init__(self, params: BFParams, rng: RandomSource | None = None) -> None:
        self.params = params
        self._rng = rng if rng is not None else SystemRandomSource()
        self._s0 = params.random_scalar(self._rng)
        self.q0: Point = self._s0 * params.generator

    # -- key generation ----------------------------------------------------

    def extract(self, identity: str) -> HibePrivateKey:
        """Key for a depth-1 identity (equivalent to plain BF Extract)."""
        p1 = _level_point(self.params, (identity,), 1)
        return HibePrivateKey(
            identity_path=(identity,),
            s_point=self._s0 * p1,
            q_points=[],
        )

    def domain(self, identity: str, rng: RandomSource | None = None) -> "HibeDomain":
        """Create the level-1 *domain authority* for ``identity`` — it can
        delegate further without any access to ``s0``."""
        return HibeDomain(self, self.extract(identity), rng=rng or self._rng)

    # -- encryption ----------------------------------------------------------

    def encrypt(
        self,
        identity_path: tuple[str, ...] | list[str],
        message: bytes,
        cipher_name: str = "AES-128",
        rng: RandomSource | None = None,
    ) -> HibeCiphertext:
        """Encrypt to any depth; needs only ``Q0`` and public params."""
        path = tuple(identity_path)
        if not path:
            raise ParameterError("HIBE identity path must be non-empty")
        rng = rng if rng is not None else self._rng
        params = self.params
        r = params.random_scalar(rng)
        p1 = _level_point(params, path, 1)
        kem_value = params.pair(self.q0, p1) ** r
        key = mask_bytes(
            gt_to_bytes(kem_value),
            CIPHER_REGISTRY[cipher_name].key_size,
            _KEM_DOMAIN,
        )
        scheme = SymmetricScheme(cipher_name, key, mac=True, rng=rng)
        return HibeCiphertext(
            u0=r * params.generator,
            u_tail=[
                r * _level_point(params, path, depth)
                for depth in range(2, len(path) + 1)
            ],
            cipher_name=cipher_name,
            sealed=scheme.seal(message),
        )

    # -- decryption -------------------------------------------------------------

    def decrypt(self, key: HibePrivateKey, ciphertext: HibeCiphertext) -> bytes:
        """Decrypt with a key whose path matches the ciphertext's target.

        A key for a *prefix* of the target path also works when combined
        with delegation — see :meth:`HibeDomain.extract_path` — but this
        method itself requires depth(key) == depth(ciphertext target).
        """
        params = self.params
        if len(key.q_points) != len(ciphertext.u_tail):
            raise DecryptionError(
                "key depth does not match ciphertext depth "
                f"({len(key.q_points) + 1} vs {len(ciphertext.u_tail) + 1})"
            )
        value = params.pair(key.s_point, ciphertext.u0)
        for q_point, u_point in zip(key.q_points, ciphertext.u_tail):
            value = value * params.pair(q_point, u_point).inverse()
        symmetric_key = mask_bytes(
            gt_to_bytes(value),
            CIPHER_REGISTRY[ciphertext.cipher_name].key_size,
            _KEM_DOMAIN,
        )
        scheme = SymmetricScheme(ciphertext.cipher_name, symmetric_key, mac=True)
        return scheme.open(ciphertext.sealed)


class HibeDomain:
    """A non-root authority: holds its own ``s_i`` and its path key.

    Can extract keys one level down (and recursively spawn sub-domains),
    never touching any ancestor's secret.
    """

    def __init__(
        self,
        root: HibeRoot,
        key: HibePrivateKey,
        rng: RandomSource | None = None,
    ) -> None:
        self._root = root
        self.key = key
        self._rng = rng if rng is not None else SystemRandomSource()
        self._secret = root.params.random_scalar(self._rng)
        self._q: Point = self._secret * root.params.generator

    @property
    def identity_path(self) -> tuple[str, ...]:
        return self.key.identity_path

    def extract(self, child_identity: str) -> HibePrivateKey:
        """Key for ``path + (child_identity,)``."""
        params = self._root.params
        child_path = self.key.identity_path + (child_identity,)
        p_child = _level_point(params, child_path, len(child_path))
        return HibePrivateKey(
            identity_path=child_path,
            s_point=self.key.s_point + self._secret * p_child,
            q_points=list(self.key.q_points) + [self._q],
        )

    def domain(self, child_identity: str, rng: RandomSource | None = None) -> "HibeDomain":
        """Spawn the child as a further delegating authority."""
        return HibeDomain(self._root, self.extract(child_identity),
                          rng=rng or self._rng)

    def extract_path(self, descendants: list[str]) -> HibePrivateKey:
        """Extract for a multi-level descendant in one call."""
        domain: HibeDomain = self
        for identity in descendants[:-1]:
            domain = domain.domain(identity)
        return domain.extract(descendants[-1])
