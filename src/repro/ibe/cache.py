"""Identity-keyed crypto cache: memoized MapToPoint and deposit pairings.

The deposit hot path computes, per message, ``Q_ID = H1(A || Nonce)``
(a cube root) and ``g = e(Q_ID, P_pub)`` (a Miller loop).  Both depend
only on the identity string and the fixed public key, so under repeated
attributes — the paper's warehouse traffic pattern with nonces disabled,
or the PKG re-extracting for popular identities — they are pure
recomputation.  :class:`CryptoCache` memoizes both layers:

* ``H1(identity) -> Q_ID`` (saves the MapToPoint cube root), and
* ``identity -> e(Q_ID, phi(P_pub))`` in G_T (saves the whole pairing),
  evaluated through a :class:`repro.pairing.fast_tate.FixedArgumentTate`
  engine whose Miller line coefficients for ``P_pub`` are precomputed
  once (the modified pairing is symmetric, so
  ``e(Q_ID, P_pub) = e(P_pub, Q_ID)`` — bit-for-bit).

Both maps are bounded LRUs.  Entries are validated against fingerprints
of the group parameters and of ``P_pub``: a PKG re-setup (new primes)
invalidates everything, a ``P_pub`` rotation invalidates the G_T layer
and the engine while the H1 layer survives (it depends only on the
group).  Hits and misses are surfaced through the obs crypto counters
(``crypto.cache.{h1,pairing}.{hit,miss}``) and :meth:`CryptoCache.stats`.

Cached values are *public* material (identity hashes and the pairing of
two public points); the secrets — ``r``, ``s``, ``d_ID`` — never enter
the cache, so sharing one cache across components leaks nothing.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ParameterError
from repro.obs import crypto as _obs_crypto
from repro.pairing.curve import Point
from repro.pairing.fast_tate import FixedArgumentTate
from repro.pairing.fields import Fp2Element
from repro.pairing.hashing import hash_to_point
from repro.pairing.precompute import FixedBaseGt

__all__ = ["CryptoCache", "DEFAULT_CACHE_CAPACITY"]

#: Default bound for each LRU layer (identities, not bytes).
DEFAULT_CACHE_CAPACITY = 256


class CryptoCache:
    """Bounded LRU memoization of H1 and fixed-``P_pub`` pairings.

    One instance is safely shared by every component of a deployment
    (SmartDevice, ReceivingClient, PKG) — see module docstring for why.
    ``capacity`` bounds each layer independently.
    """

    __slots__ = (
        "capacity",
        "_h1",
        "_gt",
        "_gt_pow",
        "_engine",
        "_group_fp",
        "_pub_fp",
        "h1_hits",
        "h1_misses",
        "pairing_hits",
        "pairing_misses",
        "invalidations",
    )

    def __init__(self, capacity: int = DEFAULT_CACHE_CAPACITY) -> None:
        if capacity < 1:
            raise ParameterError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._h1: OrderedDict[bytes, Point] = OrderedDict()
        self._gt: OrderedDict[bytes, Fp2Element] = OrderedDict()
        self._gt_pow: OrderedDict[bytes, FixedBaseGt] = OrderedDict()
        self._engine: FixedArgumentTate | None = None
        self._group_fp = None
        self._pub_fp = None
        self.h1_hits = 0
        self.h1_misses = 0
        self.pairing_hits = 0
        self.pairing_misses = 0
        self.invalidations = 0

    # -- invalidation ----------------------------------------------------

    def _sync(self, public) -> None:
        """Drop whatever the current ``public`` makes stale.

        New group parameters (PKG re-setup) empty both layers; a new
        ``P_pub`` under the same group (key rotation) empties only the
        pairing layer and its precomputed engine.  The key-lifecycle
        epoch is part of the group fingerprint: an epoch roll is a key
        rotation event for every identity at once, so a cache warmed at
        epoch N must miss at epoch N+1 even though entries are keyed by
        identity bytes — a stale H1/G_T value surviving a roll would
        quietly re-derive a retired epoch's key material.
        """
        group_fp = (
            public.params.p,
            public.params.q,
            public.params.pairing_algorithm,
            getattr(public, "current_epoch", 0),
        )
        pub_fp = public.p_pub.to_bytes()
        if group_fp != self._group_fp:
            if self._group_fp is not None:
                self.invalidations += 1
            self._h1.clear()
            self._gt.clear()
            self._gt_pow.clear()
            self._engine = None
            self._group_fp = group_fp
            self._pub_fp = pub_fp
        elif pub_fp != self._pub_fp:
            self.invalidations += 1
            self._gt.clear()
            self._gt_pow.clear()
            self._engine = None
            self._pub_fp = pub_fp

    def clear(self) -> None:
        """Explicitly drop every cached value and the pairing engine."""
        self._h1.clear()
        self._gt.clear()
        self._gt_pow.clear()
        self._engine = None
        self._group_fp = None
        self._pub_fp = None

    # -- the two memoized layers -----------------------------------------

    def h1_point(self, public, identity: bytes) -> Point:
        """``H1(identity)`` with LRU memoization of the MapToPoint result."""
        self._sync(public)
        identity = bytes(identity)
        prof = _obs_crypto.ACTIVE
        cached = self._h1.get(identity)
        if cached is not None:
            self._h1.move_to_end(identity)
            self.h1_hits += 1
            if prof is not None:
                prof.cache_h1_hit += 1
            return cached
        self.h1_misses += 1
        if prof is not None:
            prof.cache_h1_miss += 1
        point = hash_to_point(public.params, identity)
        self._h1[identity] = point
        if len(self._h1) > self.capacity:
            self._h1.popitem(last=False)
        return point

    def shared_gt(self, public, identity: bytes) -> Fp2Element:
        """``e(H1(identity), P_pub)`` with LRU memoization in G_T.

        A warm hit performs zero cube roots and zero Miller loops; a
        miss goes through the fixed-argument engine (line coefficients
        for ``P_pub`` computed once per rotation).
        """
        self._sync(public)
        identity = bytes(identity)
        prof = _obs_crypto.ACTIVE
        cached = self._gt.get(identity)
        if cached is not None:
            self._gt.move_to_end(identity)
            self.pairing_hits += 1
            if prof is not None:
                prof.cache_pairing_hit += 1
            return cached
        self.pairing_misses += 1
        if prof is not None:
            prof.cache_pairing_miss += 1
        q_id = self.h1_point(public, identity)
        if public.params.pairing_algorithm != "tate":
            # Weil (and any future algorithm) is still memoizable — the
            # value only depends on (identity, P_pub) — but must not go
            # through the Tate-specific fixed-argument engine.
            value = public.pair(q_id, public.p_pub)
        else:
            if self._engine is None:
                self._engine = FixedArgumentTate(
                    public.p_pub, public.params.q, public.params.ext_curve
                )
            value = self._engine(public.params.distort(q_id))
        self._gt[identity] = value
        if len(self._gt) > self.capacity:
            self._gt.popitem(last=False)
        return value

    def gt_power(self, public, identity: bytes, exponent: int) -> Fp2Element:
        """``e(H1(identity), P_pub) ** exponent`` via a cached window table.

        The base is the memoized :meth:`shared_gt` value; the first power
        for an identity additionally builds a
        :class:`repro.pairing.precompute.FixedBaseGt` table, so repeated
        deposits to the same identity cost ~``q_bits/4`` multiplications
        instead of a full square-and-multiply ladder.  Bit-identical to
        ``shared_gt(...) ** exponent`` (the base has order ``q``, so the
        table's reduction mod ``q`` changes nothing).
        """
        base = self.shared_gt(public, identity)
        identity = bytes(identity)
        table = self._gt_pow.get(identity)
        if table is None or table.base != base:
            table = FixedBaseGt.shared(base, public.params.q)
            self._gt_pow[identity] = table
            if len(self._gt_pow) > self.capacity:
                self._gt_pow.popitem(last=False)
        else:
            self._gt_pow.move_to_end(identity)
        return table(exponent)

    # -- introspection ---------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Lifetime hit/miss/size numbers (independent of the obs sink)."""
        return {
            "h1_hits": self.h1_hits,
            "h1_misses": self.h1_misses,
            "h1_size": len(self._h1),
            "pairing_hits": self.pairing_hits,
            "pairing_misses": self.pairing_misses,
            "pairing_size": len(self._gt),
            "invalidations": self.invalidations,
            "capacity": self.capacity,
        }

    def __repr__(self) -> str:
        return (
            f"CryptoCache(capacity={self.capacity}, "
            f"h1={len(self._h1)}, gt={len(self._gt)})"
        )
