"""IBE-as-KEM and the hybrid construction the paper's protocol uses.

Paper §V.D (SD–MWS phase):

* the SD draws ``r``, computes ``I = H1(A || Nonce)``,
* derives ``K = e(sP, rI) = e(P_pub, I)^r`` — a pairing value,
* encrypts the message with DES under a key derived from ``K``,
* ships ``rP`` alongside the ciphertext.

The RC later obtains ``sI`` from the PKG and recomputes
``K = e(rP, sI)``; bilinearity makes the two values equal.  This module
packages that flow as encapsulate/decapsulate plus a one-call hybrid
seal/open (KEM + :class:`repro.symciph.cipher.SymmetricScheme`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DecodeError
from repro.ibe.keys import PublicParams, _decode_blob, _encode_blob
from repro.mathlib.rand import RandomSource, SystemRandomSource
from repro.obs import crypto as _obs_crypto
from repro.pairing.curve import Point
from repro.pairing.hashing import gt_to_bytes, mask_bytes
from repro.pairing.params import BFParams
from repro.symciph.cipher import CIPHER_REGISTRY, SymmetricScheme

__all__ = [
    "IbeKem",
    "HybridCiphertext",
    "hybrid_encrypt",
    "hybrid_encrypt_many",
    "hybrid_decrypt",
]

_KEM_DOMAIN = b"repro-ibe-kem-key"


class IbeKem:
    """Encapsulate/decapsulate a symmetric key under an identity string."""

    def __init__(self, public: PublicParams, rng: RandomSource | None = None) -> None:
        self._public = public
        self._rng = rng if rng is not None else SystemRandomSource()

    def encapsulate(self, identity: bytes, key_length: int) -> tuple[Point, bytes]:
        """Return ``(rP, K)``: the transported point and the derived key.

        ``K = KDF(e(I, P_pub)^r)`` where ``I = H1(identity)``.
        """
        prof = _obs_crypto.ACTIVE
        if prof is not None:
            prof.kem_encapsulations += 1
        params = self._public.params
        r = params.random_scalar(self._rng)
        shared = self._public.gt_power(identity, r)
        key = mask_bytes(gt_to_bytes(shared), key_length, _KEM_DOMAIN)
        return params.mul_generator(r), key

    def decapsulate(self, private_point: Point, r_p: Point, key_length: int) -> bytes:
        """Recompute ``K`` from ``sI`` (the extracted key) and ``rP``."""
        prof = _obs_crypto.ACTIVE
        if prof is not None:
            prof.kem_decapsulations += 1
        shared = self._public.pair(private_point, r_p)
        return mask_bytes(gt_to_bytes(shared), key_length, _KEM_DOMAIN)


@dataclass
class HybridCiphertext:
    """``rP`` plus a sealed symmetric container, tagged with the cipher name."""

    r_p: Point
    cipher_name: str
    sealed: bytes

    def to_bytes(self) -> bytes:
        """Serialise to the canonical byte encoding."""
        return (
            _encode_blob(self.r_p.to_bytes())
            + _encode_blob(self.cipher_name.encode("ascii"))
            + _encode_blob(self.sealed)
        )

    @classmethod
    def from_bytes(cls, data: bytes, params: BFParams) -> "HybridCiphertext":
        """Parse an instance from its canonical byte encoding."""
        r_p_bytes, data = _decode_blob(data)
        cipher_name, data = _decode_blob(data)
        sealed, data = _decode_blob(data)
        if data:
            raise DecodeError(f"{len(data)} trailing bytes after HybridCiphertext")
        return cls(
            r_p=params.curve.from_bytes(r_p_bytes),
            cipher_name=cipher_name.decode("ascii"),
            sealed=sealed,
        )


def hybrid_encrypt(
    public: PublicParams,
    identity: bytes,
    message: bytes,
    cipher_name: str = "DES",
    rng: RandomSource | None = None,
) -> HybridCiphertext:
    """Encrypt ``message`` under ``identity`` with IBE-KEM + ``cipher_name``.

    ``cipher_name`` defaults to DES for paper fidelity; pass "AES-128"
    etc. for a modern deployment.  The symmetric layer is CBC + PKCS#7
    with an encrypt-then-MAC tag, so tampering is detected at open time.
    """
    rng = rng if rng is not None else SystemRandomSource()
    kem = IbeKem(public, rng)
    key_size = CIPHER_REGISTRY[cipher_name].key_size
    r_p, key = kem.encapsulate(identity, key_size)
    scheme = SymmetricScheme(cipher_name, key, mac=True, rng=rng)
    return HybridCiphertext(
        r_p=r_p, cipher_name=cipher_name, sealed=scheme.seal(message)
    )


def hybrid_encrypt_many(
    public: PublicParams,
    identity: bytes,
    messages: list[bytes],
    cipher_name: str = "DES",
    rng: RandomSource | None = None,
) -> list[HybridCiphertext]:
    """Encrypt a batch to one identity with a single KEM encapsulation.

    The expensive part of :func:`hybrid_encrypt` is the encapsulation
    (a fixed-base scalar multiplication plus a G_T exponentiation); for
    a batch all destined to the *same* identity the transported ``rP``
    and derived key are computed once and shared.  Each message is still
    sealed independently — the symmetric layer draws a fresh IV per
    seal, so ciphertexts stay distinct and individually decryptable:
    the RC runs the ordinary :func:`hybrid_decrypt` per message with
    the same ``sI``.

    Sharing one encapsulated key across a batch is the standard
    multi-message KEM/DEM usage: the DEM (CBC + encrypt-then-MAC with
    per-seal IVs) is exactly the multi-encryption setting a symmetric
    key is designed for.  Messages for *different* identities must not
    share an encapsulation — callers group by identity first (see
    ``SmartDevice.deposit_many``).
    """
    rng = rng if rng is not None else SystemRandomSource()
    kem = IbeKem(public, rng)
    key_size = CIPHER_REGISTRY[cipher_name].key_size
    r_p, key = kem.encapsulate(identity, key_size)
    scheme = SymmetricScheme(cipher_name, key, mac=True, rng=rng)
    return [
        HybridCiphertext(r_p=r_p, cipher_name=cipher_name, sealed=sealed)
        for sealed in scheme.seal_many(messages)
    ]


def hybrid_decrypt(
    public: PublicParams,
    private_point: Point,
    ciphertext: HybridCiphertext,
) -> bytes:
    """Decrypt a hybrid ciphertext given the extracted key point ``sI``.

    Raises :class:`repro.errors.DecryptionError` on any tampering or on a
    key extracted for the wrong identity/nonce.
    """
    kem = IbeKem(public)
    key_size = CIPHER_REGISTRY[ciphertext.cipher_name].key_size
    key = kem.decapsulate(private_point, ciphertext.r_p, key_size)
    scheme = SymmetricScheme(ciphertext.cipher_name, key, mac=True)
    return scheme.open(ciphertext.sealed)
