"""Identity-based signatures (paper §VIII future work).

"There may be a possibility of the SD to use IBE and the ID of the MWS
to sign a message."  This module implements the Cha–Cheon identity-
based signature scheme (PKC 2003) over the library's pairing group, so
a smart device whose *signing* identity key was extracted once at
registration can sign deposits instead of (or in addition to) MACing
them — giving the MWS non-repudiable device attribution.

Scheme (symmetric pairing e, generator P, master secret s, P_pub = sP):

* Key: ``Q_ID = H1(ID)``, ``d_ID = s * Q_ID`` (same Extract as encryption,
  but under a distinct domain-separated identity namespace).
* Sign(m):   r random in [1, q); ``U = r * Q_ID``;
  ``h = H3(m || U)``; ``V = (r + h) * d_ID``.
* Verify(m): ``h = H3(m || U)``; accept iff
  ``e(V, P) == e(U + h * Q_ID, P_pub)``.

Correctness: ``e(V, P) = e((r+h) s Q_ID, P) = e(Q_ID, P)^{s(r+h)}``
and ``e(U + h Q_ID, sP) = e((r+h) Q_ID, P)^s`` — equal by bilinearity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DecodeError
from repro.ibe.keys import (
    IdentityPrivateKey,
    MasterKeyPair,
    PublicParams,
    _decode_blob,
    _encode_blob,
)
from repro.mathlib.rand import RandomSource, SystemRandomSource
from repro.pairing.curve import Point
from repro.pairing.hashing import hash_to_point, hash_to_scalar
from repro.pairing.params import BFParams

__all__ = ["IbeSignature", "IbeSigner", "IbeVerifier", "extract_signing_key"]

#: Domain separator so signing identities can never collide with
#: encryption identities (a device's signature key must not decrypt).
_SIGNING_NAMESPACE = b"repro-ibs-v1:"


def _signing_identity(identity: bytes) -> bytes:
    return _SIGNING_NAMESPACE + bytes(identity)


def extract_signing_key(master: MasterKeyPair, identity: bytes) -> IdentityPrivateKey:
    """PKG-side: extract the signing key for ``identity``.

    Uses the standard Extract under the signature namespace; done once
    at device registration.
    """
    return master.extract(_signing_identity(identity))


@dataclass
class IbeSignature:
    """A Cha–Cheon signature ``(U, V)``."""

    u: Point
    v: Point

    def to_bytes(self) -> bytes:
        """Serialise to the canonical byte encoding."""
        return _encode_blob(self.u.to_bytes()) + _encode_blob(self.v.to_bytes())

    @classmethod
    def from_bytes(cls, data: bytes, params: BFParams) -> "IbeSignature":
        """Parse an instance from its canonical byte encoding."""
        u_bytes, data = _decode_blob(data)
        v_bytes, data = _decode_blob(data)
        if data:
            raise DecodeError(f"{len(data)} trailing bytes after IbeSignature")
        return cls(
            u=params.curve.from_bytes(u_bytes),
            v=params.curve.from_bytes(v_bytes),
        )


class IbeSigner:
    """Holds a device's extracted signing key and produces signatures."""

    def __init__(
        self,
        public: PublicParams,
        identity: bytes,
        signing_key: IdentityPrivateKey,
        rng: RandomSource | None = None,
    ) -> None:
        self._public = public
        self._identity = bytes(identity)
        self._q_id = hash_to_point(public.params, _signing_identity(identity))
        self._key = signing_key
        self._rng = rng if rng is not None else SystemRandomSource()

    @property
    def identity(self) -> bytes:
        return self._identity

    def sign(self, message: bytes) -> IbeSignature:
        """Sign ``message``: two scalar multiplications, no pairing."""
        params = self._public.params
        r = params.random_scalar(self._rng)
        u = r * self._q_id
        h = hash_to_scalar(params, bytes(message) + u.to_bytes())
        v = ((r + h) % params.q) * self._key.point
        return IbeSignature(u=u, v=v)


class IbeVerifier:
    """Verifies signatures given only public parameters and the signer id.

    No certificate, no key distribution: the verifier derives the
    signer's public key from the identity string — the property the
    paper wants for constrained deployments.
    """

    def __init__(self, public: PublicParams) -> None:
        self._public = public

    @property
    def public(self) -> PublicParams:
        return self._public

    def verify(self, identity: bytes, message: bytes, signature: IbeSignature) -> bool:
        """True iff ``signature`` is valid for ``message`` under ``identity``.

        Two pairings; any tampering with the message, U, V or the
        claimed identity flips the equation.
        """
        params = self._public.params
        if signature.u.is_infinity() or signature.v.is_infinity():
            return False
        q_id = hash_to_point(params, _signing_identity(identity))
        h = hash_to_scalar(params, bytes(message) + signature.u.to_bytes())
        left = params.pair(signature.v, params.generator)
        right = params.pair(signature.u + h * q_id, self._public.p_pub)
        return left == right
