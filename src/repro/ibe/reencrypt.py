"""Warehouse-side lazy re-encryption: epoch re-wrapping without decryption.

On an epoch roll the warehouse must deny *already extracted* keys any
purchase on stored ciphertexts going forward — the ciphertext-update
half of a revocable-storage scheme.  The MWS cannot decrypt (the whole
point of the paper), but it *can* encrypt: the public parameters are
public.  So re-keying is a **wrap**: the stored ciphertext bytes —
already an opaque blob to the warehouse — become the plaintext of a
fresh hybrid encryption under the *current* epoch's identity
``H1(A || Nonce || Epoch)``.

The wrap frame is self-describing::

    magic | u32 outer_epoch | u32 inner_epoch | blob(sealed)

``outer_epoch`` names the key that opens this layer; ``inner_epoch`` is
the epoch of whatever is inside (another wrap frame, or the original
deposit at its deposit-time epoch), so an RC peels layers with one key
fetch per layer and always knows which epoch to ask the PKG for next.
Consecutive rolls nest — the warehouse can add layers but never remove
them (removal would require decryption).

Conservation: a wrap is reversible by any party holding the outer
epoch's key, and the *innermost* bytes are the original deposit
verbatim.  :func:`origin_digest_of` is therefore not computable by the
warehouse after the fact — the re-encryption engine records the digest
of the pre-wrap bytes at first wrap, and the revocation bench compares
those origin digests across fault plans where the availability bench
compares raw ciphertext bytes.
"""

from __future__ import annotations

from repro.errors import CiphertextFormatError
from repro.ibe.kem import HybridCiphertext, hybrid_decrypt, hybrid_encrypt
from repro.wire.encoding import Reader, Writer

__all__ = [
    "WRAP_MAGIC",
    "is_wrapped",
    "wrap",
    "parse_wrap",
    "unwrap_layer",
]

#: Frame magic opening every re-encryption wrap.  A serialised
#: :class:`HybridCiphertext` opens with a 2-byte blob length prefix of
#: the curve point, which for any real curve is far shorter than this
#: 6-byte tag pattern — and both writers live in this codebase, so the
#: discriminator only has to separate the two formats we emit.
WRAP_MAGIC = b"RWRAP\x01"


def is_wrapped(ciphertext: bytes) -> bool:
    """Whether ``ciphertext`` is a re-encryption wrap frame."""
    return ciphertext.startswith(WRAP_MAGIC)


def wrap(
    public,
    attribute: str,
    nonce: bytes,
    ciphertext: bytes,
    outer_epoch: int,
    inner_epoch: int,
    identity: bytes,
    cipher_name: str = "AES-128",
    rng=None,
) -> bytes:
    """Seal ``ciphertext`` under ``identity`` into a wrap frame.

    ``identity`` must be ``identity_string(attribute, nonce,
    outer_epoch)`` — the caller derives it (the conventions module owns
    the encoding; this layer stays below it).  ``attribute``/``nonce``
    are accepted for interface clarity but the binding lives entirely in
    the identity string.
    """
    sealed = hybrid_encrypt(
        public, identity, ciphertext, cipher_name=cipher_name, rng=rng
    ).to_bytes()
    return (
        WRAP_MAGIC
        + Writer().u32(outer_epoch).u32(inner_epoch).blob(sealed).getvalue()
    )


def parse_wrap(ciphertext: bytes) -> tuple[int, int, bytes]:
    """Split a wrap frame into ``(outer_epoch, inner_epoch, sealed)``."""
    if not is_wrapped(ciphertext):
        raise CiphertextFormatError("not a re-encryption wrap frame")
    reader = Reader(ciphertext[len(WRAP_MAGIC):])
    outer_epoch = reader.u32()
    inner_epoch = reader.u32()
    sealed = reader.blob()
    reader.finish()
    return outer_epoch, inner_epoch, sealed


def unwrap_layer(public, private_point, ciphertext: bytes) -> tuple[int, bytes]:
    """Open one wrap layer with the outer epoch's extracted key.

    Returns ``(inner_epoch, inner_bytes)`` — ``inner_bytes`` is either
    another wrap frame or the original hybrid ciphertext.  Raises
    :class:`repro.errors.DecryptionError` when ``private_point`` was
    extracted for the wrong identity or epoch, which is exactly how a
    retired key fails against re-wrapped storage.
    """
    _outer, inner_epoch, sealed = parse_wrap(ciphertext)
    container = HybridCiphertext.from_bytes(sealed, public.params)
    return inner_epoch, hybrid_decrypt(public, private_point, container)
