"""Cipher registry and the high-level authenticated container.

The protocol layer never touches raw blocks: it calls
:class:`SymmetricScheme` (CBC + PKCS#7 + random IV, optionally with an
encrypt-then-MAC tag), selecting the block cipher by registry name so
the paper's DES and the modern AES are interchangeable — one of the
ablations DESIGN.md §6 calls out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CipherError, DecryptionError
from repro.hashes.hmac import Hmac, constant_time_equal
from repro.mathlib.rand import RandomSource, SystemRandomSource
from repro.symciph.aes import AES
from repro.symciph.des import DES, TripleDES
from repro.symciph.modes import cbc_decrypt, cbc_encrypt
from repro.symciph.padding import pkcs7_pad, pkcs7_unpad

__all__ = ["CipherSpec", "CIPHER_REGISTRY", "new_cipher", "SymmetricScheme"]


@dataclass(frozen=True)
class CipherSpec:
    """Registry entry describing a block cipher choice."""

    name: str
    factory: type
    key_size: int
    block_size: int


#: Canonical cipher names the protocol configuration accepts.
CIPHER_REGISTRY: dict[str, CipherSpec] = {
    "DES": CipherSpec("DES", DES, 8, 8),
    "3DES": CipherSpec("3DES", TripleDES, 24, 8),
    "AES-128": CipherSpec("AES-128", AES, 16, 16),
    "AES-192": CipherSpec("AES-192", AES, 24, 16),
    "AES-256": CipherSpec("AES-256", AES, 32, 16),
}


def new_cipher(name: str, key: bytes):
    """Instantiate a registered block cipher by name.

    >>> c = new_cipher("DES", bytes(8))
    >>> c.block_size
    8
    """
    spec = CIPHER_REGISTRY.get(name)
    if spec is None:
        raise CipherError(
            f"unknown cipher {name!r}; known: {sorted(CIPHER_REGISTRY)}"
        )
    return spec.factory(key)


class SymmetricScheme:
    """CBC + PKCS#7 symmetric encryption with an optional HMAC tag.

    ``seal``/``open`` produce/consume self-contained byte strings
    (``IV || ciphertext [|| tag]``).  With ``mac=True`` the scheme is
    encrypt-then-MAC under a key derived by domain separation from the
    data key, and ``open`` rejects any modification.
    """

    _MAC_INFO = b"repro-symmetric-scheme-mac-key"

    def __init__(
        self,
        cipher_name: str,
        key: bytes,
        mac: bool = False,
        rng: RandomSource | None = None,
    ) -> None:
        spec = CIPHER_REGISTRY.get(cipher_name)
        if spec is None:
            raise CipherError(
                f"unknown cipher {cipher_name!r}; known: {sorted(CIPHER_REGISTRY)}"
            )
        if len(key) != spec.key_size:
            raise CipherError(
                f"{cipher_name} requires a {spec.key_size}-byte key, got {len(key)}"
            )
        self._spec = spec
        self._cipher = spec.factory(key)
        self._mac_key = (
            Hmac(key, "sha256", self._MAC_INFO).digest() if mac else None
        )
        self._rng = rng if rng is not None else SystemRandomSource()

    @property
    def cipher_name(self) -> str:
        return self._spec.name

    @property
    def tag_size(self) -> int:
        return 32 if self._mac_key is not None else 0

    def seal(self, plaintext: bytes) -> bytes:
        """Encrypt ``plaintext``; returns ``IV || ct [|| tag]``."""
        return self._seal_with_iv(
            plaintext, self._rng.randbytes(self._spec.block_size)
        )

    def seal_many(self, plaintexts: list[bytes]) -> list[bytes]:
        """Seal a batch, drawing every IV in a single RNG call.

        Containers are identical in format and security to per-message
        :meth:`seal` (independent uniform IVs, one tag each) but an
        HMAC-DRBG source pays its fixed generate/update cost once per
        *call*, which dominates block-size draws — so batching the IV
        draw is where a batched sender's symmetric cost actually drops.
        """
        block_size = self._spec.block_size
        ivs = self._rng.randbytes(block_size * len(plaintexts))
        return [
            self._seal_with_iv(
                plaintext, ivs[index * block_size : (index + 1) * block_size]
            )
            for index, plaintext in enumerate(plaintexts)
        ]

    def _seal_with_iv(self, plaintext: bytes, iv: bytes) -> bytes:
        padded = pkcs7_pad(plaintext, self._spec.block_size)
        ciphertext = cbc_encrypt(self._cipher, padded, iv)
        sealed = iv + ciphertext
        if self._mac_key is not None:
            sealed += Hmac(self._mac_key, "sha256", sealed).digest()
        return sealed

    def open(self, sealed: bytes) -> bytes:
        """Decrypt a sealed container, verifying the tag when present."""
        block_size = self._spec.block_size
        if self._mac_key is not None:
            if len(sealed) < 32:
                raise DecryptionError("sealed container shorter than its MAC tag")
            body, tag = sealed[:-32], sealed[-32:]
            expected = Hmac(self._mac_key, "sha256", body).digest()
            if not constant_time_equal(tag, expected):
                raise DecryptionError("MAC verification failed")
            sealed = body
        if len(sealed) < 2 * block_size or len(sealed) % block_size != 0:
            raise DecryptionError(
                f"sealed container has invalid length {len(sealed)}"
            )
        iv, ciphertext = sealed[:block_size], sealed[block_size:]
        padded = cbc_decrypt(self._cipher, ciphertext, iv)
        try:
            return pkcs7_unpad(padded, block_size)
        except CipherError as exc:
            raise DecryptionError(f"padding check failed: {exc}") from exc
