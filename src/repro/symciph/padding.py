"""PKCS#7 padding (RFC 5652 §6.3).

All CBC/ECB protocol payloads are padded with PKCS#7; removal validates
every padding byte and raises :class:`repro.errors.PaddingError` on any
inconsistency so a tampered ciphertext cannot silently truncate.
"""

from __future__ import annotations

from repro.errors import PaddingError

__all__ = ["pkcs7_pad", "pkcs7_unpad"]


def pkcs7_pad(data: bytes, block_size: int) -> bytes:
    """Pad ``data`` to a multiple of ``block_size`` (1..255)."""
    if not 1 <= block_size <= 255:
        raise PaddingError(f"block size must be in [1, 255], got {block_size}")
    pad_len = block_size - len(data) % block_size
    return data + bytes([pad_len]) * pad_len


def pkcs7_unpad(data: bytes, block_size: int) -> bytes:
    """Remove PKCS#7 padding, validating every pad byte."""
    if not data or len(data) % block_size != 0:
        raise PaddingError(
            f"padded data length {len(data)} is not a positive multiple "
            f"of block size {block_size}"
        )
    pad_len = data[-1]
    if pad_len == 0 or pad_len > block_size:
        raise PaddingError(f"invalid padding length byte {pad_len}")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise PaddingError("padding bytes are inconsistent")
    return data[:-pad_len]
