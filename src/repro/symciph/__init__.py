"""Symmetric ciphers implemented from their specifications.

The paper's protocol says "We have used DES encryption method throughout
this protocol"; DES and 3DES are implemented from FIPS 46-3 and AES from
FIPS 197 so the protocol layer can swap ciphers by name.  Block modes
(ECB/CBC/CTR) and PKCS#7 padding live in their own modules, and
:func:`new_cipher` is the registry-backed factory the protocol uses.
"""

from repro.symciph.aes import AES
from repro.symciph.cipher import CIPHER_REGISTRY, CipherSpec, new_cipher
from repro.symciph.des import DES, TripleDES
from repro.symciph.modes import (
    cbc_decrypt,
    cbc_encrypt,
    ctr_transform,
    ecb_decrypt,
    ecb_encrypt,
)
from repro.symciph.padding import pkcs7_pad, pkcs7_unpad

__all__ = [
    "DES",
    "TripleDES",
    "AES",
    "ecb_encrypt",
    "ecb_decrypt",
    "cbc_encrypt",
    "cbc_decrypt",
    "ctr_transform",
    "pkcs7_pad",
    "pkcs7_unpad",
    "new_cipher",
    "CipherSpec",
    "CIPHER_REGISTRY",
]
