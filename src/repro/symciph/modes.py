"""Block-cipher modes of operation: ECB, CBC, CTR.

These operate over any object exposing ``block_size``,
``encrypt_block`` and ``decrypt_block`` (DES, 3DES, AES).  ECB is
provided because the paper's Perl prototype used raw DES, but the
protocol layer defaults to CBC with a random IV.
"""

from __future__ import annotations

from repro.errors import CipherError, InvalidBlockSizeError

__all__ = [
    "ecb_encrypt",
    "ecb_decrypt",
    "cbc_encrypt",
    "cbc_decrypt",
    "ctr_transform",
]


def _xor_bytes(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def _iter_blocks(data: bytes, block_size: int):
    if len(data) % block_size != 0:
        raise InvalidBlockSizeError(
            f"data length {len(data)} is not a multiple of block size {block_size}"
        )
    for offset in range(0, len(data), block_size):
        yield data[offset : offset + block_size]


def ecb_encrypt(cipher, plaintext: bytes) -> bytes:
    """Encrypt block-aligned ``plaintext`` in ECB mode."""
    return b"".join(
        cipher.encrypt_block(block)
        for block in _iter_blocks(plaintext, cipher.block_size)
    )


def ecb_decrypt(cipher, ciphertext: bytes) -> bytes:
    """Decrypt block-aligned ``ciphertext`` in ECB mode."""
    return b"".join(
        cipher.decrypt_block(block)
        for block in _iter_blocks(ciphertext, cipher.block_size)
    )


def cbc_encrypt(cipher, plaintext: bytes, iv: bytes) -> bytes:
    """Encrypt block-aligned ``plaintext`` in CBC mode under ``iv``."""
    if len(iv) != cipher.block_size:
        raise CipherError(
            f"IV must be {cipher.block_size} bytes, got {len(iv)}"
        )
    previous = iv
    blocks = []
    for block in _iter_blocks(plaintext, cipher.block_size):
        previous = cipher.encrypt_block(_xor_bytes(block, previous))
        blocks.append(previous)
    return b"".join(blocks)


def cbc_decrypt(cipher, ciphertext: bytes, iv: bytes) -> bytes:
    """Decrypt block-aligned ``ciphertext`` in CBC mode under ``iv``."""
    if len(iv) != cipher.block_size:
        raise CipherError(
            f"IV must be {cipher.block_size} bytes, got {len(iv)}"
        )
    previous = iv
    blocks = []
    for block in _iter_blocks(ciphertext, cipher.block_size):
        blocks.append(_xor_bytes(cipher.decrypt_block(block), previous))
        previous = block
    return b"".join(blocks)


def ctr_transform(cipher, data: bytes, nonce: bytes) -> bytes:
    """Encrypt or decrypt ``data`` in CTR mode (the operations coincide).

    ``nonce`` seeds a big-endian counter filling one cipher block; the
    data need not be block-aligned.
    """
    block_size = cipher.block_size
    if len(nonce) > block_size:
        raise CipherError(
            f"CTR nonce must be at most {block_size} bytes, got {len(nonce)}"
        )
    counter = int.from_bytes(nonce.ljust(block_size, b"\x00"), "big")
    out = bytearray()
    for offset in range(0, len(data), block_size):
        keystream = cipher.encrypt_block(
            (counter % (1 << (8 * block_size))).to_bytes(block_size, "big")
        )
        chunk = data[offset : offset + block_size]
        out.extend(_xor_bytes(chunk, keystream[: len(chunk)]))
        counter += 1
    return bytes(out)
