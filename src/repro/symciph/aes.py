"""AES-128/192/256 implemented from FIPS 197.

The S-box is derived algebraically (multiplicative inverse in GF(2^8)
followed by the affine transform) rather than hard-coded, which both
documents where it comes from and removes a 256-entry transcription
risk.  AES is the modern drop-in for the paper's DES; the protocol layer
selects it through :func:`repro.symciph.new_cipher`.
"""

from __future__ import annotations

from repro.errors import InvalidBlockSizeError, InvalidKeySizeError

__all__ = ["AES"]


def _gf_mul(a: int, b: int) -> int:
    """Multiply in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        carry = a & 0x80
        a = (a << 1) & 0xFF
        if carry:
            a ^= 0x1B
        b >>= 1
    return result


def _build_sbox() -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Derive the AES S-box and its inverse from the field structure."""
    # Multiplicative inverses via exhaustive search (256 elements; done once).
    inverse = [0] * 256
    for x in range(1, 256):
        for y in range(1, 256):
            if _gf_mul(x, y) == 1:
                inverse[x] = y
                break
    sbox = [0] * 256
    for x in range(256):
        b = inverse[x]
        # Affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63
        value = b
        for shift in range(1, 5):
            value ^= ((b << shift) | (b >> (8 - shift))) & 0xFF
        sbox[x] = value ^ 0x63
    inv_sbox = [0] * 256
    for x, s in enumerate(sbox):
        inv_sbox[s] = x
    return tuple(sbox), tuple(inv_sbox)


_SBOX, _INV_SBOX = _build_sbox()

# Round constants for the key schedule: powers of x in GF(2^8).
_RCON = [1]
while len(_RCON) < 14:
    _RCON.append(_gf_mul(_RCON[-1], 2))


class AES:
    """AES with 16/24/32-byte keys over 16-byte blocks.

    >>> key = bytes(range(16))
    >>> pt = bytes.fromhex("00112233445566778899aabbccddeeff")
    >>> AES(key).encrypt_block(pt).hex()
    '69c4e0d86a7b0430d8cdb78070b4c55a'
    """

    block_size = 16
    key_sizes = (16, 24, 32)
    name = "AES"

    _ROUNDS_BY_KEY_SIZE = {16: 10, 24: 12, 32: 14}

    def __init__(self, key: bytes) -> None:
        if len(key) not in self._ROUNDS_BY_KEY_SIZE:
            raise InvalidKeySizeError(
                f"AES requires a 16-, 24- or 32-byte key, got {len(key)}"
            )
        self._rounds = self._ROUNDS_BY_KEY_SIZE[len(key)]
        self._round_keys = self._expand_key(key)

    def _expand_key(self, key: bytes) -> list[list[int]]:
        """Key expansion: list of 4-byte words, grouped later per round."""
        nk = len(key) // 4
        words = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
        total_words = 4 * (self._rounds + 1)
        for i in range(nk, total_words):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]  # RotWord
                temp = [_SBOX[b] for b in temp]  # SubWord
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [_SBOX[b] for b in temp]
            words.append([w ^ t for w, t in zip(words[i - nk], temp)])
        return words

    @staticmethod
    def _bytes_to_state(block: bytes) -> list[list[int]]:
        """Column-major 4x4 state: state[row][col] = block[4*col + row]."""
        return [[block[4 * col + row] for col in range(4)] for row in range(4)]

    @staticmethod
    def _state_to_bytes(state: list[list[int]]) -> bytes:
        return bytes(state[row][col] for col in range(4) for row in range(4))

    def _add_round_key(self, state: list[list[int]], round_index: int) -> None:
        for col in range(4):
            word = self._round_keys[4 * round_index + col]
            for row in range(4):
                state[row][col] ^= word[row]

    @staticmethod
    def _sub_bytes(state: list[list[int]], box: tuple[int, ...]) -> None:
        for row in range(4):
            for col in range(4):
                state[row][col] = box[state[row][col]]

    @staticmethod
    def _shift_rows(state: list[list[int]], inverse: bool = False) -> None:
        for row in range(1, 4):
            shift = -row if inverse else row
            state[row] = state[row][shift:] + state[row][:shift]

    @staticmethod
    def _mix_columns(state: list[list[int]], inverse: bool = False) -> None:
        matrix = (
            ((14, 11, 13, 9), (9, 14, 11, 13), (13, 9, 14, 11), (11, 13, 9, 14))
            if inverse
            else ((2, 3, 1, 1), (1, 2, 3, 1), (1, 1, 2, 3), (3, 1, 1, 2))
        )
        for col in range(4):
            column = [state[row][col] for row in range(4)]
            for row in range(4):
                state[row][col] = (
                    _gf_mul(matrix[row][0], column[0])
                    ^ _gf_mul(matrix[row][1], column[1])
                    ^ _gf_mul(matrix[row][2], column[2])
                    ^ _gf_mul(matrix[row][3], column[3])
                )

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != 16:
            raise InvalidBlockSizeError(
                f"AES operates on 16-byte blocks, got {len(block)}"
            )
        state = self._bytes_to_state(block)
        self._add_round_key(state, 0)
        for round_index in range(1, self._rounds):
            self._sub_bytes(state, _SBOX)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, round_index)
        self._sub_bytes(state, _SBOX)
        self._shift_rows(state)
        self._add_round_key(state, self._rounds)
        return self._state_to_bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(block) != 16:
            raise InvalidBlockSizeError(
                f"AES operates on 16-byte blocks, got {len(block)}"
            )
        state = self._bytes_to_state(block)
        self._add_round_key(state, self._rounds)
        for round_index in range(self._rounds - 1, 0, -1):
            self._shift_rows(state, inverse=True)
            self._sub_bytes(state, _INV_SBOX)
            self._add_round_key(state, round_index)
            self._mix_columns(state, inverse=True)
        self._shift_rows(state, inverse=True)
        self._sub_bytes(state, _INV_SBOX)
        self._add_round_key(state, 0)
        return self._state_to_bytes(state)
