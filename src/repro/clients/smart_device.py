"""The Smart Device (SD): the paper's depositing client.

Per §V.B the SD "uses the public parameters from the PKG and an
attribute describing an eligible receiver to generate a public key",
appends a nonce to the attribute for later revocation, encrypts with
the derived key (DES in the paper, configurable here) and MACs the
whole deposit with the key shared at registration.

The device is deliberately thin — the computational-constraint argument
of the paper's §I: one pairing, one point multiplication, one symmetric
encryption and one HMAC per message.
"""

from __future__ import annotations

from repro.clients.transport import RetryingTransport, RetryPolicy
from repro.core.conventions import (
    NONCE_LENGTH,
    compute_deposit_mac,
    identity_string,
)
from repro.errors import DecodeError, NetworkError, ProtocolError
from repro.ibe.kem import hybrid_encrypt, hybrid_encrypt_many
from repro.ibe.keys import PublicParams
from repro.mathlib.rand import RandomSource, SystemRandomSource
from repro.obs.tracing import NULL_TRACER
from repro.sim.clock import Clock, WallClock
from repro.sim.network import Channel
from repro.wire.messages import (
    BatchDepositReceipt,
    BatchDepositRequest,
    BatchDepositResponse,
    BatchEntry,
    DepositRequest,
    DepositResponse,
)

__all__ = ["SmartDevice"]

#: A deposit attempt can fail three ways, all safely retryable because
#: the retransmit is byte-identical and the SDA replays committed
#: responses: transport loss, a response corrupted beyond parsing, and
#: an MWS rejection (a corrupted *request* fails its MAC; the clean
#: retransmit then succeeds).
_DEPOSIT_TRANSIENT = (NetworkError, DecodeError, ProtocolError)


class SmartDevice:
    """A registered depositing client bound to its MWS shared key."""

    def __init__(
        self,
        device_id: str,
        public_params: PublicParams,
        shared_key: bytes,
        clock: Clock | None = None,
        rng: RandomSource | None = None,
        cipher_name: str = "DES",
        use_nonce: bool = True,
        signer=None,
        retry_policy: RetryPolicy | None = None,
        registry=None,
        tracer=None,
        crypto_cache=None,
    ) -> None:
        self.device_id = device_id
        self._public = public_params
        #: Optional :class:`repro.ibe.cache.CryptoCache` — attached to the
        #: public parameters so every encryption through them is memoized.
        if crypto_cache is not None:
            public_params.cache = crypto_cache
        self._shared_key = shared_key
        self._clock = clock if clock is not None else WallClock()
        self._rng = rng if rng is not None else SystemRandomSource()
        self._cipher_name = cipher_name
        #: ``use_nonce=False`` is the static-key ablation (DESIGN.md §6.2):
        #: every message under an attribute shares one IBE identity.
        self._use_nonce = use_nonce
        #: Optional :class:`repro.ibe.signatures.IbeSigner` — when set,
        #: deposits additionally carry a non-repudiable identity-based
        #: signature (§VIII future work).
        self._signer = signer
        self._tracer = tracer if tracer is not None else NULL_TRACER
        #: Retrying transport; with ``retry_policy=None`` it is a plain
        #: single-attempt pass-through.
        self.transport = RetryingTransport(
            retry_policy,
            self._clock,
            self._rng,
            registry=registry,
            name=f"client.sd.{device_id}.transport",
        )
        if registry is not None:
            self.stats = registry.stats_dict(
                f"client.sd.{device_id}", ["deposits_built"]
            )
        else:
            self.stats = {"deposits_built": 0}

    def _current_epoch(self) -> int:
        """The key epoch to encrypt under, read off the public params.

        The PKG publishes epoch rolls by bumping
        ``PublicParams.current_epoch`` on the shared object, so devices
        pick the new identity up on their next deposit without any
        re-provisioning round-trip.  Deposits built just before a roll
        carry the old epoch and still land — the warehouse accepts any
        epoch back to its retirement threshold.
        """
        return getattr(self._public, "current_epoch", 0)

    def build_deposit(self, attribute: str, message: bytes) -> DepositRequest:
        """Encrypt ``message`` under ``attribute`` and MAC the deposit.

        This is the full §V.D SD-side computation; it does not touch the
        network, so benchmarks can measure device cost in isolation.
        """
        with self._tracer.span("sd.build_deposit") as span:
            span.annotate("message_bytes", len(message))
            nonce = self._rng.randbytes(NONCE_LENGTH) if self._use_nonce else b""
            epoch = self._current_epoch()
            identity = identity_string(attribute, nonce, epoch)
            with self._tracer.span("sd.ibe_encrypt"):
                ciphertext = hybrid_encrypt(
                    self._public,
                    identity,
                    message,
                    cipher_name=self._cipher_name,
                    rng=self._rng,
                )
            request = DepositRequest(
                device_id=self.device_id,
                attribute=attribute,
                nonce=nonce,
                ciphertext=ciphertext.to_bytes(),
                timestamp_us=self._clock.now_us(),
                epoch=epoch,
            )
            with self._tracer.span("sd.mac"):
                request.mac = compute_deposit_mac(
                    self._shared_key, request.mac_payload()
                )
            if self._signer is not None:
                request.signature = self._signer.sign(
                    request.mac_payload()
                ).to_bytes()
            self.stats["deposits_built"] += 1
            return request

    def build_batch(self, items: list[tuple[str, bytes]]) -> BatchDepositRequest:
        """Encrypt each ``(attribute, message)`` item and MAC the batch.

        Per-item work (pairing + symmetric encryption) is unchanged; the
        MAC and the network round-trip are amortised over the batch.
        """
        entries = []
        epoch = self._current_epoch()
        for attribute, message in items:
            nonce = self._rng.randbytes(NONCE_LENGTH) if self._use_nonce else b""
            identity = identity_string(attribute, nonce, epoch)
            ciphertext = hybrid_encrypt(
                self._public,
                identity,
                message,
                cipher_name=self._cipher_name,
                rng=self._rng,
            )
            entries.append(
                BatchEntry(
                    attribute=attribute,
                    nonce=nonce,
                    ciphertext=ciphertext.to_bytes(),
                    epoch=epoch,
                )
            )
        request = BatchDepositRequest(
            device_id=self.device_id,
            timestamp_us=self._clock.now_us(),
            entries=entries,
        )
        request.mac = compute_deposit_mac(self._shared_key, request.mac_payload())
        self.stats["deposits_built"] += len(entries)
        return request

    def deposit_batch(
        self, channel: Channel, items: list[tuple[str, bytes]]
    ) -> BatchDepositResponse:
        """Build and send a batch over ``channel`` (the batch endpoint).

        With a :class:`RetryPolicy` the identical batch bytes are
        retransmitted on transient failures; the SDA's idempotent
        replay cache guarantees at-most-once storage.
        """
        raw = self.build_batch(items).to_bytes()

        def attempt() -> BatchDepositResponse:
            response = BatchDepositResponse.from_bytes(channel.request(raw))
            if not response.accepted:
                raise ProtocolError(
                    f"MWS rejected batch from {self.device_id!r}: {response.error}"
                )
            return response

        return self.transport.call(attempt, transient=_DEPOSIT_TRANSIENT)

    def build_many(self, items: list[tuple[str, bytes]]) -> BatchDepositRequest:
        """Build a batch with KEM encapsulations amortised per identity.

        Items are grouped by IBE identity (attribute + nonce) and each
        group shares one encapsulation via
        :func:`repro.ibe.kem.hybrid_encrypt_many` — with the static-key
        ablation (``use_nonce=False``) a 64-reading batch to one
        attribute pays one pairing instead of 64.  With per-message
        nonces every item is its own group and the cost matches
        :meth:`build_batch`.  Entry order always mirrors ``items`` so
        receipt statuses line up by position.
        """
        with self._tracer.span("sd.build_many") as span:
            span.annotate("items", len(items))
            epoch = self._current_epoch()
            nonces = [
                self._rng.randbytes(NONCE_LENGTH) if self._use_nonce else b""
                for _ in items
            ]
            groups: dict[bytes, list[int]] = {}
            for index, (attribute, _message) in enumerate(items):
                identity = identity_string(attribute, nonces[index], epoch)
                groups.setdefault(identity, []).append(index)
            ciphertexts: list[bytes] = [b""] * len(items)
            with self._tracer.span("sd.ibe_encrypt_many"):
                for identity, indexes in groups.items():
                    sealed = hybrid_encrypt_many(
                        self._public,
                        identity,
                        [items[index][1] for index in indexes],
                        cipher_name=self._cipher_name,
                        rng=self._rng,
                    )
                    for index, ciphertext in zip(indexes, sealed):
                        ciphertexts[index] = ciphertext.to_bytes()
            entries = [
                BatchEntry(
                    attribute=items[index][0],
                    nonce=nonces[index],
                    ciphertext=ciphertexts[index],
                    epoch=epoch,
                )
                for index in range(len(items))
            ]
            request = BatchDepositRequest(
                device_id=self.device_id,
                timestamp_us=self._clock.now_us(),
                entries=entries,
            )
            with self._tracer.span("sd.mac"):
                request.mac = compute_deposit_mac(
                    self._shared_key, request.mac_payload()
                )
            self.stats["deposits_built"] += len(entries)
            return request

    def deposit_many(
        self, channel: Channel, items: list[tuple[str, bytes]]
    ) -> BatchDepositReceipt:
        """Build and send a per-item batch; returns the itemised receipt.

        Unlike :meth:`deposit_batch` (all-or-nothing), item failures are
        reported in the receipt rather than raised — only an envelope
        rejection (bad MAC, stale timestamp) raises ``ProtocolError``.
        Retransmits reuse identical bytes, so the SDA replay cache
        returns the committed receipt on a duplicate.
        """
        raw = self.build_many(items).to_bytes()

        def attempt() -> BatchDepositReceipt:
            receipt = BatchDepositReceipt.from_bytes(channel.request(raw))
            if not receipt.accepted:
                raise ProtocolError(
                    f"MWS rejected batch from {self.device_id!r}: {receipt.error}"
                )
            return receipt

        return self.transport.call(attempt, transient=_DEPOSIT_TRANSIENT)

    def deposit(
        self, channel: Channel, attribute: str, message: bytes
    ) -> DepositResponse:
        """Build and send a deposit over ``channel``; returns the MWS reply.

        Raises :class:`ProtocolError` when the MWS rejects the deposit
        (after exhausting any retry budget).  Retransmits reuse the
        original request bytes — same timestamp, same MAC — so the SDA
        recognises them and replays the committed acknowledgement
        instead of storing twice or raising ``ReplayError``.
        """
        raw = self.build_deposit(attribute, message).to_bytes()

        def attempt() -> DepositResponse:
            with self._tracer.span("sd.deposit_attempt"):
                response = DepositResponse.from_bytes(channel.request(raw))
                if not response.accepted:
                    raise ProtocolError(
                        f"MWS rejected deposit from {self.device_id!r}: "
                        f"{response.error}"
                    )
                return response

        return self.transport.call(attempt, transient=_DEPOSIT_TRANSIENT)
