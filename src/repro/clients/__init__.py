"""Client-side implementations: smart devices (DC) and receiving clients (RC)."""

from repro.clients.receiving_client import ReceivingClient, RetrievedMessage
from repro.clients.smart_device import SmartDevice

__all__ = ["SmartDevice", "ReceivingClient", "RetrievedMessage"]
