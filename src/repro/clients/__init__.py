"""Client-side implementations: smart devices (DC) and receiving clients (RC)."""

from repro.clients.receiving_client import ReceivingClient, RetrievedMessage
from repro.clients.smart_device import SmartDevice
from repro.clients.transport import RetryingTransport, RetryPolicy

__all__ = [
    "SmartDevice",
    "ReceivingClient",
    "RetrievedMessage",
    "RetryPolicy",
    "RetryingTransport",
]
