"""The Receiving Client (RC): retrieval, PKG round-trip, decryption.

Implements the client side of §V.D's MWS–RC and RC–PKG phases:

1. authenticate to the gatekeeper with ``E(HashPassword, ID || T || N)``,
2. receive messages (labelled with opaque AIDs) and a sealed token,
3. open the token with the RC's RSA private key → session key + ticket,
4. authenticate to the PKG (ticket + authenticator),
5. per message, request ``sI`` for ``AID || Nonce`` and decrypt.

Extracted keys are cached by ``(AID, nonce)``; with per-message nonces
every message needs one extraction (the revocation trade-off the EXT-C
bench measures), while in static mode the cache hits after the first.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clients.transport import RetryingTransport, RetryPolicy
from repro.core.conventions import derive_password_key
from repro.errors import (
    AuthenticationError,
    CipherError,
    DecodeError,
    DecryptionError,
    NetworkError,
    ProtocolError,
    TicketError,
)
from repro.ibe.kem import HybridCiphertext, hybrid_decrypt
from repro.ibe.keys import PublicParams
from repro.ibe.reencrypt import is_wrapped, parse_wrap, unwrap_layer
from repro.mathlib.rand import RandomSource, SystemRandomSource
from repro.obs.tracing import NULL_TRACER
from repro.pairing.curve import Point
from repro.pki.rsa import RsaKeyPair, hybrid_open
from repro.sim.clock import Clock, WallClock
from repro.sim.network import Channel
from repro.storage.user_db import UserDatabase
from repro.symciph.cipher import SymmetricScheme
from repro.wire.messages import (
    Authenticator,
    KeyRequest,
    KeyResponse,
    PagedRetrieveRequest,
    PagedRetrieveResponse,
    PkgAuthRequest,
    PkgAuthResponse,
    RetrieveRequest,
    RetrieveResponse,
    StoredMessage,
    Token,
)

__all__ = ["ReceivingClient", "RetrievedMessage"]


@dataclass
class RetrievedMessage:
    """A decrypted message with its warehouse metadata."""

    message_id: int
    attribute_id: int
    plaintext: bytes
    deposited_at_us: int


class ReceivingClient:
    """A registered RC with its password and RSA key pair."""

    def __init__(
        self,
        rc_id: str,
        password: str,
        public_params: PublicParams,
        rsa_keypair: RsaKeyPair,
        clock: Clock | None = None,
        rng: RandomSource | None = None,
        gatekeeper_cipher: str = "DES",
        session_cipher: str = "AES-256",
        retry_policy: RetryPolicy | None = None,
        registry=None,
        tracer=None,
        crypto_cache=None,
    ) -> None:
        self.rc_id = rc_id
        self._password = password
        self._public = public_params
        #: Optional :class:`repro.ibe.cache.CryptoCache` shared with the
        #: rest of the deployment (cached values are public material).
        if crypto_cache is not None:
            public_params.cache = crypto_cache
        self._rsa = rsa_keypair
        self._clock = clock if clock is not None else WallClock()
        self._rng = rng if rng is not None else SystemRandomSource()
        self._gatekeeper_cipher = gatekeeper_cipher
        self._session_cipher = session_cipher
        #: Extracted keys by ``(AID, nonce, epoch)`` — the epoch is part
        #: of the identity, so keys for the same attribute at different
        #: epochs are unrelated points and must never alias.
        self._key_cache: dict[tuple[int, bytes, int], Point] = {}
        #: Cached live PKG session: (session_id, session_key) or None.
        self._pkg_session: tuple[bytes, bytes] | None = None
        self._tracer = tracer if tracer is not None else NULL_TRACER
        #: Retrying transport; every retrieval/PKG operation is either a
        #: pure read or rebuilt with a fresh nonce per attempt, so
        #: retries never trip the server-side replay caches.
        self.transport = RetryingTransport(
            retry_policy,
            self._clock,
            self._rng,
            registry=registry,
            name=f"client.rc.{rc_id}.transport",
        )
        stat_keys = (
            "retrievals",
            "pages_fetched",
            "keys_fetched",
            "cache_hits",
            "decrypted",
            "pkg_auths",
            "session_reuses",
        )
        if registry is not None:
            self.stats = registry.stats_dict(f"client.rc.{rc_id}", stat_keys)
        else:
            self.stats = {key: 0 for key in stat_keys}

    # -- phase 2: MWS-RC ----------------------------------------------------

    def build_retrieve_request(
        self, since_us: int = 0, assertion: bytes = b""
    ) -> RetrieveRequest:
        """``ID_RC || PubK_RC || E(HashPassword, ID_RC || T || N)``.

        With ``assertion`` (serialised IdP assertion) the password blob
        is omitted and the gatekeeper validates the assertion instead.
        """
        if assertion:
            return RetrieveRequest(
                rc_id=self.rc_id,
                rc_public_key=self._rsa.public.to_bytes(),
                auth_blob=b"",
                since_us=since_us,
                assertion=assertion,
            )
        nonce = self._rng.randbytes(16)
        payload = RetrieveRequest.auth_payload(
            self.rc_id, self._clock.now_us(), nonce
        )
        key = derive_password_key(
            UserDatabase.hash_password(self._password), self._gatekeeper_cipher
        )
        scheme = SymmetricScheme(self._gatekeeper_cipher, key, mac=True, rng=self._rng)
        return RetrieveRequest(
            rc_id=self.rc_id,
            rc_public_key=self._rsa.public.to_bytes(),
            auth_blob=scheme.seal(payload),
            since_us=since_us,
        )

    def retrieve(
        self, channel: Channel, since_us: int = 0, assertion: bytes = b""
    ) -> RetrieveResponse:
        """Authenticate and fetch messages + token from the MWS.

        ``since_us`` filters to messages deposited at or after that time
        (incremental polling); ``assertion`` selects IdP-assertion
        authentication.

        Each retry attempt rebuilds the request with a fresh nonce and
        timestamp — retrieval is a read, so rebuilding is safe and keeps
        the gatekeeper's nonce replay cache out of the way.
        """

        def attempt() -> RetrieveResponse:
            with self._tracer.span("rc.retrieve_attempt"):
                return attempt_inner()

        def attempt_inner() -> RetrieveResponse:
            raw = channel.request(
                self.build_retrieve_request(since_us, assertion).to_bytes()
            )
            # Re-raise the MWS's error as the matching local class so
            # callers can distinguish revocation from a bad password.
            self._raise_tagged_error(raw)
            return RetrieveResponse.from_bytes(raw[3:])

        response = self.transport.call(
            attempt, transient=(NetworkError, DecodeError, ProtocolError)
        )
        self.stats["retrievals"] += 1
        return response

    def build_page_request(
        self,
        page_size: int,
        cursor: int = 0,
        since_us: int = 0,
        assertion: bytes = b"",
    ) -> PagedRetrieveRequest:
        """A paged retrieval request with a fresh auth blob.

        Builders are per page: every page carries its own nonce and
        timestamp, so a paging loop never trips the gatekeeper's nonce
        replay cache.
        """
        base = self.build_retrieve_request(since_us, assertion)
        return PagedRetrieveRequest(
            rc_id=base.rc_id,
            rc_public_key=base.rc_public_key,
            auth_blob=base.auth_blob,
            page_size=page_size,
            cursor=cursor,
            since_us=since_us,
            assertion=base.assertion,
        )

    def retrieve_page(
        self,
        channel: Channel,
        page_size: int,
        cursor: int = 0,
        since_us: int = 0,
        assertion: bytes = b"",
    ) -> PagedRetrieveResponse:
        """Fetch one page of at most ``page_size`` messages.

        Retry attempts rebuild the request (fresh nonce/timestamp), the
        same discipline as :meth:`retrieve`.
        """

        def attempt() -> PagedRetrieveResponse:
            with self._tracer.span("rc.retrieve_page_attempt"):
                raw = channel.request(
                    self.build_page_request(
                        page_size, cursor, since_us, assertion
                    ).to_bytes()
                )
                self._raise_tagged_error(raw)
                return PagedRetrieveResponse.from_bytes(raw[3:])

        response = self.transport.call(
            attempt, transient=(NetworkError, DecodeError, ProtocolError)
        )
        self.stats["pages_fetched"] += 1
        return response

    def retrieve_all(
        self,
        channel: Channel,
        page_size: int = 64,
        since_us: int = 0,
        assertion: bytes = b"",
    ) -> tuple[Token, list[StoredMessage]]:
        """Drain the backlog in ``page_size`` chunks.

        Pages until the MWS reports no more messages; returns the token
        from the *last* page (the freshest ticket) plus every message in
        id order.  Memory on the wire stays bounded by ``page_size``
        regardless of backlog depth.
        """
        messages: list[StoredMessage] = []
        cursor = 0
        while True:
            page = self.retrieve_page(
                channel, page_size, cursor=cursor, since_us=since_us,
                assertion=assertion,
            )
            messages.extend(page.messages)
            cursor = page.next_cursor
            if not page.has_more:
                self.stats["retrievals"] += 1
                return self.open_token(page.token), messages

    def _raise_tagged_error(self, raw: bytes) -> None:
        """Map an ``ERR:Kind:detail`` reply onto the local error class."""
        if raw.startswith(b"ERR:"):
            parts = raw.split(b":", 2)
            kind = parts[1].decode() if len(parts) > 1 else "ProtocolError"
            detail = parts[2].decode() if len(parts) > 2 else ""
            import repro.errors as errors_module

            error_cls = getattr(errors_module, kind, ProtocolError)
            if not (
                isinstance(error_cls, type) and issubclass(error_cls, ProtocolError)
            ):
                error_cls = ProtocolError
            raise error_cls(f"MWS rejected retrieval: {detail}")
        if not raw.startswith(b"OK:"):
            raise ProtocolError("malformed MWS retrieval response")

    def open_token(self, sealed_token: bytes) -> Token:
        """Open the token with the RC's RSA private key."""
        with self._tracer.span("rc.open_token"):
            try:
                return Token.from_bytes(hybrid_open(self._rsa.private, sealed_token))
            except DecryptionError as exc:
                raise TicketError(f"token failed to open: {exc}") from exc

    # -- phase 3: RC-PKG --------------------------------------------------------

    def authenticate_to_pkg(self, channel: Channel, token: Token) -> bytes:
        """Ticket + authenticator handshake; returns the PKG session id.

        Each retry attempt seals a fresh authenticator (new timestamp),
        so a duplicated or retransmitted handshake never collides with
        the PKG's authenticator replay cache.
        """

        def attempt() -> PkgAuthResponse:
            with self._tracer.span("rc.pkg_auth_attempt"):
                authenticator = Authenticator(
                    rc_id=self.rc_id, timestamp_us=self._clock.now_us()
                )
                scheme = SymmetricScheme(
                    self._session_cipher, token.session_key, mac=True, rng=self._rng
                )
                request = PkgAuthRequest(
                    rc_id=self.rc_id,
                    sealed_ticket=token.sealed_ticket,
                    sealed_authenticator=scheme.seal(authenticator.to_bytes()),
                )
                response = PkgAuthResponse.from_bytes(
                    channel.request(b"\x01" + request.to_bytes())
                )
                if not response.ok:
                    raise TicketError(
                        f"PKG rejected authentication: {response.error}"
                    )
                return response

        response = self.transport.call(
            attempt, transient=(NetworkError, DecodeError, TicketError)
        )
        self._pkg_session = (response.session_id, token.session_key)
        self.stats["pkg_auths"] += 1
        return response.session_id

    def fetch_key(
        self,
        channel: Channel,
        session_id: bytes,
        session_key: bytes,
        attribute_id: int,
        nonce: bytes,
        epoch: int = 0,
    ) -> Point:
        """Obtain ``sI`` for ``AID || Nonce || Epoch`` (cached per triple)."""
        cache_key = (attribute_id, nonce, epoch)
        cached = self._key_cache.get(cache_key)
        if cached is not None:
            self.stats["cache_hits"] += 1
            return cached
        raw = (
            b"\x02"
            + KeyRequest(
                session_id=session_id,
                attribute_id=attribute_id,
                nonce=nonce,
                epoch=epoch,
            ).to_bytes()
        )

        def attempt() -> Point:
            # A pure idempotent read: resending the same bytes is safe.
            with self._tracer.span("rc.fetch_key_attempt"):
                response = KeyResponse.from_bytes(channel.request(raw))
                if not response.ok:
                    raise TicketError(
                        f"PKG refused key extraction: {response.error}"
                    )
                scheme = SymmetricScheme(self._session_cipher, session_key, mac=True)
                return self._public.params.curve.from_bytes(
                    scheme.open(response.sealed_key)
                )

        # TicketError is deliberately NOT transient here: it signals an
        # expired session, which retrieve_and_decrypt cures by
        # re-authenticating, not by resending the same session id.
        point = self.transport.call(
            attempt,
            transient=(NetworkError, DecodeError, CipherError, DecryptionError),
        )
        self._key_cache[cache_key] = point
        self.stats["keys_fetched"] += 1
        return point

    # -- end-to-end convenience ---------------------------------------------------

    def decrypt_message(self, message: StoredMessage, private_point: Point) -> bytes:
        with self._tracer.span("rc.ibe_decrypt"):
            return self._decrypt_base(
                message, message.ciphertext, private_point, message.epoch
            )

    def _decrypt_base(
        self,
        message: StoredMessage,
        ciphertext_bytes: bytes,
        private_point: Point,
        epoch: int,
    ) -> bytes:
        """Decrypt the base hybrid layer with the key for ``epoch``."""
        ciphertext = HybridCiphertext.from_bytes(
            ciphertext_bytes, self._public.params
        )
        try:
            plaintext = hybrid_decrypt(self._public, private_point, ciphertext)
        except DecryptionError:
            # A failed decrypt implicates the cached key as much as the
            # ciphertext: the key request travels unauthenticated, so a
            # bit-flip in transit makes the PKG extract a key for the
            # wrong identity — which the client would otherwise cache
            # under the right one and fail with forever.  Evict so a
            # retry re-fetches.
            self._key_cache.pop(
                (message.attribute_id, message.nonce, epoch), None
            )
            raise
        self.stats["decrypted"] += 1
        return plaintext

    def retrieve_and_decrypt(
        self,
        mws_channel: Channel,
        pkg_channel: Channel,
    ) -> list[RetrievedMessage]:
        """The full client-side pipeline across both phases.

        A live PKG session from a previous retrieval is reused (saving
        the ticket/authenticator handshake); on session expiry the
        client transparently re-authenticates with the fresh token and
        retries.

        With a :class:`RetryPolicy`, a failure anywhere in the pipeline
        — including a decryption failure from a response corrupted in
        transit — restarts the whole retrieval, so the client either
        returns correctly decrypted messages or raises.
        """
        return self.transport.call(
            lambda: self._retrieve_and_decrypt_once(mws_channel, pkg_channel),
            transient=(
                NetworkError,
                DecodeError,
                ProtocolError,
                CipherError,
                DecryptionError,
            ),
        )

    def _retrieve_and_decrypt_once(
        self,
        mws_channel: Channel,
        pkg_channel: Channel,
    ) -> list[RetrievedMessage]:
        """One attempt of the full pipeline (see retrieve_and_decrypt)."""
        response = self.retrieve(mws_channel)
        token = self.open_token(response.token)
        if not response.messages:
            return []
        if self._pkg_session is not None:
            session = self._pkg_session
            self.stats["session_reuses"] += 1
        else:
            session = (
                self.authenticate_to_pkg(pkg_channel, token),
                token.session_key,
            )

        def fetch(attribute_id: int, nonce: bytes, epoch: int) -> Point:
            nonlocal session
            try:
                return self.fetch_key(
                    pkg_channel, session[0], session[1],
                    attribute_id, nonce, epoch=epoch,
                )
            except TicketError:
                # Cached session expired server-side: re-auth and retry.
                # A revocation denial also lands here — the fresh
                # session fails identically and the error propagates.
                self._pkg_session = None
                session = (
                    self.authenticate_to_pkg(pkg_channel, token),
                    token.session_key,
                )
                return self.fetch_key(
                    pkg_channel, session[0], session[1],
                    attribute_id, nonce, epoch=epoch,
                )

        results = []
        for message in response.messages:
            # Peel re-encryption wraps outermost-in: each layer's header
            # names the epoch whose key opens it, so one extraction per
            # layer walks back to the original deposit.
            ciphertext = message.ciphertext
            layer_epoch = message.epoch
            while is_wrapped(ciphertext):
                outer_epoch, _inner, _sealed = parse_wrap(ciphertext)
                point = fetch(message.attribute_id, message.nonce, outer_epoch)
                with self._tracer.span("rc.unwrap_layer"):
                    try:
                        layer_epoch, ciphertext = unwrap_layer(
                            self._public, point, ciphertext
                        )
                    except DecryptionError:
                        # Same poisoned-cache hazard as the base layer:
                        # evict the layer key so a retry re-fetches.
                        self._key_cache.pop(
                            (message.attribute_id, message.nonce, outer_epoch),
                            None,
                        )
                        raise
            private_point = fetch(
                message.attribute_id, message.nonce, layer_epoch
            )
            with self._tracer.span("rc.ibe_decrypt"):
                plaintext = self._decrypt_base(
                    message, ciphertext, private_point, layer_epoch
                )
            results.append(
                RetrievedMessage(
                    message_id=message.message_id,
                    attribute_id=message.attribute_id,
                    plaintext=plaintext,
                    deposited_at_us=message.deposited_at_us,
                )
            )
        return results
