"""Resilient client transport: bounded retries with deterministic backoff.

The paper assumes a reliable LAN between its four servers; real
deployments (and the chaos suite) do not get one.  This module gives
the depositing and receiving clients a :class:`RetryPolicy` — maximum
attempts, exponential backoff, deterministic jitter — and a
:class:`RetryingTransport` that executes one protocol operation under
that policy, absorbing transient :class:`NetworkError`\\ s and
corruption-induced protocol failures.

Backoff *advances the simulated clock* when the client holds a
:class:`SimClock`, so chaos soaks with thousands of retries finish in
milliseconds of wall time and remain bit-for-bit reproducible; under a
:class:`WallClock` it really sleeps.

Safety: retries are only sound because every retried operation is
idempotent — deposits are retransmitted byte-identically and the SDA
replays the cached response for a seen MAC (see
``repro.mws.authenticator``), while retrieval/key-fetch operations are
reads rebuilt with fresh nonces so replay caches never trip.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import (
    ChannelClosedError,
    DecodeError,
    NetworkError,
    RetriesExhaustedError,
)
from repro.mathlib.rand import RandomSource
from repro.sim.clock import Clock, SimClock

__all__ = ["RetryPolicy", "RetryingTransport", "DEFAULT_TRANSIENT"]

#: Failures every operation may retry: transport loss and corrupted
#: responses that no longer parse.  Clients widen this per operation
#: (e.g. a deposit also retries MWS rejections, since a rejection of a
#: corrupted request is cured by retransmitting the clean bytes).
DEFAULT_TRANSIENT: tuple[type[Exception], ...] = (NetworkError, DecodeError)


@dataclass(frozen=True)
class RetryPolicy:
    """How hard a client tries before surfacing a failure.

    Backoff for the ``n``-th retry is
    ``min(base_backoff_us * multiplier**(n-1), max_backoff_us)`` plus a
    deterministic jitter of ``±jitter`` (a fraction) drawn from the
    client's seeded :class:`RandomSource`, so two clients sharing a plan
    never synchronise their retry storms yet every run replays exactly.
    """

    max_attempts: int = 4
    base_backoff_us: int = 50_000
    multiplier: float = 2.0
    max_backoff_us: int = 2_000_000
    jitter: float = 0.1

    def backoff_us(self, failures: int, rng: RandomSource | None) -> int:
        """Pause before the retry following the ``failures``-th failure."""
        raw = self.base_backoff_us * self.multiplier ** max(0, failures - 1)
        raw = min(int(raw), self.max_backoff_us)
        if self.jitter and rng is not None:
            span = int(raw * self.jitter)
            if span:
                raw += rng.randbelow(2 * span + 1) - span
        return max(0, raw)


class RetryingTransport:
    """Executes operations under a :class:`RetryPolicy`.

    With ``policy=None`` every call is a single attempt and failures
    propagate untouched — the pre-resilience behaviour, so callers can
    route through the transport unconditionally.
    """

    def __init__(
        self,
        policy: RetryPolicy | None,
        clock: Clock,
        rng: RandomSource | None = None,
        registry=None,
        name: str = "transport",
    ) -> None:
        self.policy = policy
        self._clock = clock
        self._rng = rng
        keys = ("attempts", "retries", "recovered", "exhausted")
        if registry is not None:
            self.stats = registry.stats_dict(name, keys)
        else:
            self.stats = {key: 0 for key in keys}

    def _pause(self, backoff_us: int) -> None:
        if backoff_us <= 0:
            return
        if isinstance(self._clock, SimClock):
            self._clock.advance(backoff_us)
        else:
            time.sleep(backoff_us / 1_000_000)

    def call(
        self,
        operation,
        transient: tuple[type[Exception], ...] = DEFAULT_TRANSIENT,
    ):
        """Run ``operation()`` until it succeeds or the budget is spent.

        ``transient`` lists the exception types worth retrying; a
        :class:`ChannelClosedError` is never retried (the channel will
        not reopen by itself).  On exhaustion the last *protocol* error
        re-raises as itself — so a wrong password still surfaces as
        ``AuthenticationError`` — while a final transport loss raises
        :class:`RetriesExhaustedError` chained to the last drop.
        """
        policy = self.policy
        failures = 0
        while True:
            self.stats["attempts"] += 1
            try:
                result = operation()
            except ChannelClosedError:
                raise
            except transient as exc:
                failures += 1
                if policy is None or failures >= policy.max_attempts:
                    self.stats["exhausted"] += 1
                    if policy is not None and isinstance(exc, NetworkError):
                        raise RetriesExhaustedError(
                            f"gave up after {failures} attempt(s): {exc}"
                        ) from exc
                    raise
                self.stats["retries"] += 1
                self._pause(policy.backoff_us(failures, self._rng))
            else:
                if failures:
                    self.stats["recovered"] += 1
                return result
