"""Conventional public-key infrastructure: RSA and a minimal X.509.

Two roles in the reproduction:

1. The protocol's Token is ``E(PubK_RC, ...)`` — a conventional PKE
   under the RC's public key; :mod:`repro.pki.rsa` provides it.
2. The paper's introduction argues certificate-based PKI is too heavy
   for this setting; :mod:`repro.pki.baseline` implements that
   certificate-based alternative end-to-end so benchmark EXT-A can
   quantify the claim instead of repeating it.
"""

from repro.pki.baseline import PkiBaselineDeployment
from repro.pki.rsa import RsaKeyPair, RsaPrivateKey, RsaPublicKey, generate_rsa_keypair
from repro.pki.x509lite import Certificate, CertificateAuthority, verify_chain

__all__ = [
    "RsaPublicKey",
    "RsaPrivateKey",
    "RsaKeyPair",
    "generate_rsa_keypair",
    "Certificate",
    "CertificateAuthority",
    "verify_chain",
    "PkiBaselineDeployment",
]
