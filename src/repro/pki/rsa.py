"""RSA from scratch: keygen, OAEP encryption, PSS-style signatures.

Built on the library's own Miller–Rabin prime generation and SHA-256.
Used for (a) the protocol's Token (sealed under the RC's public key) and
(b) the certificate-PKI baseline of benchmark EXT-A.

Implementation notes:

* OAEP (RFC 8017 §7.1) with SHA-256 and MGF1-SHA-256.
* Signatures use a deterministic full-domain-hash-with-prefix padding
  (PKCS#1 v1.5 style DigestInfo) — simple, verifiable, and adequate for
  a research artefact.
* Decryption uses the CRT speed-up.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DecodeError, DecryptionError, ParameterError
from repro.hashes.sha256 import sha256
from repro.mathlib.modular import inverse_mod
from repro.mathlib.primes import generate_prime
from repro.mathlib.rand import RandomSource, SystemRandomSource
from repro.wire.encoding import Reader, Writer

__all__ = [
    "RsaPublicKey",
    "RsaPrivateKey",
    "RsaKeyPair",
    "generate_rsa_keypair",
    "hybrid_seal",
    "hybrid_open",
]

_HASH_LEN = 32  # SHA-256
_DIGEST_PREFIX = b"repro-rsa-sig-sha256:"


def _mgf1(seed: bytes, length: int) -> bytes:
    output = b""
    counter = 0
    while len(output) < length:
        output += sha256(seed + counter.to_bytes(4, "big"))
        counter += 1
    return output[:length]


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


@dataclass
class RsaPublicKey:
    """``(n, e)`` with OAEP encryption and signature verification."""

    n: int
    e: int

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def max_message_length(self) -> int:
        """Longest OAEP plaintext this key can carry.

        Negative for moduli under 528 bits: OAEP-SHA-256 needs
        ``2 * 32 + 2`` bytes of overhead, so practical keys start at
        768 bits.
        """
        return self.byte_length - 2 * _HASH_LEN - 2

    def encrypt(self, message: bytes, rng: RandomSource | None = None) -> bytes:
        """RSAES-OAEP encryption (label empty)."""
        rng = rng if rng is not None else SystemRandomSource()
        k = self.byte_length
        if len(message) > self.max_message_length():
            raise ParameterError(
                f"message too long for RSA-OAEP: {len(message)} > "
                f"{self.max_message_length()}"
            )
        l_hash = sha256(b"")
        padding = b"\x00" * (k - len(message) - 2 * _HASH_LEN - 2)
        data_block = l_hash + padding + b"\x01" + message
        seed = rng.randbytes(_HASH_LEN)
        masked_db = _xor(data_block, _mgf1(seed, k - _HASH_LEN - 1))
        masked_seed = _xor(seed, _mgf1(masked_db, _HASH_LEN))
        encoded = b"\x00" + masked_seed + masked_db
        cipher_int = pow(int.from_bytes(encoded, "big"), self.e, self.n)
        return cipher_int.to_bytes(k, "big")

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Verify a signature produced by :meth:`RsaPrivateKey.sign`."""
        if len(signature) != self.byte_length:
            return False
        sig_int = int.from_bytes(signature, "big")
        if sig_int >= self.n:
            return False
        recovered = pow(sig_int, self.e, self.n).to_bytes(self.byte_length, "big")
        return recovered == _signature_encoding(message, self.byte_length)

    def to_bytes(self) -> bytes:
        """Serialise to the canonical byte encoding."""
        return Writer().bigint(self.n).bigint(self.e).getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "RsaPublicKey":
        """Parse an instance from its canonical byte encoding."""
        reader = Reader(data)
        key = cls(n=reader.bigint(), e=reader.bigint())
        reader.finish()
        if key.n < 3 or key.e < 3:
            raise DecodeError("implausible RSA public key")
        return key


@dataclass
class RsaPrivateKey:
    """Full private key with CRT components."""

    n: int
    e: int
    d: int
    p: int
    q: int

    def __post_init__(self) -> None:
        self._d_p = self.d % (self.p - 1)
        self._d_q = self.d % (self.q - 1)
        self._q_inv = inverse_mod(self.q, self.p)

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def public_key(self) -> RsaPublicKey:
        return RsaPublicKey(n=self.n, e=self.e)

    def _private_op(self, value: int) -> int:
        # CRT: roughly 3-4x faster than pow(value, d, n).
        m_p = pow(value % self.p, self._d_p, self.p)
        m_q = pow(value % self.q, self._d_q, self.q)
        h = (m_p - m_q) * self._q_inv % self.p
        return m_q + h * self.q

    def decrypt(self, ciphertext: bytes) -> bytes:
        """RSAES-OAEP decryption; raises :class:`DecryptionError` on any
        padding inconsistency."""
        k = self.byte_length
        if len(ciphertext) != k:
            raise DecryptionError(
                f"RSA ciphertext must be {k} bytes, got {len(ciphertext)}"
            )
        cipher_int = int.from_bytes(ciphertext, "big")
        if cipher_int >= self.n:
            raise DecryptionError("RSA ciphertext out of range")
        encoded = self._private_op(cipher_int).to_bytes(k, "big")
        if encoded[0] != 0:
            raise DecryptionError("OAEP decoding failed")
        masked_seed = encoded[1 : 1 + _HASH_LEN]
        masked_db = encoded[1 + _HASH_LEN :]
        seed = _xor(masked_seed, _mgf1(masked_db, _HASH_LEN))
        data_block = _xor(masked_db, _mgf1(seed, k - _HASH_LEN - 1))
        if data_block[:_HASH_LEN] != sha256(b""):
            raise DecryptionError("OAEP decoding failed")
        separator = data_block.find(b"\x01", _HASH_LEN)
        if separator == -1 or any(data_block[_HASH_LEN:separator]):
            raise DecryptionError("OAEP decoding failed")
        return data_block[separator + 1 :]

    def sign(self, message: bytes) -> bytes:
        """Deterministic hash-and-pad signature."""
        encoded = _signature_encoding(message, self.byte_length)
        sig_int = self._private_op(int.from_bytes(encoded, "big"))
        return sig_int.to_bytes(self.byte_length, "big")

    def to_bytes(self) -> bytes:
        """Serialise to the canonical byte encoding."""
        return (
            Writer()
            .bigint(self.n)
            .bigint(self.e)
            .bigint(self.d)
            .bigint(self.p)
            .bigint(self.q)
            .getvalue()
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "RsaPrivateKey":
        """Parse an instance from its canonical byte encoding."""
        reader = Reader(data)
        key = cls(
            n=reader.bigint(),
            e=reader.bigint(),
            d=reader.bigint(),
            p=reader.bigint(),
            q=reader.bigint(),
        )
        reader.finish()
        return key


@dataclass
class RsaKeyPair:
    private: RsaPrivateKey

    @property
    def public(self) -> RsaPublicKey:
        return self.private.public_key()


def _signature_encoding(message: bytes, length: int) -> bytes:
    """PKCS#1-v1.5-style deterministic encoding of H(message)."""
    digest_info = _DIGEST_PREFIX + sha256(message)
    if length < len(digest_info) + 11:
        raise ParameterError(f"RSA modulus too small for signatures ({length} bytes)")
    padding = b"\xff" * (length - len(digest_info) - 3)
    return b"\x00\x01" + padding + b"\x00" + digest_info


def generate_rsa_keypair(
    bits: int = 2048, rng: RandomSource | None = None, e: int = 65537
) -> RsaKeyPair:
    """Generate an RSA key pair with an exactly ``bits``-bit modulus."""
    if bits < 512:
        raise ParameterError(f"RSA modulus must be at least 512 bits, got {bits}")
    rng = rng if rng is not None else SystemRandomSource()
    half = bits // 2
    while True:
        p = generate_prime(half, rng=rng, condition=lambda c: c % e != 1)
        q = generate_prime(bits - half, rng=rng, condition=lambda c: c % e != 1)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        d = inverse_mod(e, phi)
        return RsaKeyPair(private=RsaPrivateKey(n=n, e=e, d=d, p=p, q=q))


def hybrid_seal(
    public_key: RsaPublicKey,
    plaintext: bytes,
    cipher_name: str = "AES-128",
    rng: RandomSource | None = None,
) -> bytes:
    """RSA-KEM + symmetric seal for payloads beyond OAEP capacity.

    Wraps a fresh symmetric key under RSA-OAEP and seals the payload
    with :class:`repro.symciph.cipher.SymmetricScheme` (MAC'd CBC).
    This is how the protocol's Token = E(PubK_RC, ...) is realised.
    """
    from repro.symciph.cipher import CIPHER_REGISTRY, SymmetricScheme

    rng = rng if rng is not None else SystemRandomSource()
    key = rng.randbytes(CIPHER_REGISTRY[cipher_name].key_size)
    scheme = SymmetricScheme(cipher_name, key, mac=True, rng=rng)
    return (
        Writer()
        .text(cipher_name)
        .blob(public_key.encrypt(key, rng))
        .blob(scheme.seal(plaintext))
        .getvalue()
    )


def hybrid_open(private_key: RsaPrivateKey, sealed: bytes) -> bytes:
    """Inverse of :func:`hybrid_seal`; raises on any tampering."""
    from repro.symciph.cipher import SymmetricScheme

    reader = Reader(sealed)
    cipher_name = reader.text()
    wrapped_key = reader.blob()
    body = reader.blob()
    reader.finish()
    key = private_key.decrypt(wrapped_key)
    scheme = SymmetricScheme(cipher_name, key, mac=True)
    return scheme.open(body)
