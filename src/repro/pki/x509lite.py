"""A minimal certificate infrastructure ("x509lite").

Implements just enough of the certificate machinery the paper's §I
dismisses — subject binding, CA signatures, validity windows, chain
verification, revocation lists — so the EXT-A benchmark can price it
honestly against the IBE approach.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AuthenticationError, DecodeError
from repro.pki.rsa import RsaKeyPair, RsaPublicKey, generate_rsa_keypair
from repro.mathlib.rand import RandomSource
from repro.wire.encoding import Reader, Writer

__all__ = ["Certificate", "CertificateAuthority", "verify_chain"]


@dataclass
class Certificate:
    """Subject name + public key, signed by an issuer."""

    subject: str
    issuer: str
    public_key: RsaPublicKey
    serial: int
    not_before_us: int
    not_after_us: int
    signature: bytes = b""

    def tbs_bytes(self) -> bytes:
        """The to-be-signed encoding (everything except the signature)."""
        return (
            Writer()
            .text(self.subject)
            .text(self.issuer)
            .blob(self.public_key.to_bytes())
            .u64(self.serial)
            .u64(self.not_before_us)
            .u64(self.not_after_us)
            .getvalue()
        )

    def to_bytes(self) -> bytes:
        """Serialise to the canonical byte encoding."""
        return Writer().blob(self.tbs_bytes()).blob(self.signature).getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "Certificate":
        """Parse an instance from its canonical byte encoding."""
        outer = Reader(data)
        tbs = outer.blob()
        signature = outer.blob()
        outer.finish()
        reader = Reader(tbs)
        certificate = cls(
            subject=reader.text(),
            issuer=reader.text(),
            public_key=RsaPublicKey.from_bytes(reader.blob()),
            serial=reader.u64(),
            not_before_us=reader.u64(),
            not_after_us=reader.u64(),
            signature=signature,
        )
        reader.finish()
        return certificate

    def is_valid_at(self, now_us: int) -> bool:
        return self.not_before_us <= now_us <= self.not_after_us


class CertificateAuthority:
    """A CA: issues, verifies and revokes certificates.

    Supports intermediate CAs (an intermediate is just a CA whose own
    certificate was issued by a parent), which lets EXT-A price chains
    of realistic depth.
    """

    DEFAULT_LIFETIME_US = 365 * 24 * 3600 * 1_000_000

    def __init__(
        self,
        name: str,
        rng: RandomSource | None = None,
        key_bits: int = 1024,
        keypair: RsaKeyPair | None = None,
    ) -> None:
        self.name = name
        self._keypair = (
            keypair if keypair is not None else generate_rsa_keypair(key_bits, rng=rng)
        )
        self._next_serial = 1
        self._revoked_serials: set[int] = set()
        self.certificate: Certificate | None = None  # set for intermediates

    @property
    def public_key(self) -> RsaPublicKey:
        return self._keypair.public

    def self_signed(self, now_us: int) -> Certificate:
        """Produce (and remember) this CA's self-signed root certificate."""
        certificate = self.issue(self.name, self.public_key, now_us)
        self.certificate = certificate
        return certificate

    def issue(
        self,
        subject: str,
        public_key: RsaPublicKey,
        now_us: int,
        lifetime_us: int | None = None,
    ) -> Certificate:
        """Sign a certificate binding ``subject`` to ``public_key``."""
        lifetime_us = lifetime_us if lifetime_us is not None else self.DEFAULT_LIFETIME_US
        certificate = Certificate(
            subject=subject,
            issuer=self.name,
            public_key=public_key,
            serial=self._next_serial,
            not_before_us=now_us,
            not_after_us=now_us + lifetime_us,
        )
        self._next_serial += 1
        certificate.signature = self._keypair.private.sign(certificate.tbs_bytes())
        return certificate

    def revoke(self, serial: int) -> None:
        self._revoked_serials.add(serial)

    def is_revoked(self, serial: int) -> bool:
        return serial in self._revoked_serials

    def crl(self) -> set[int]:
        """The certificate revocation list (copy)."""
        return set(self._revoked_serials)


def verify_chain(
    chain: list[Certificate],
    trusted_root: Certificate,
    now_us: int,
    crls: dict[str, set[int]] | None = None,
) -> None:
    """Verify ``chain`` (leaf first) up to ``trusted_root``.

    Checks signatures, issuer/subject linkage, validity windows and
    optional per-issuer CRLs.  Raises :class:`AuthenticationError` with a
    specific reason on the first failure; returns None on success.
    """
    if not chain:
        raise AuthenticationError("empty certificate chain")
    crls = crls or {}
    for index, certificate in enumerate(chain):
        if not certificate.is_valid_at(now_us):
            raise AuthenticationError(
                f"certificate for {certificate.subject!r} outside validity window"
            )
        if certificate.serial in crls.get(certificate.issuer, set()):
            raise AuthenticationError(
                f"certificate for {certificate.subject!r} is revoked"
            )
        issuer_cert = chain[index + 1] if index + 1 < len(chain) else trusted_root
        if certificate.issuer != issuer_cert.subject:
            raise AuthenticationError(
                f"chain broken: {certificate.subject!r} issued by "
                f"{certificate.issuer!r}, next link is {issuer_cert.subject!r}"
            )
        if not issuer_cert.public_key.verify(
            certificate.tbs_bytes(), certificate.signature
        ):
            raise AuthenticationError(
                f"bad signature on certificate for {certificate.subject!r}"
            )
    # Finally anchor the root itself.
    if not trusted_root.is_valid_at(now_us):
        raise AuthenticationError("trusted root outside validity window")
    if not trusted_root.public_key.verify(
        trusted_root.tbs_bytes(), trusted_root.signature
    ):
        raise AuthenticationError("trusted root certificate is not self-consistent")
