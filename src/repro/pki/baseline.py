"""The certificate-based alternative the paper argues against (§I).

In this baseline there is no IBE: a depositing device must know, fetch
and validate a certificate for *every* receiving client class, then
encrypt a copy of the message per recipient (RSA-KEM + symmetric).
Adding a recipient means provisioning every device with a new
certificate; revocation means distributing CRLs to every device.

Benchmark EXT-A runs this deployment against the IBE one on identical
workloads to quantify the paper's two claims: per-message cost when
recipients multiply, and key-management cost when recipients change.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AccessDeniedError, UnknownIdentityError
from repro.mathlib.rand import RandomSource, SystemRandomSource
from repro.pki.rsa import RsaKeyPair, generate_rsa_keypair
from repro.pki.x509lite import Certificate, CertificateAuthority, verify_chain
from repro.sim.clock import Clock, WallClock
from repro.symciph.cipher import CIPHER_REGISTRY, SymmetricScheme
from repro.wire.encoding import Reader, Writer

__all__ = ["PkiBaselineDeployment", "PkiEnvelope"]


@dataclass
class PkiEnvelope:
    """One deposited message: a per-recipient wrapped key + shared body."""

    wrapped_keys: dict[str, bytes]  # recipient subject -> RSA-OAEP(key)
    cipher_name: str
    sealed_body: bytes

    def to_bytes(self) -> bytes:
        """Serialise to the canonical byte encoding."""
        writer = Writer().text(self.cipher_name).blob(self.sealed_body)
        writer.u32(len(self.wrapped_keys))
        for subject in sorted(self.wrapped_keys):
            writer.text(subject).blob(self.wrapped_keys[subject])
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "PkiEnvelope":
        """Parse an instance from its canonical byte encoding."""
        reader = Reader(data)
        cipher_name = reader.text()
        sealed_body = reader.blob()
        count = reader.u32()
        wrapped_keys = {}
        for _ in range(count):
            subject = reader.text()
            wrapped_keys[subject] = reader.blob()
        reader.finish()
        return cls(
            wrapped_keys=wrapped_keys,
            cipher_name=cipher_name,
            sealed_body=sealed_body,
        )


class PkiBaselineDeployment:
    """An end-to-end certificate-PKI message warehouse.

    Single root CA, per-recipient certificates, devices hold the root
    and must fetch + verify recipient chains before each deposit (a
    device-side certificate cache models the realistic middle ground and
    can be disabled for the worst case).
    """

    def __init__(
        self,
        cipher_name: str = "AES-128",
        rsa_bits: int = 1024,
        rng: RandomSource | None = None,
        clock: Clock | None = None,
        device_cert_cache: bool = True,
    ) -> None:
        self._rng = rng if rng is not None else SystemRandomSource()
        self._clock = clock if clock is not None else WallClock()
        self._cipher_name = cipher_name
        self._rsa_bits = rsa_bits
        self._ca = CertificateAuthority("root-ca", rng=self._rng, key_bits=rsa_bits)
        self._root = self._ca.self_signed(self._clock.now_us())
        self._recipients: dict[str, tuple[RsaKeyPair, Certificate]] = {}
        self._warehouse: list[PkiEnvelope] = []
        self._device_cache_enabled = device_cert_cache
        self._device_cert_cache: dict[str, Certificate] = {}
        #: Counters the EXT-A benchmark reads out.
        self.stats = {
            "chain_verifications": 0,
            "rsa_wraps": 0,
            "certs_issued": 0,
            "crl_distributions": 0,
        }

    # -- enrolment ----------------------------------------------------------

    def enroll_recipient(self, subject: str) -> Certificate:
        """Provision a recipient: keygen + CA-signed certificate.

        This is the operation the paper contrasts with IBE's "just add a
        policy row": every enrolment mints key material and (without the
        cache) touches every device.
        """
        keypair = generate_rsa_keypair(self._rsa_bits, rng=self._rng)
        certificate = self._ca.issue(subject, keypair.public, self._clock.now_us())
        self._recipients[subject] = (keypair, certificate)
        self.stats["certs_issued"] += 1
        self._device_cert_cache.pop(subject, None)  # force re-fetch
        return certificate

    def revoke_recipient(self, subject: str) -> None:
        """Revoke: CRL update that every device must subsequently consult."""
        entry = self._recipients.get(subject)
        if entry is None:
            raise UnknownIdentityError(f"recipient {subject!r} not enrolled")
        self._ca.revoke(entry[1].serial)
        self.stats["crl_distributions"] += 1

    def _fetch_and_verify(self, subject: str) -> Certificate:
        if self._device_cache_enabled and subject in self._device_cert_cache:
            cached = self._device_cert_cache[subject]
            if not self._ca.is_revoked(cached.serial):
                return cached
        entry = self._recipients.get(subject)
        if entry is None:
            raise UnknownIdentityError(f"recipient {subject!r} not enrolled")
        certificate = entry[1]
        verify_chain(
            [certificate],
            self._root,
            self._clock.now_us(),
            crls={self._ca.name: self._ca.crl()},
        )
        self.stats["chain_verifications"] += 1
        if self._device_cache_enabled:
            self._device_cert_cache[subject] = certificate
        return certificate

    # -- data path ------------------------------------------------------------

    def deposit(self, message: bytes, recipients: list[str]) -> PkiEnvelope:
        """Device-side deposit: verify every recipient chain, wrap a fresh
        symmetric key per recipient, seal one body."""
        key_size = CIPHER_REGISTRY[self._cipher_name].key_size
        session_key = self._rng.randbytes(key_size)
        scheme = SymmetricScheme(self._cipher_name, session_key, mac=True, rng=self._rng)
        wrapped: dict[str, bytes] = {}
        for subject in recipients:
            certificate = self._fetch_and_verify(subject)
            wrapped[subject] = certificate.public_key.encrypt(session_key, self._rng)
            self.stats["rsa_wraps"] += 1
        envelope = PkiEnvelope(
            wrapped_keys=wrapped,
            cipher_name=self._cipher_name,
            sealed_body=scheme.seal(message),
        )
        self._warehouse.append(envelope)
        return envelope

    def retrieve(self, subject: str) -> list[bytes]:
        """Recipient-side retrieval: unwrap + decrypt every addressed message."""
        entry = self._recipients.get(subject)
        if entry is None:
            raise UnknownIdentityError(f"recipient {subject!r} not enrolled")
        keypair, certificate = entry
        if self._ca.is_revoked(certificate.serial):
            raise AccessDeniedError(f"certificate for {subject!r} is revoked")
        plaintexts = []
        for envelope in self._warehouse:
            wrapped = envelope.wrapped_keys.get(subject)
            if wrapped is None:
                continue
            session_key = keypair.private.decrypt(wrapped)
            scheme = SymmetricScheme(envelope.cipher_name, session_key, mac=True)
            plaintexts.append(scheme.open(envelope.sealed_body))
        return plaintexts

    @property
    def warehouse_size(self) -> int:
        return len(self._warehouse)
