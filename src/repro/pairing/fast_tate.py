"""Fast reduced Tate pairing: denominator elimination + fixed-argument reuse.

Two layers on top of :mod:`repro.pairing.miller`'s projective loop:

``tate_pairing_fast``
    A drop-in equivalent of :func:`repro.pairing.tate.tate_pairing` for a
    base-field first argument.  The Miller function is kept as a
    (numerator, denominator) pair and the division is *eliminated*: for
    ``d`` in F_p^2, ``1/d`` and ``conj(d)`` differ by the norm
    ``N(d) = d * conj(d)`` which lies in F_p^*, and every F_p^* element
    is killed by the final exponentiation (``c^(p-1) = 1`` and
    ``(p+1)/q`` is an integer).  So ``(num * conj(den))^((p^2-1)/q)``
    equals ``(num / den)^((p^2-1)/q)`` — bit-for-bit, one field
    inversion per pairing (inside the final exponentiation) instead of
    one per Miller step.

``FixedArgumentTate``
    For a *fixed* first argument P the Miller line coefficients depend
    only on P and q, so they are precomputed once; each subsequent
    pairing replays them against a new evaluation point (multiply-only).
    This is the pairing-side companion of
    :class:`repro.pairing.precompute.FixedBasePoint`, and the engine
    behind the identity-keyed cache in :mod:`repro.ibe.cache` — the
    protocol pairs everything against the fixed public key ``P_pub``
    (using the modified pairing's symmetry ``e(Q, P_pub) = e(P_pub, Q)``).
"""

from __future__ import annotations

from repro.errors import PairingError
from repro.obs import crypto as _obs_crypto
from repro.pairing.curve import Curve, Point
from repro.pairing.fields import Fp2, Fp2Element
from repro.pairing.miller import (
    evaluate_line_coefficients,
    miller_line_coefficients,
    miller_loop_projective,
)
from repro.pairing.montgomery import MontgomeryFixedTable
from repro.pairing.tate import _final_exponentiation

__all__ = ["tate_pairing_fast", "FixedArgumentTate"]


def tate_pairing_fast(
    p_point: Point, q_point: Point, q: int, ext_curve: Curve
) -> Fp2Element:
    """Reduced Tate pairing, inversion-free Miller loop, same bits out.

    ``p_point`` must carry base-field coordinates (the protocol always
    pairs base-field points; the distortion happens on the *second*
    argument).  Callers needing the general case keep using the legacy
    :func:`repro.pairing.tate.tate_pairing`.
    """
    ext_field = ext_curve.field
    if not isinstance(ext_field, Fp2):
        raise PairingError("tate_pairing_fast requires the extension curve over F_p^2")
    if p_point.is_infinity() or q_point.is_infinity():
        return ext_field.one()
    num, den = miller_loop_projective(p_point, q_point, q)
    return _final_exponentiation(num * den.conjugate(), ext_field.p, q)


class FixedArgumentTate:
    """Pairing engine ``e(P, .)`` with the Miller walk hoisted out.

    Precomputes the line coefficients of ``f_{q,P}`` at construction;
    each call evaluates them against one extension-curve point and runs
    the final exponentiation.  Bit-for-bit equal to
    ``tate_pairing(P, Q, q, ext_curve)`` for every Q.

    Counter semantics: a call counts as one pairing and one Miller loop
    with the standard doubling/addition shape — the cost *shape* of a
    pairing is unchanged, only the per-step field work shrinks.

    When the extension field carries a Montgomery REDC context (the
    ``montgomery`` field backend), construction additionally converts
    the coefficients into a full Montgomery-form pairing table
    (:class:`repro.pairing.montgomery.MontgomeryFixedTable`) and calls
    route through its folded kernel — bit-identical output, same legacy
    counter totals, far fewer base-field operations.  Evaluation points
    with a complex y-coordinate (never produced by the distortion map)
    fall back to the schoolbook replay.
    """

    __slots__ = ("q", "ext_field", "_steps", "_mont")

    def __init__(self, p_point: Point, q: int, ext_curve: Curve) -> None:
        ext_field = ext_curve.field
        if not isinstance(ext_field, Fp2):
            raise PairingError(
                "FixedArgumentTate requires the extension curve over F_p^2"
            )
        self.q = q
        self.ext_field = ext_field
        self._mont = None
        if p_point.is_infinity():
            self._steps = None
        else:
            if not hasattr(p_point.x, "value"):
                raise PairingError(
                    "FixedArgumentTate requires a base-field fixed argument"
                )
            self._steps = miller_line_coefficients(
                p_point.x.value, p_point.y.value, q, ext_field.p
            )
            if getattr(ext_field, "mont", None) is not None:
                self._mont = MontgomeryFixedTable(self._steps, q, ext_field.p)

    def __call__(self, q_point: Point) -> Fp2Element:
        one = self.ext_field.one()
        if self._steps is None or q_point.is_infinity():
            return one
        mont = self._mont
        if mont is not None:
            qx, qy = q_point.x, q_point.y
            if (
                isinstance(qx, Fp2Element)
                and isinstance(qy, Fp2Element)
                and qy.b == 0
            ):
                prof = _obs_crypto.ACTIVE
                if prof is not None:
                    prof.pairings += 1
                    prof.miller_loops += 1
                r0, r1 = mont.evaluate(qx.a, qx.b, qy.a)
                return Fp2Element(self.ext_field, r0, r1)
        prof = _obs_crypto.ACTIVE
        if prof is not None:
            prof.pairings += 1
            prof.miller_loops += 1
        num, den = evaluate_line_coefficients(
            self._steps, q_point.x, q_point.y, one, prof
        )
        if num.is_zero() or den.is_zero():
            raise PairingError(
                "degenerate Miller evaluation (evaluation point lies on a "
                "chord/vertical of the base point's multiples)"
            )
        return _final_exponentiation(num * den.conjugate(), self.ext_field.p, self.q)
