"""Miller's algorithm for evaluating f_{n,P} at a point.

This is the inner loop of both the Tate and Weil pairings.  The
function f_{n,P} has divisor ``n(P) - (nP) - (n-1)(O)``; Miller's
double-and-add builds it incrementally from chord-and-tangent line
functions.  We track numerator and denominator separately and perform a
single field inversion at the end.

Degenerate line evaluations (the evaluation point lying on a chord or a
vertical) cannot occur for the distortion-mapped arguments the IBE layer
uses — the x-coordinate of phi(Q) has a non-zero imaginary component
while all chord coefficients are real — but the code still detects a
zero and raises :class:`repro.errors.PairingError` so misuse fails loudly
instead of silently returning a wrong pairing value.
"""

from __future__ import annotations

from repro.errors import PairingError
from repro.obs import crypto as _obs_crypto
from repro.pairing.curve import Point

__all__ = [
    "miller_loop",
    "miller_line_coefficients",
    "miller_loop_projective",
    "evaluate_line_coefficients",
]


def _line_value(t_point: Point, p_point: Point, eval_x, eval_y, one):
    """Evaluate the line through ``t_point`` and ``p_point`` at (eval_x, eval_y),
    together with the vertical through their sum.

    Returns ``(numerator, denominator, t_plus_p)`` where the Miller update
    is ``f *= numerator / denominator``.  Handles the tangent case
    (t == p), the vertical case (t == -p, sum is infinity) and points at
    infinity.
    """
    curve = t_point.curve
    if t_point.is_infinity() or p_point.is_infinity():
        # Adding O contributes a trivial line.
        result = p_point if t_point.is_infinity() else t_point
        return one, one, result
    tx, ty = t_point.x, t_point.y
    px, py = p_point.x, p_point.y
    if tx == px and ty == -py:
        # Vertical line through t and -t; the sum is O.
        return eval_x - tx, one, curve.infinity()
    if t_point == p_point:
        denominator = 2 * ty
        if denominator.is_zero():
            # Order-2 point: tangent is vertical (cannot happen in an
            # odd-order subgroup, kept for completeness).
            return eval_x - tx, one, curve.infinity()
        slope = (3 * tx * tx) / denominator
    else:
        slope = (py - ty) / (px - tx)
    x3 = slope * slope - tx - px
    y3 = slope * (tx - x3) - ty
    total = Point(curve, x3, y3)
    line_num = (eval_y - ty) - slope * (eval_x - tx)
    line_den = eval_x - x3
    return line_num, line_den, total


def miller_loop(p_point: Point, q_point: Point, n: int):
    """Compute f_{n,P}(Q) for points on the same curve/field.

    ``p_point`` is the function's base point, ``q_point`` the evaluation
    point, ``n`` the (positive) subgroup order.  Returns a field element
    of ``p_point.curve.field``.
    """
    if n <= 0:
        raise PairingError(f"Miller loop requires n > 0, got {n}")
    prof = _obs_crypto.ACTIVE
    if prof is not None:
        prof.miller_loops += 1
    field = p_point.curve.field
    one = field.one()
    if p_point.is_infinity() or q_point.is_infinity():
        return one
    eval_x, eval_y = q_point.x, q_point.y
    f_num = one
    f_den = one
    t_point = p_point
    bits = bin(n)[3:]  # skip the leading 1; process remaining MSB->LSB
    for bit in bits:
        if prof is not None:
            prof.miller_doublings += 1
        line_num, line_den, t_point = _line_value(
            t_point, t_point, eval_x, eval_y, one
        )
        f_num = f_num * f_num * line_num
        f_den = f_den * f_den * line_den
        if bit == "1":
            if prof is not None:
                prof.miller_additions += 1
            line_num, line_den, t_point = _line_value(
                t_point, p_point, eval_x, eval_y, one
            )
            f_num = f_num * line_num
            f_den = f_den * line_den
    if f_den.is_zero() or f_num.is_zero():
        raise PairingError(
            "degenerate Miller evaluation (evaluation point lies on a "
            "chord/vertical of the base point's multiples)"
        )
    return f_num / f_den


# -- inversion-free fast path -----------------------------------------------
#
# The affine loop above performs one field inversion per chord/tangent
# step (inside the slope division).  The fast path removes all of them:
# the base point walks in Jacobian coordinates over plain integers, and
# each step is recorded as *line coefficients* — integers (a_y, a_x, a_0,
# b_x, b_0) such that the step's line function is
#
#     L(x, y) = a_y*y + a_x*x + a_0        (chord/tangent numerator)
#     V(x)    = b_x*x + b_0                (vertical denominator)
#
# These are the affine line functions scaled by a factor in F_p^*
# (2*Y*Z^3 for a tangent, Z3 for a chord, Z3^2 for a vertical).  Any
# F_p^* factor c satisfies c^((p^2-1)/q) = 1 because c^(p-1) = 1 and
# (p+1)/q is an integer, so after the reduced Tate pairing's final
# exponentiation the fast path is *bit-for-bit* equal to the affine one.
#
# Because the coefficients depend only on the base point and the order,
# they can be precomputed once and replayed against many evaluation
# points — the fixed-argument pairing in :mod:`repro.pairing.fast_tate`.


def _double_step(T, p: int):
    """One Jacobian doubling over ints mod p; returns (T', coefficients).

    ``T`` is ``(X, Y, Z)`` or ``None`` for infinity.  Coefficients are
    ``(a_y, a_x, a_0, b_x, b_0)`` as described above.
    """
    if T is None:
        return None, (0, 0, 1, 0, 1)
    X, Y, Z = T
    if Y == 0:
        # 2-torsion: vertical tangent, the double is infinity.
        return None, (0, Z * Z % p, -X % p, 0, 1)
    # Lazily reduced: short sums like X + YY and 3*XX stay unreduced
    # (they are < a few p, so the following product still fits easily)
    # and each emitted coefficient is reduced exactly once.
    XX = X * X % p
    YY = Y * Y % p
    ZZ = Z * Z % p
    Z3 = 2 * Y * Z % p
    a_y = Z3 * ZZ % p  # 2*Y*Z^3
    a_x = -3 * XX * ZZ % p
    a_0 = (3 * X * XX - 2 * YY) % p
    C = YY * YY % p
    t = X + YY
    D = 2 * (t * t - XX - C) % p  # 4*X*Y^2
    E = 3 * XX
    X3 = (E * E - 2 * D) % p
    Y3 = (E * (D - X3) - 8 * C) % p
    return (X3, Y3, Z3), (a_y, a_x, a_0, Z3 * Z3 % p, -X3 % p)


def _add_step(T, px: int, py: int, p: int):
    """One Jacobian + affine mixed addition over ints mod p."""
    if T is None:
        return (px, py, 1), (0, 0, 1, 0, 1)
    X, Y, Z = T
    ZZ = Z * Z % p
    H = (px * ZZ - X) % p
    r = (py * Z * ZZ - Y) % p
    if H == 0:
        if r == 0:
            return _double_step(T, p)  # T == P: chord degenerates to tangent
        # T == -P: vertical chord, the sum is infinity.
        return None, (0, 1, -px % p, 0, 1)
    HH = H * H % p
    HHH = H * HH % p
    V = X * HH % p
    X3 = (r * r - HHH - 2 * V) % p
    Y3 = (r * (V - X3) - Y * HHH) % p
    Z3 = Z * H % p
    a_0 = (r * px - Z3 * py) % p
    return (X3, Y3, Z3), (Z3, -r % p, a_0, Z3 * Z3 % p, -X3 % p)


def miller_line_coefficients(x_p: int, y_p: int, n: int, p: int):
    """Precompute the Miller loop's line coefficients for base point (x_p, y_p).

    Returns a list of ``(square_first, a_y, a_x, a_0, b_x, b_0)`` integer
    tuples, one per doubling/addition step of ``f_{n,P}``:
    ``square_first`` is True for doubling steps (the accumulator is
    squared before the line is multiplied in).  The walk itself is
    inversion-free and touches no profiling counters — it is pure
    precomputation, independent of any evaluation point.
    """
    if n <= 0:
        raise PairingError(f"Miller loop requires n > 0, got {n}")
    x_p %= p
    y_p %= p
    steps = []
    T = (x_p, y_p, 1)
    for bit in bin(n)[3:]:  # skip the leading 1; process remaining MSB->LSB
        T, coeffs = _double_step(T, p)
        steps.append((True,) + coeffs)
        if bit == "1":
            T, coeffs = _add_step(T, x_p, y_p, p)
            steps.append((False,) + coeffs)
    return steps


def evaluate_line_coefficients(steps, eval_x, eval_y, one, prof=None):
    """Replay precomputed line coefficients against one evaluation point.

    Returns the pair ``(f_num, f_den)`` — the Miller function value in
    projective (numerator, denominator) form, with **zero** inversions.
    Callers combine them either as ``f_num / f_den`` or via the
    conjugation trick (see :mod:`repro.pairing.fast_tate`).
    """
    f_num = one
    f_den = one
    for square_first, a_y, a_x, a_0, b_x, b_0 in steps:
        if prof is not None:
            if square_first:
                prof.miller_doublings += 1
            else:
                prof.miller_additions += 1
        if square_first:
            f_num = f_num * f_num
            f_den = f_den * f_den
        if a_y or a_x:
            f_num = f_num * (eval_y * a_y + eval_x * a_x + a_0)
        if b_x:
            f_den = f_den * (eval_x * b_x + b_0)
    return f_num, f_den


def miller_loop_projective(p_point: Point, q_point: Point, n: int):
    """Inversion-free f_{n,P}(Q) as a (numerator, denominator) pair.

    ``p_point`` must have base-field (real) coordinates — that is what
    makes the projective scaling factors land in F_p^* and cancel under
    the final exponentiation.  ``q_point`` lives on the extension curve.
    Bumps the same profiling counters with the same shape as the affine
    :func:`miller_loop`.
    """
    if n <= 0:
        raise PairingError(f"Miller loop requires n > 0, got {n}")
    prof = _obs_crypto.ACTIVE
    if prof is not None:
        prof.miller_loops += 1
    field = q_point.curve.field
    one = field.one()
    if p_point.is_infinity() or q_point.is_infinity():
        return one, one
    if not hasattr(p_point.x, "value"):
        raise PairingError(
            "miller_loop_projective requires a base-field first argument "
            "(its real coordinates are what make the scaling factors cancel)"
        )
    steps = miller_line_coefficients(p_point.x.value, p_point.y.value, n, field.p)
    f_num, f_den = evaluate_line_coefficients(
        steps, q_point.x, q_point.y, one, prof
    )
    if f_den.is_zero() or f_num.is_zero():
        raise PairingError(
            "degenerate Miller evaluation (evaluation point lies on a "
            "chord/vertical of the base point's multiples)"
        )
    return f_num, f_den
