"""Miller's algorithm for evaluating f_{n,P} at a point.

This is the inner loop of both the Tate and Weil pairings.  The
function f_{n,P} has divisor ``n(P) - (nP) - (n-1)(O)``; Miller's
double-and-add builds it incrementally from chord-and-tangent line
functions.  We track numerator and denominator separately and perform a
single field inversion at the end.

Degenerate line evaluations (the evaluation point lying on a chord or a
vertical) cannot occur for the distortion-mapped arguments the IBE layer
uses — the x-coordinate of phi(Q) has a non-zero imaginary component
while all chord coefficients are real — but the code still detects a
zero and raises :class:`repro.errors.PairingError` so misuse fails loudly
instead of silently returning a wrong pairing value.
"""

from __future__ import annotations

from repro.errors import PairingError
from repro.obs import crypto as _obs_crypto
from repro.pairing.curve import Point

__all__ = ["miller_loop"]


def _line_value(t_point: Point, p_point: Point, eval_x, eval_y, one):
    """Evaluate the line through ``t_point`` and ``p_point`` at (eval_x, eval_y),
    together with the vertical through their sum.

    Returns ``(numerator, denominator, t_plus_p)`` where the Miller update
    is ``f *= numerator / denominator``.  Handles the tangent case
    (t == p), the vertical case (t == -p, sum is infinity) and points at
    infinity.
    """
    curve = t_point.curve
    if t_point.is_infinity() or p_point.is_infinity():
        # Adding O contributes a trivial line.
        result = p_point if t_point.is_infinity() else t_point
        return one, one, result
    tx, ty = t_point.x, t_point.y
    px, py = p_point.x, p_point.y
    if tx == px and ty == -py:
        # Vertical line through t and -t; the sum is O.
        return eval_x - tx, one, curve.infinity()
    if t_point == p_point:
        denominator = 2 * ty
        if denominator.is_zero():
            # Order-2 point: tangent is vertical (cannot happen in an
            # odd-order subgroup, kept for completeness).
            return eval_x - tx, one, curve.infinity()
        slope = (3 * tx * tx) / denominator
    else:
        slope = (py - ty) / (px - tx)
    x3 = slope * slope - tx - px
    y3 = slope * (tx - x3) - ty
    total = Point(curve, x3, y3)
    line_num = (eval_y - ty) - slope * (eval_x - tx)
    line_den = eval_x - x3
    return line_num, line_den, total


def miller_loop(p_point: Point, q_point: Point, n: int):
    """Compute f_{n,P}(Q) for points on the same curve/field.

    ``p_point`` is the function's base point, ``q_point`` the evaluation
    point, ``n`` the (positive) subgroup order.  Returns a field element
    of ``p_point.curve.field``.
    """
    if n <= 0:
        raise PairingError(f"Miller loop requires n > 0, got {n}")
    prof = _obs_crypto.ACTIVE
    if prof is not None:
        prof.miller_loops += 1
    field = p_point.curve.field
    one = field.one()
    if p_point.is_infinity() or q_point.is_infinity():
        return one
    eval_x, eval_y = q_point.x, q_point.y
    f_num = one
    f_den = one
    t_point = p_point
    bits = bin(n)[3:]  # skip the leading 1; process remaining MSB->LSB
    for bit in bits:
        if prof is not None:
            prof.miller_doublings += 1
        line_num, line_den, t_point = _line_value(
            t_point, t_point, eval_x, eval_y, one
        )
        f_num = f_num * f_num * line_num
        f_den = f_den * f_den * line_den
        if bit == "1":
            if prof is not None:
                prof.miller_additions += 1
            line_num, line_den, t_point = _line_value(
                t_point, p_point, eval_x, eval_y, one
            )
            f_num = f_num * line_num
            f_den = f_den * line_den
    if f_den.is_zero() or f_num.is_zero():
        raise PairingError(
            "degenerate Miller evaluation (evaluation point lies on a "
            "chord/vertical of the base point's multiples)"
        )
    return f_num / f_den
