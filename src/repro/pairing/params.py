"""Boneh–Franklin system parameters: the group setup behind the PKG.

A parameter set fixes the primes ``p`` (field) and ``q`` (subgroup
order, ``q | p + 1``), the curve objects over F_p and F_p^2, a generator
``P`` of the order-q subgroup, and the cube root of unity ``zeta`` used
by the distortion map.  The PKG's ``setup`` (paper §IV) draws the master
secret ``s`` and publishes ``(params, sP)``; everything in this module is
public.

Deterministic presets span toy (fast unit tests) to paper-scale sizes.
All were produced by :func:`repro.mathlib.generate_bf_prime_pair` from
fixed seeds; ``validate`` re-checks every stated property so a corrupted
preset cannot slip through.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ParameterError
from repro.mathlib.modular import sqrt_mod_p
from repro.mathlib.primes import is_probable_prime
from repro.mathlib.rand import HmacDrbg, RandomSource
from repro.obs import crypto as _obs_crypto
from repro.pairing.curve import Curve, Point
from repro.pairing.fields import Fp, Fp2, Fp2Element
from repro.pairing.fast_tate import tate_pairing_fast
from repro.pairing.montgomery import montgomery_context, tate_pairing_mont
from repro.pairing.tate import tate_pairing, weil_pairing

__all__ = [
    "BFParams",
    "generate_params",
    "get_preset",
    "PRESETS",
    "FIELD_BACKENDS",
    "DEFAULT_FIELD_BACKEND",
    "PRESET_FIELD_BACKENDS",
]

#: Deterministic (p, q) presets, named by the bit length of p.  Approximate
#: classical security: TOY64/TEST80 none (tests only), SMALL160 toy,
#: MED256 weak, STD512 comparable to the paper era's 512-bit deployments.
PRESETS: dict[str, tuple[int, int]] = {
    "TOY64": (0x81D8DE76572CE693, 0x9864963B),
    "TEST80": (0xBAC5493FBE4F1EDA8767, 0xD857788E3F),
    "SMALL160": (0xC219C7B79ED563FD1C6FD7BF29B5BE507486F5CB, 0xCD576E4D532878805ED1),
    "MED256": (
        0xC6383AD9CE22018BC4BABCB31ABB2994809223ABF8658951694A1D0646C9F53B,
        0xCF87894612DE57E6B4A5E1100BD1,
    ),
    "STD512": (
        0xCFF4410FA70D9A5CC9107287362A2901D78B197E7991D33599FCF23C00553022EEEA014E66342B9DD24CB983DCDD4D7E583769CDA192A4BB43C99480F6269737,
        0xE311DFB8BFD2AB2D20C4605C471709BFAEDCE795,
    ),
}

#: The selectable prime-field backends.  ``schoolbook`` is the golden
#: reference (plain reduced big-int arithmetic); ``montgomery`` routes
#: the pairing and scalar-multiplication hot paths through the
#: Montgomery-form lazy-reduction kernels in
#: :mod:`repro.pairing.montgomery` — bit-identical outputs, enforced by
#: the golden-equivalence Hypothesis suite.
FIELD_BACKENDS = ("schoolbook", "montgomery")

DEFAULT_FIELD_BACKEND = "montgomery"

#: Backend selected per preset when the caller does not override it.
#: All presets default to the Montgomery lane; flip an entry (or pass
#: ``field_backend="schoolbook"``) to A/B against the reference.
PRESET_FIELD_BACKENDS: dict[str, str] = {name: DEFAULT_FIELD_BACKEND for name in PRESETS}


@dataclass
class BFParams:
    """Public Boneh–Franklin group parameters.

    Attributes
    ----------
    p, q:
        Field prime (``p % 12 == 11``) and subgroup order (``q | p+1``).
    cofactor:
        ``(p + 1) // q``; multiplying a random point by it lands in the
        order-q subgroup.
    curve, ext_curve:
        ``y^2 = x^3 + 1`` over F_p and over F_p^2.
    generator:
        A fixed point of order q over F_p (the paper's base point ``P``).
    zeta:
        Primitive cube root of unity in F_p^2 for the distortion map.
    pairing_algorithm:
        ``"tate"`` (default) or ``"weil"`` — DESIGN.md ablation 1.
    """

    p: int
    q: int
    cofactor: int
    curve: Curve
    ext_curve: Curve
    generator: Point
    zeta: Fp2Element
    pairing_algorithm: str = "tate"
    name: str = field(default="custom")
    #: Which prime-field backend the fast paths use — ``"montgomery"``
    #: (default) or ``"schoolbook"`` (the golden reference lane).
    field_backend: str = "montgomery"
    #: Route Tate pairings of base-field points through the projective
    #: fast path (bit-for-bit equal output).  Flip off to force the
    #: legacy affine Miller loop everywhere, e.g. for A/B benchmarks.
    use_fast_path: bool = True
    #: Lazily-built windowed table for generator multiplication (the
    #: per-deposit ``rP``); see :mod:`repro.pairing.precompute`.
    _gen_table: object = field(default=None, compare=False, repr=False)

    @classmethod
    def from_primes(
        cls,
        p: int,
        q: int,
        generator_seed: bytes = b"repro-bf-generator",
        pairing_algorithm: str = "tate",
        name: str = "custom",
        field_backend: str | None = None,
    ) -> "BFParams":
        """Build the full parameter object from the two primes.

        The generator is derived deterministically from
        ``generator_seed`` so independently constructed parties agree on
        it without communication.  ``field_backend`` selects the
        arithmetic lane (:data:`FIELD_BACKENDS`); ``None`` means
        :data:`DEFAULT_FIELD_BACKEND`.
        """
        if p % 12 != 11:
            raise ParameterError(f"p % 12 must be 11, got {p % 12}")
        if (p + 1) % q != 0:
            raise ParameterError("q must divide p + 1")
        if pairing_algorithm not in ("tate", "weil"):
            raise ParameterError(
                f"pairing_algorithm must be 'tate' or 'weil', got {pairing_algorithm!r}"
            )
        if field_backend is None:
            field_backend = DEFAULT_FIELD_BACKEND
        if field_backend not in FIELD_BACKENDS:
            raise ParameterError(
                f"field_backend must be one of {FIELD_BACKENDS}, got {field_backend!r}"
            )
        cofactor = (p + 1) // q
        base_field = Fp(p)
        ext_field = Fp2(p)
        if field_backend == "montgomery":
            ctx = montgomery_context(p)
            base_field.mont = ctx
            ext_field.mont = ctx
        curve = Curve(base_field)
        ext_curve = Curve(ext_field)
        # zeta = (-1 + sqrt(3) * i) / 2: a primitive cube root of unity.
        # (p % 12 == 11 makes 3 a quadratic residue and i^2 = -1 valid.)
        s = sqrt_mod_p(3, p)
        inv2 = pow(2, p - 2, p)
        zeta = ext_field((p - 1) * inv2 % p, s * inv2 % p)
        generator = cls._derive_generator(curve, cofactor, q, generator_seed)
        return cls(
            p=p,
            q=q,
            cofactor=cofactor,
            curve=curve,
            ext_curve=ext_curve,
            generator=generator,
            zeta=zeta,
            pairing_algorithm=pairing_algorithm,
            name=name,
            field_backend=field_backend,
        )

    @staticmethod
    def _derive_generator(curve: Curve, cofactor: int, q: int, seed: bytes) -> Point:
        rng = HmacDrbg(seed)
        while True:
            candidate = cofactor * curve.random_point(rng)
            if not candidate.is_infinity():
                return candidate

    # -- pairing helpers -------------------------------------------------

    def distort(self, point: Point) -> Point:
        """phi(x, y) = (zeta * x, y): F_p point -> independent F_p^2 point."""
        return self.curve.distort(point, self.zeta, self.ext_curve)

    def pair(self, p_point: Point, q_point: Point, *, fast: bool | None = None) -> Fp2Element:
        """The modified (symmetric) pairing e(P, phi(Q)) on base-field points.

        ``fast`` overrides :attr:`use_fast_path` for this one call; both
        routes produce bit-identical values (tested by
        ``tests/pairing/test_fastpath_equiv.py``).
        """
        prof = _obs_crypto.ACTIVE
        if prof is not None:
            prof.pairings += 1
        distorted = self.distort(q_point)
        if self.pairing_algorithm == "weil":
            return weil_pairing(p_point, distorted, self.q, self.ext_curve)
        use_fast = self.use_fast_path if fast is None else fast
        if use_fast and not p_point.is_infinity() and hasattr(p_point.x, "value"):
            if self.field_backend == "montgomery":
                return tate_pairing_mont(p_point, distorted, self.q, self.ext_curve)
            return tate_pairing_fast(p_point, distorted, self.q, self.ext_curve)
        return tate_pairing(p_point, distorted, self.q, self.ext_curve)

    def mul_generator(self, scalar: int) -> Point:
        """``scalar * generator`` through a fixed-base window table.

        Identical output to ``scalar * self.generator`` (the generator
        has order ``q``, so reduction mod ``q`` inside the table changes
        nothing).  The table is built lazily on first use and only while
        :attr:`use_fast_path` is on, so A/B baselines stay faithful.
        """
        if not self.use_fast_path:
            return scalar * self.generator
        table = self._gen_table
        if table is None or table.base != self.generator:
            from repro.pairing.precompute import FixedBasePoint

            table = FixedBasePoint.shared(self.generator, self.q)
            self._gen_table = table
        return table(scalar)

    def random_scalar(self, rng: RandomSource) -> int:
        """Uniform scalar in [1, q-1] (exponents of the pairing groups)."""
        return rng.randint(1, self.q - 1)

    def validate(self) -> None:
        """Re-verify every stated property; raises ParameterError on failure.

        Checks: primality of p and q, the congruence and divisibility
        conditions, that the generator has exact order q, that zeta is a
        primitive cube root of unity, and that the pairing of the
        generator with itself is non-degenerate with order q.
        """
        if not is_probable_prime(self.p):
            raise ParameterError("p is not prime")
        if not is_probable_prime(self.q):
            raise ParameterError("q is not prime")
        if self.p % 12 != 11:
            raise ParameterError("p % 12 != 11")
        if (self.p + 1) % self.q != 0 or self.cofactor != (self.p + 1) // self.q:
            raise ParameterError("cofactor inconsistent with q | p + 1")
        if self.generator.is_infinity():
            raise ParameterError("generator is the point at infinity")
        if not (self.q * self.generator).is_infinity():
            raise ParameterError("generator order does not divide q")
        one = self.ext_curve.field.one()
        if self.zeta == one or self.zeta ** 3 != one:
            raise ParameterError("zeta is not a primitive cube root of unity")
        g = self.pair(self.generator, self.generator)
        if g == one:
            raise ParameterError("pairing of generator with itself is degenerate")
        if g ** self.q != one:
            raise ParameterError("pairing value does not lie in the order-q subgroup")

    def __repr__(self) -> str:
        return (
            f"BFParams(name={self.name!r}, p~2^{self.p.bit_length()}, "
            f"q~2^{self.q.bit_length()}, pairing={self.pairing_algorithm})"
        )


def get_preset(
    name: str = "TEST80",
    pairing_algorithm: str = "tate",
    field_backend: str | None = None,
) -> BFParams:
    """Load a named deterministic parameter preset (see :data:`PRESETS`).

    ``field_backend=None`` selects the preset's entry in
    :data:`PRESET_FIELD_BACKENDS`.
    """
    if name not in PRESETS:
        raise ParameterError(f"unknown preset {name!r}; known: {sorted(PRESETS)}")
    p, q = PRESETS[name]
    if field_backend is None:
        field_backend = PRESET_FIELD_BACKENDS[name]
    return BFParams.from_primes(
        p, q, pairing_algorithm=pairing_algorithm, name=name, field_backend=field_backend
    )


def generate_params(
    q_bits: int = 160,
    p_bits: int = 512,
    rng: RandomSource | None = None,
    pairing_algorithm: str = "tate",
    field_backend: str | None = None,
) -> BFParams:
    """Generate fresh parameters (the PKG's one-time group setup)."""
    from repro.mathlib.primes import generate_bf_prime_pair

    p, q, _l = generate_bf_prime_pair(q_bits, p_bits, rng=rng)
    return BFParams.from_primes(
        p,
        q,
        pairing_algorithm=pairing_algorithm,
        name=f"gen-{p_bits}/{q_bits}",
        field_backend=field_backend,
    )
