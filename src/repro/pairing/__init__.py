"""Pairing-based cryptography substrate.

Implements what the paper obtained from Ben Lynn's PBC library: the
supersingular curve ``y^2 = x^3 + 1`` over F_p with ``p % 12 == 11``,
the quadratic extension F_p^2 = F_p[i], Miller's algorithm, the reduced
Tate pairing (default) and the Weil pairing (the paper's §IV discusses
both), the distortion-map "modified" pairing that makes e(P, P)
non-degenerate, and the Boneh–Franklin MapToPoint hash.
"""

from repro.pairing.curve import Curve, Point
from repro.pairing.fast_tate import FixedArgumentTate, tate_pairing_fast
from repro.pairing.fields import Fp, Fp2, FpElement, Fp2Element, batch_inverse
from repro.pairing.montgomery import (
    MontgomeryFp,
    montgomery_context,
    tate_pairing_mont,
)
from repro.pairing.hashing import (
    gt_to_bytes,
    hash_to_point,
    hash_to_scalar,
    mask_bytes,
)
from repro.pairing.precompute import FixedBaseGt, FixedBasePoint
from repro.pairing.params import (
    PRESETS,
    BFParams,
    generate_params,
    get_preset,
)
from repro.pairing.tate import tate_pairing, weil_pairing

__all__ = [
    "Fp",
    "Fp2",
    "FpElement",
    "Fp2Element",
    "Curve",
    "Point",
    "batch_inverse",
    "tate_pairing",
    "tate_pairing_fast",
    "tate_pairing_mont",
    "MontgomeryFp",
    "montgomery_context",
    "FixedArgumentTate",
    "FixedBasePoint",
    "FixedBaseGt",
    "weil_pairing",
    "BFParams",
    "generate_params",
    "get_preset",
    "PRESETS",
    "hash_to_point",
    "hash_to_scalar",
    "gt_to_bytes",
    "mask_bytes",
]
