"""The supersingular curve E: y^2 = x^3 + 1 and its point group.

Over F_p with ``p % 3 == 2`` this curve is supersingular with
``#E(F_p) = p + 1``; Boneh–Franklin's concrete IBE instantiates on
exactly this family.  Points carry coordinates in either F_p or F_p^2
(the same :class:`Curve` object works over both via the ``field``
argument), and the distortion map ``phi(x, y) = (zeta * x, y)`` carries
F_p points to linearly independent F_p^2 points so the modified pairing
``e(P, phi(Q))`` is non-degenerate on the base-field subgroup.
"""

from __future__ import annotations

from repro.errors import CurveError, PointNotOnCurveError
from repro.mathlib.modular import cube_root_mod_p
from repro.mathlib.rand import RandomSource
from repro.pairing.fields import Fp, Fp2, Fp2Element, FpElement

__all__ = ["Curve", "Point"]


class Point:
    """A point on ``y^2 = x^3 + 1``, affine or the point at infinity.

    Immutable; supports ``P + Q``, ``-P``, ``P - Q``, ``k * P`` and
    equality.  Scalar multiplication is double-and-add (left-to-right).
    """

    __slots__ = ("curve", "x", "y", "infinity")

    def __init__(self, curve: "Curve", x=None, y=None, infinity: bool = False) -> None:
        self.curve = curve
        self.infinity = infinity
        if infinity:
            self.x = None
            self.y = None
        else:
            if x is None or y is None:
                raise CurveError("affine point requires both coordinates")
            self.x = x
            self.y = y

    # -- predicates -----------------------------------------------------

    def is_infinity(self) -> bool:
        return self.infinity

    def __eq__(self, other) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        if self.infinity or other.infinity:
            return self.infinity and other.infinity
        return self.x == other.x and self.y == other.y

    def __hash__(self) -> int:
        if self.infinity:
            return hash(("point-inf", self.curve.field))
        return hash(("point", self.x, self.y))

    def __repr__(self) -> str:
        if self.infinity:
            return "Point(infinity)"
        return f"Point(x={self.x!r}, y={self.y!r})"

    # -- group law ------------------------------------------------------

    def __neg__(self) -> "Point":
        if self.infinity:
            return self
        return Point(self.curve, self.x, -self.y)

    def __add__(self, other: "Point") -> "Point":
        if not isinstance(other, Point):
            return NotImplemented
        if self.curve is not other.curve and self.curve != other.curve:
            raise CurveError("cannot add points on different curves/fields")
        if self.infinity:
            return other
        if other.infinity:
            return self
        if self.x == other.x:
            if self.y == -other.y:
                return self.curve.infinity()
            # Doubling (y != 0 guaranteed here because y == -y would have
            # matched the branch above for odd fields).
            slope = (3 * self.x * self.x) / (2 * self.y)
        else:
            slope = (other.y - self.y) / (other.x - self.x)
        x3 = slope * slope - self.x - other.x
        y3 = slope * (self.x - x3) - self.y
        return Point(self.curve, x3, y3)

    def __sub__(self, other: "Point") -> "Point":
        return self + (-other)

    def double(self) -> "Point":
        return self + self

    def __rmul__(self, scalar: int) -> "Point":
        return self.__mul__(scalar)

    def __mul__(self, scalar: int) -> "Point":
        if not isinstance(scalar, int):
            return NotImplemented
        if scalar < 0:
            return (-self) * (-scalar)
        result = self.curve.infinity()
        addend = self
        while scalar:
            if scalar & 1:
                result = result + addend
            addend = addend.double()
            scalar >>= 1
        return result

    # -- serialisation ----------------------------------------------------

    def to_bytes(self) -> bytes:
        """Uncompressed encoding: tag byte then fixed-width coordinates."""
        if self.infinity:
            return b"\x00"
        return b"\x04" + self.x.to_bytes() + self.y.to_bytes()


class Curve:
    """``y^2 = x^3 + 1`` over ``field`` (an :class:`Fp` or :class:`Fp2`)."""

    def __init__(self, field) -> None:
        self.field = field

    def __eq__(self, other) -> bool:
        return isinstance(other, Curve) and other.field == self.field

    def __hash__(self) -> int:
        return hash(("curve", self.field))

    def __repr__(self) -> str:
        return f"Curve(y^2=x^3+1 over {self.field!r})"

    def infinity(self) -> Point:
        return Point(self, infinity=True)

    def contains(self, x, y) -> bool:
        """True when (x, y) satisfies y^2 = x^3 + 1."""
        return y * y == x * x * x + 1

    def point(self, x, y) -> Point:
        """Construct a validated affine point.

        Integer coordinates are promoted into the curve's field; raises
        :class:`PointNotOnCurveError` when the equation fails.
        """
        if isinstance(x, int):
            x = self.field(x)
        if isinstance(y, int):
            y = self.field(y)
        if not self.contains(x, y):
            raise PointNotOnCurveError(f"({x!r}, {y!r}) is not on y^2 = x^3 + 1")
        return Point(self, x, y)

    def from_bytes(self, data: bytes) -> Point:
        """Inverse of :meth:`Point.to_bytes`."""
        if data == b"\x00":
            return self.infinity()
        if not data or data[0] != 0x04:
            raise CurveError(f"unknown point encoding tag {data[:1]!r}")
        body = data[1:]
        if isinstance(self.field, Fp):
            width = self.field.byte_length
            if len(body) != 2 * width:
                raise CurveError(f"bad point encoding length {len(data)}")
            x = self.field.from_bytes(body[:width])
            y = self.field.from_bytes(body[width:])
        else:
            width = 2 * self.field.byte_length
            if len(body) != 2 * width:
                raise CurveError(f"bad point encoding length {len(data)}")
            x = self.field.from_bytes(body[:width])
            y = self.field.from_bytes(body[width:])
        return self.point(x, y)

    def lift_x(self, y_value: int) -> Point:
        """Find the unique point with the given y (base field only).

        With ``p % 3 == 2`` the map ``x -> x^3`` is a bijection on F_p,
        so every y lifts to exactly one x with ``x^3 = y^2 - 1``; this is
        the core of Boneh–Franklin's MapToPoint.
        """
        if not isinstance(self.field, Fp):
            raise CurveError("lift_x is defined over the base field only")
        p = self.field.p
        x = cube_root_mod_p((y_value * y_value - 1) % p, p)
        return self.point(x, y_value)

    def random_point(self, rng: RandomSource) -> Point:
        """Uniform random affine point over the base field."""
        if not isinstance(self.field, Fp):
            raise CurveError("random_point is defined over the base field only")
        while True:
            y = rng.randbelow(self.field.p)
            point = self.lift_x(y)
            if not point.is_infinity():
                return point

    def distort(self, point: Point, zeta: Fp2Element, ext_curve: "Curve") -> Point:
        """Apply the distortion map phi(x, y) = (zeta * x, y).

        Maps an F_p point onto ``ext_curve`` (the same equation over
        F_p^2).  ``zeta`` must be a primitive cube root of unity in
        F_p^2; then phi(P) is linearly independent from P, which makes
        ``e(P, phi(P)) != 1``.
        """
        if point.is_infinity():
            return ext_curve.infinity()
        if not isinstance(ext_curve.field, Fp2):
            raise CurveError("distortion target must be the extension curve")
        ext_field: Fp2 = ext_curve.field
        x = zeta * ext_field.lift(point.x)
        y = ext_field.lift(point.y)
        return ext_curve.point(x, y)
