"""The supersingular curve E: y^2 = x^3 + 1 and its point group.

Over F_p with ``p % 3 == 2`` this curve is supersingular with
``#E(F_p) = p + 1``; Boneh–Franklin's concrete IBE instantiates on
exactly this family.  Points carry coordinates in either F_p or F_p^2
(the same :class:`Curve` object works over both via the ``field``
argument), and the distortion map ``phi(x, y) = (zeta * x, y)`` carries
F_p points to linearly independent F_p^2 points so the modified pairing
``e(P, phi(Q))`` is non-degenerate on the base-field subgroup.
"""

from __future__ import annotations

from repro.errors import CurveError, PointNotOnCurveError
from repro.mathlib.modular import cube_root_mod_p
from repro.mathlib.rand import RandomSource
from repro.pairing.fields import Fp, Fp2, Fp2Element, FpElement, batch_inverse

__all__ = ["Curve", "Point"]


# -- Jacobian-coordinate group law (a = 0 short Weierstrass) ----------------
#
# Internal fast path for scalar multiplication: a point (X, Y, Z) with
# Z != 0 represents the affine point (X/Z^2, Y/Z^3); Z == 0 (returned as
# ``None`` by the helpers below) is the point at infinity.  Add and
# double are inversion-free; a multiplication performs exactly one
# batched normalisation (see :func:`repro.pairing.fields.batch_inverse`)
# for the window table plus one inversion for the final result.


def _jac_double(X1, Y1, Z1):
    """Double (X1, Y1, Z1); returns None for the 2-torsion case Y1 == 0."""
    if Y1.is_zero():
        return None
    A = X1 * X1
    B = Y1 * Y1
    C = B * B
    t = X1 + B
    D = t * t - A - C
    D = D + D  # 4*X1*Y1^2
    E = A + A + A  # 3*X1^2 (a = 0: no +a*Z^4 term)
    X3 = E * E - (D + D)
    Y3 = E * (D - X3) - 8 * C
    Z3 = Y1 * Z1
    return X3, Y3, Z3 + Z3


def _jac_add(P, Q):
    """General Jacobian + Jacobian addition; None means infinity."""
    if P is None:
        return Q
    if Q is None:
        return P
    X1, Y1, Z1 = P
    X2, Y2, Z2 = Q
    Z1Z1 = Z1 * Z1
    Z2Z2 = Z2 * Z2
    U1 = X1 * Z2Z2
    U2 = X2 * Z1Z1
    S1 = Y1 * Z2 * Z2Z2
    S2 = Y2 * Z1 * Z1Z1
    H = U2 - U1
    r = S2 - S1
    if H.is_zero():
        if r.is_zero():
            return _jac_double(X1, Y1, Z1)
        return None  # P + (-P)
    HH = H * H
    HHH = H * HH
    V = U1 * HH
    X3 = r * r - HHH - (V + V)
    Y3 = r * (V - X3) - S1 * HHH
    Z3 = Z1 * Z2 * H
    return X3, Y3, Z3


def _jac_add_mixed(P, x2, y2):
    """Jacobian + affine (x2, y2) mixed addition; None means infinity."""
    if P is None:
        return x2, y2, x2.field.one()
    X1, Y1, Z1 = P
    Z1Z1 = Z1 * Z1
    U2 = x2 * Z1Z1
    S2 = y2 * Z1 * Z1Z1
    H = U2 - X1
    r = S2 - Y1
    if H.is_zero():
        if r.is_zero():
            return _jac_double(X1, Y1, Z1)
        return None
    HH = H * H
    HHH = H * HH
    V = X1 * HH
    X3 = r * r - HHH - (V + V)
    Y3 = r * (V - X3) - Y1 * HHH
    Z3 = Z1 * H
    return X3, Y3, Z3


def _batch_to_affine(curve: "Curve", jacobians):
    """Normalise Jacobian triples to affine (x, y) pairs with ONE inversion.

    ``None`` entries (infinity) pass through as ``None``; the rest share a
    single :func:`batch_inverse` call over their Z coordinates.
    """
    finite = [jac for jac in jacobians if jac is not None]
    z_invs = iter(batch_inverse([jac[2] for jac in finite]))
    out = []
    for jac in jacobians:
        if jac is None:
            out.append(None)
            continue
        z_inv = next(z_invs)
        z_inv2 = z_inv * z_inv
        out.append((jac[0] * z_inv2, jac[1] * z_inv2 * z_inv))
    return out


def _wnaf(scalar: int, width: int) -> list[int]:
    """Width-``w`` non-adjacent form, least-significant digit first."""
    digits = []
    window = 1 << width
    half = window >> 1
    while scalar:
        if scalar & 1:
            digit = scalar & (window - 1)
            if digit >= half:
                digit -= window
            scalar -= digit
        else:
            digit = 0
        digits.append(digit)
        scalar >>= 1
    return digits


#: Scalars at or below this bit length take the plain affine ladder —
#: the wNAF table setup does not pay for itself there.
_WNAF_THRESHOLD_BITS = 16
_WNAF_WIDTH = 4

#: Process-wide switch for the wNAF/Jacobian scalar-mult fast path.
#: Flipping it to False routes every ``k * P`` through the original
#: affine double-and-add ladder — only benchmarks use this, to measure
#: against a baseline faithful to the pre-optimisation code.
USE_WNAF = True


class Point:
    """A point on ``y^2 = x^3 + 1``, affine or the point at infinity.

    Immutable; supports ``P + Q``, ``-P``, ``P - Q``, ``k * P`` and
    equality.  Scalar multiplication is double-and-add (left-to-right).
    """

    __slots__ = ("curve", "x", "y", "infinity")

    def __init__(self, curve: "Curve", x=None, y=None, infinity: bool = False) -> None:
        self.curve = curve
        self.infinity = infinity
        if infinity:
            self.x = None
            self.y = None
        else:
            if x is None or y is None:
                raise CurveError("affine point requires both coordinates")
            self.x = x
            self.y = y

    # -- predicates -----------------------------------------------------

    def is_infinity(self) -> bool:
        return self.infinity

    def __eq__(self, other) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        if self.infinity or other.infinity:
            return self.infinity and other.infinity
        return self.x == other.x and self.y == other.y

    def __hash__(self) -> int:
        if self.infinity:
            return hash(("point-inf", self.curve.field))
        return hash(("point", self.x, self.y))

    def __repr__(self) -> str:
        if self.infinity:
            return "Point(infinity)"
        return f"Point(x={self.x!r}, y={self.y!r})"

    # -- group law ------------------------------------------------------

    def __neg__(self) -> "Point":
        if self.infinity:
            return self
        return Point(self.curve, self.x, -self.y)

    def __add__(self, other: "Point") -> "Point":
        if not isinstance(other, Point):
            return NotImplemented
        if self.curve is not other.curve and self.curve != other.curve:
            raise CurveError("cannot add points on different curves/fields")
        if self.infinity:
            return other
        if other.infinity:
            return self
        if self.x == other.x:
            if self.y == -other.y:
                return self.curve.infinity()
            # Doubling (y != 0 guaranteed here because y == -y would have
            # matched the branch above for odd fields).
            slope = (3 * self.x * self.x) / (2 * self.y)
        else:
            slope = (other.y - self.y) / (other.x - self.x)
        x3 = slope * slope - self.x - other.x
        y3 = slope * (self.x - x3) - self.y
        return Point(self.curve, x3, y3)

    def __sub__(self, other: "Point") -> "Point":
        return self + (-other)

    def double(self) -> "Point":
        """Direct tangent-line doubling (no ``__add__`` branch re-checks)."""
        if self.infinity:
            return self
        if self.y.is_zero():
            # 2-torsion: the tangent is vertical.
            return self.curve.infinity()
        slope = (3 * self.x * self.x) / (2 * self.y)
        x3 = slope * slope - self.x - self.x
        y3 = slope * (self.x - x3) - self.y
        return Point(self.curve, x3, y3)

    def __rmul__(self, scalar: int) -> "Point":
        return self.__mul__(scalar)

    def __mul__(self, scalar: int) -> "Point":
        if not isinstance(scalar, int):
            return NotImplemented
        if scalar < 0:
            return (-self) * (-scalar)
        if scalar == 0 or self.infinity:
            return self.curve.infinity()
        if not USE_WNAF or scalar.bit_length() <= _WNAF_THRESHOLD_BITS:
            return self._mul_ladder(scalar)
        return self._mul_wnaf(scalar)

    def _mul_ladder(self, scalar: int) -> "Point":
        """Plain affine double-and-add, kept callable as the legacy path."""
        result = self.curve.infinity()
        addend = self
        while scalar:
            if scalar & 1:
                result = result + addend
            addend = addend.double()
            scalar >>= 1
        return result

    def _mul_wnaf(self, scalar: int) -> "Point":
        """Width-4 wNAF multiplication over Jacobian coordinates.

        The odd-multiple table {P, 3P, ..., 15P} is built inversion-free
        and normalised with a single batched inversion; the main loop is
        inversion-free; one final inversion converts back to affine.
        Bit-for-bit equal to the affine ladder (same group, same result).

        Base-field points whose field carries a Montgomery REDC context
        take the raw-integer lane in Montgomery-weighted Jacobian
        coordinates (:func:`repro.pairing.montgomery.scalar_mult_raw`) —
        same digits, same two inversions, same point out.
        """
        mont = getattr(self.x.field, "mont", None)
        if mont is not None and hasattr(self.x, "value"):
            if self.y.is_zero():
                # Order-2 base point: k*P is P or O depending on parity.
                return self if scalar & 1 else self.curve.infinity()
            from repro.pairing.montgomery import scalar_mult_raw

            result = scalar_mult_raw(
                self.x.value,
                self.y.value,
                _wnaf(scalar, _WNAF_WIDTH),
                _WNAF_WIDTH,
                mont,
            )
            if result is None:
                return self.curve.infinity()
            field = self.x.field
            return Point(self.curve, field(result[0]), field(result[1]))
        base = (self.x, self.y, self.x.field.one())
        twice = _jac_double(*base)
        if twice is None:
            # Order-2 base point: k*P is P or O depending on parity.
            return self if scalar & 1 else self.curve.infinity()
        table_jac = [base]
        for _ in range((1 << (_WNAF_WIDTH - 2)) - 1):
            table_jac.append(_jac_add(table_jac[-1], twice))
        table = _batch_to_affine(self.curve, table_jac)
        acc = None
        for digit in reversed(_wnaf(scalar, _WNAF_WIDTH)):
            if acc is not None:
                acc = _jac_double(*acc)
            if digit:
                entry = table[abs(digit) >> 1]
                if entry is None:
                    continue  # odd multiple happened to be infinity
                x2, y2 = entry
                acc = _jac_add_mixed(acc, x2, -y2 if digit < 0 else y2)
        if acc is None:
            return self.curve.infinity()
        z_inv = acc[2].inverse()
        z_inv2 = z_inv * z_inv
        return Point(self.curve, acc[0] * z_inv2, acc[1] * z_inv2 * z_inv)

    # -- serialisation ----------------------------------------------------

    def to_bytes(self) -> bytes:
        """Uncompressed encoding: tag byte then fixed-width coordinates."""
        if self.infinity:
            return b"\x00"
        return b"\x04" + self.x.to_bytes() + self.y.to_bytes()


class Curve:
    """``y^2 = x^3 + 1`` over ``field`` (an :class:`Fp` or :class:`Fp2`)."""

    def __init__(self, field) -> None:
        self.field = field

    def __eq__(self, other) -> bool:
        return isinstance(other, Curve) and other.field == self.field

    def __hash__(self) -> int:
        return hash(("curve", self.field))

    def __repr__(self) -> str:
        return f"Curve(y^2=x^3+1 over {self.field!r})"

    def infinity(self) -> Point:
        return Point(self, infinity=True)

    def contains(self, x, y) -> bool:
        """True when (x, y) satisfies y^2 = x^3 + 1."""
        return y * y == x * x * x + 1

    def point(self, x, y) -> Point:
        """Construct a validated affine point.

        Integer coordinates are promoted into the curve's field; raises
        :class:`PointNotOnCurveError` when the equation fails.
        """
        if isinstance(x, int):
            x = self.field(x)
        if isinstance(y, int):
            y = self.field(y)
        if not self.contains(x, y):
            raise PointNotOnCurveError(f"({x!r}, {y!r}) is not on y^2 = x^3 + 1")
        return Point(self, x, y)

    def from_bytes(self, data: bytes) -> Point:
        """Inverse of :meth:`Point.to_bytes`."""
        if data == b"\x00":
            return self.infinity()
        if not data or data[0] != 0x04:
            raise CurveError(f"unknown point encoding tag {data[:1]!r}")
        body = data[1:]
        if isinstance(self.field, Fp):
            width = self.field.byte_length
            if len(body) != 2 * width:
                raise CurveError(
                    f"bad point encoding length {len(body)} (expected {2 * width})"
                )
            x = self.field.from_bytes(body[:width])
            y = self.field.from_bytes(body[width:])
        else:
            width = 2 * self.field.byte_length
            if len(body) != 2 * width:
                raise CurveError(
                    f"bad point encoding length {len(body)} (expected {2 * width})"
                )
            x = self.field.from_bytes(body[:width])
            y = self.field.from_bytes(body[width:])
        return self.point(x, y)

    def lift_x(self, y_value: int) -> Point:
        """Find the unique point with the given y (base field only).

        With ``p % 3 == 2`` the map ``x -> x^3`` is a bijection on F_p,
        so every y lifts to exactly one x with ``x^3 = y^2 - 1``; this is
        the core of Boneh–Franklin's MapToPoint.
        """
        if not isinstance(self.field, Fp):
            raise CurveError("lift_x is defined over the base field only")
        p = self.field.p
        x = cube_root_mod_p((y_value * y_value - 1) % p, p)
        return self.point(x, y_value)

    def random_point(self, rng: RandomSource) -> Point:
        """Uniform random affine point over the base field."""
        if not isinstance(self.field, Fp):
            raise CurveError("random_point is defined over the base field only")
        while True:
            y = rng.randbelow(self.field.p)
            point = self.lift_x(y)
            if not point.is_infinity():
                return point

    def distort(self, point: Point, zeta: Fp2Element, ext_curve: "Curve") -> Point:
        """Apply the distortion map phi(x, y) = (zeta * x, y).

        Maps an F_p point onto ``ext_curve`` (the same equation over
        F_p^2).  ``zeta`` must be a primitive cube root of unity in
        F_p^2; then phi(P) is linearly independent from P, which makes
        ``e(P, phi(P)) != 1``.
        """
        if point.is_infinity():
            return ext_curve.infinity()
        if not isinstance(ext_curve.field, Fp2):
            raise CurveError("distortion target must be the extension curve")
        ext_field: Fp2 = ext_curve.field
        x = zeta * ext_field.lift(point.x)
        y = ext_field.lift(point.y)
        return ext_curve.point(x, y)
