"""Montgomery-form prime-field backend with lazy reduction.

CPython big-int ``%`` is a single C-level operation, so a textbook REDC
loop in the innermost Miller kernel *loses* to schoolbook reduction.
This backend therefore splits the Montgomery machinery the way the
CTIDH ``primefield.py`` exemplar splits it for C targets, but placed
where each half actually wins under CPython:

* **Montgomery form at rest.**  Precomputed data — the fixed-argument
  line-coefficient tables and the entry points of Jacobian scalar
  multiplication — is converted to Montgomery residues once, via real
  REDC (:class:`MontgomeryFp`).  The per-line factors of ``R`` are
  *uniform*, land in F_p^*, and are killed by the reduced Tate pairing's
  final exponentiation (``c^(p-1) = 1`` and ``(p+1)/q`` is an integer),
  so no ``from_mont`` conversion is ever needed on the hot path.

* **Lazy reduction in the kernel.**  The folded Miller kernel
  (:func:`_fold_lines`) accumulates double-width sums — a line value is
  ``a_y*y + a_x*x0 + a_0`` with *one* deferred reduction — and each Fp2
  multiplication is interleaved Karatsuba: 3 base multiplications, one
  reduction per output limb.  The numerator is folded with the
  conjugated denominator as the loop runs (``f <- f * conj(v)``), so the
  whole pairing performs exactly one field inversion, inside the final
  exponentiation.

The same kernel serves both lanes: the ad-hoc pairing
(:func:`tate_pairing_mont`, coefficients in canonical form, ``R^0``)
and the fixed-argument table (:class:`MontgomeryFixedTable`,
coefficients in Montgomery form, ``R^2`` per line).  Both are
bit-for-bit equal to the schoolbook fast path — the golden-equivalence
Hypothesis suite draws the backend per example to prove it.

Counter contract: the Montgomery lanes bump the *legacy* counters
(``pairings``, ``miller_*``, ``fp2_mul/sqr/inv``) with exactly the
totals the schoolbook lane would produce, so same-seed obs dumps stay
byte-identical across backends.  The *new* ``fp_muls``/``fp_sqrs``/
``fp_adds`` counters record the actual base-field work of whichever
lane ran and are exempt from that cross-backend equality (they are the
machine-independent quantities the op-count perf gates compare).
"""

from __future__ import annotations

from repro.errors import PairingError, ParameterError
from repro.obs import crypto as _obs_crypto
from repro.pairing.fields import Fp2, Fp2Element
from repro.pairing.miller import miller_loop_projective
from repro.pairing.tate import _final_exponentiation

__all__ = [
    "MontgomeryFp",
    "montgomery_context",
    "MontgomeryTateKernel",
    "tate_kernel",
    "MontgomeryFixedTable",
    "tate_pairing_mont",
    "scalar_mult_raw",
]

#: REDC shift granularity.  Rounding R up to a word multiple keeps the
#: ``>>`` and ``&`` operations aligned the way a limb implementation
#: would be, and costs nothing in Python.
_WORD_BITS = 64


class MontgomeryFp:
    """Montgomery (REDC) context for F_p: ``R = 2^r_bits > p``.

    ``mont_mul``/``mont_sqr`` map residues ``aR, bR -> abR`` — the
    classic word-style reduction with a single masked multiply and
    shift.  The dedicated squaring entry exists so profiling can split
    squarings from general multiplications (CPython's big-int square is
    also cheaper than a general product).
    """

    __slots__ = ("p", "r_bits", "mask", "n_prime", "r1", "r2", "r3")

    def __init__(self, p: int) -> None:
        if p < 3 or p % 2 == 0:
            raise ParameterError("Montgomery reduction requires an odd modulus >= 3")
        self.p = p
        words = (p.bit_length() + _WORD_BITS - 1) // _WORD_BITS
        self.r_bits = words * _WORD_BITS
        r = 1 << self.r_bits
        self.mask = r - 1
        self.n_prime = (-pow(p, -1, r)) % r
        self.r1 = r % p
        self.r2 = r * r % p
        self.r3 = self.r2 * self.r1 % p

    def redc(self, t: int) -> int:
        """Montgomery reduction ``t * R^-1 mod p`` for ``0 <= t < p*R``."""
        m = ((t & self.mask) * self.n_prime) & self.mask
        reduced = (t + m * self.p) >> self.r_bits
        return reduced - self.p if reduced >= self.p else reduced

    def to_mont(self, x: int) -> int:
        """Canonical ``x`` -> Montgomery residue ``x*R mod p``."""
        return self.redc((x % self.p) * self.r2)

    def from_mont(self, x: int) -> int:
        """Montgomery residue ``x*R mod p`` -> canonical ``x``."""
        return self.redc(x)

    def mont_mul(self, a: int, b: int) -> int:
        """``(aR, bR) -> abR``; one base-field multiplication."""
        prof = _obs_crypto.ACTIVE
        if prof is not None:
            prof.fp_muls += 1
        return self.redc(a * b)

    def mont_sqr(self, a: int) -> int:
        """``aR -> a^2 R`` through the dedicated squaring path."""
        prof = _obs_crypto.ACTIVE
        if prof is not None:
            prof.fp_sqrs += 1
        return self.redc(a * a)

    def mont_add(self, a: int, b: int) -> int:
        prof = _obs_crypto.ACTIVE
        if prof is not None:
            prof.fp_adds += 1
        s = a + b
        return s - self.p if s >= self.p else s

    def mont_sub(self, a: int, b: int) -> int:
        prof = _obs_crypto.ACTIVE
        if prof is not None:
            prof.fp_adds += 1
        s = a - b
        return s + self.p if s < 0 else s

    def __repr__(self) -> str:
        return f"MontgomeryFp(p~2^{self.p.bit_length()}, R=2^{self.r_bits})"


_FIELD_CONTEXTS: dict[int, MontgomeryFp] = {}


def montgomery_context(p: int) -> MontgomeryFp:
    """Process-wide REDC context for ``p`` (contexts are immutable)."""
    ctx = _FIELD_CONTEXTS.get(p)
    if ctx is None:
        ctx = _FIELD_CONTEXTS[p] = MontgomeryFp(p)
    return ctx


# -- the shared folded Miller kernel ----------------------------------------


def _fold_lines(steps, qx0: int, qx1: int, qy: int, p: int) -> tuple[int, int]:
    """Replay line coefficients against (qx0 + qx1*i, qy), folding the
    denominator in by conjugation as the loop runs.

    ``f`` tracks ``num * conj(den)`` directly: at a doubling both halves
    square, so the fold commutes with the accumulator updates.  The
    distortion map keeps the evaluation point's y-coordinate real, which
    is what makes a line value ``(a_y*qy + a_x*qx0 + a_0, a_x*qx1)`` —
    two lazy double-width sums, one reduction each — and every Fp2
    multiplication interleaved Karatsuba with 3 base multiplications.
    Works unchanged for canonical coefficients (``R^0``) and for
    Montgomery-form tables against a Montgomery-lifted point (uniform
    ``R^2`` per line, cancelled by the final exponentiation).
    """
    f0, f1 = 1, 0
    for square_first, a_y, a_x, a_0, b_x, b_0 in steps:
        if square_first:
            f0, f1 = (f0 - f1) * (f0 + f1) % p, 2 * f0 * f1 % p
        if a_y or a_x:
            l0 = a_y * qy + a_x * qx0 + a_0
            l1 = a_x * qx1
            t00 = f0 * l0
            t11 = f1 * l1
            f0, f1 = (t00 - t11) % p, ((f0 + f1) * (l0 + l1) - t00 - t11) % p
        if b_x:
            v0 = b_x * qx0 + b_0
            v1 = -(b_x * qx1)
            t00 = f0 * v0
            t11 = f1 * v1
            f0, f1 = (t00 - t11) % p, ((f0 + f1) * (v0 + v1) - t00 - t11) % p
    return f0, f1


def _walk_fold(xp, yp, n, p, qx0, qx1, qy):
    """Fused Miller walk + fold for the ad-hoc lane.

    Computes the line coefficients (exactly as
    :func:`repro.pairing.miller.miller_line_coefficients` does) and folds
    each one into the accumulator immediately, so no steps list is ever
    materialised — worth ~15% of the ad-hoc pairing on CPython, where
    the ~2·log2(q) tuple allocations and the second iteration are pure
    overhead.  Returns ``(f0, f1, doublings, additions, lines,
    verticals)``; the tallies reproduce the schoolbook counter shape.
    """
    f0, f1 = 1, 0
    T = (xp, yp, 1)
    n_dbl = n_add = n_line = n_vert = 0
    for bit in bin(n)[3:]:  # skip the leading 1; process remaining MSB->LSB
        n_dbl += 1
        # -- doubling coefficients (mirrors miller._double_step) --------
        if T is None:
            a_y = a_x = b_x = 0
        else:
            X, Y, Z = T
            if Y == 0:
                a_y = 0
                a_x = Z * Z % p
                a_0 = -X % p
                b_x = 0
                T = None
            else:
                XX = X * X % p
                YY = Y * Y % p
                ZZ = Z * Z % p
                Z3 = 2 * Y * Z % p
                a_y = Z3 * ZZ % p
                a_x = -3 * XX * ZZ % p
                a_0 = (3 * X * XX - 2 * YY) % p
                C = YY * YY % p
                t = X + YY
                D = 2 * (t * t - XX - C) % p
                E = 3 * XX
                X3 = (E * E - 2 * D) % p
                Y3 = (E * (D - X3) - 8 * C) % p
                T = (X3, Y3, Z3)
                b_x = Z3 * Z3 % p
                b_0 = -X3 % p
        # -- fold ------------------------------------------------------
        f0, f1 = (f0 - f1) * (f0 + f1) % p, 2 * f0 * f1 % p
        if a_y or a_x:
            n_line += 1
            l0 = a_y * qy + a_x * qx0 + a_0
            l1 = a_x * qx1
            t00 = f0 * l0
            t11 = f1 * l1
            f0, f1 = (t00 - t11) % p, ((f0 + f1) * (l0 + l1) - t00 - t11) % p
        if b_x:
            n_vert += 1
            v0 = b_x * qx0 + b_0
            v1 = -(b_x * qx1)
            t00 = f0 * v0
            t11 = f1 * v1
            f0, f1 = (t00 - t11) % p, ((f0 + f1) * (v0 + v1) - t00 - t11) % p
        if bit == "1":
            n_add += 1
            # -- addition coefficients (mirrors miller._add_step) ------
            if T is None:
                T = (xp, yp, 1)
                a_y = a_x = b_x = 0
            else:
                X, Y, Z = T
                ZZ = Z * Z % p
                H = (xp * ZZ - X) % p
                r = (yp * Z * ZZ - Y) % p
                if H == 0 and r != 0:
                    a_y = 0
                    a_x = 1
                    a_0 = -xp % p
                    b_x = 0
                    T = None
                elif H == 0:
                    # T == P mid-walk: unreachable in a prime-order
                    # subgroup, mirrored from _add_step for parity.
                    if Y == 0:
                        a_y = 0
                        a_x = ZZ
                        a_0 = -X % p
                        b_x = 0
                        T = None
                    else:
                        XX = X * X % p
                        YY = Y * Y % p
                        Z3 = 2 * Y * Z % p
                        a_y = Z3 * ZZ % p
                        a_x = -3 * XX * ZZ % p
                        a_0 = (3 * X * XX - 2 * YY) % p
                        C = YY * YY % p
                        t = X + YY
                        D = 2 * (t * t - XX - C) % p
                        E = 3 * XX
                        X3 = (E * E - 2 * D) % p
                        Y3 = (E * (D - X3) - 8 * C) % p
                        T = (X3, Y3, Z3)
                        b_x = Z3 * Z3 % p
                        b_0 = -X3 % p
                else:
                    HH = H * H % p
                    HHH = H * HH % p
                    V = X * HH % p
                    X3 = (r * r - HHH - 2 * V) % p
                    Y3 = (r * (V - X3) - Y * HHH) % p
                    Z3 = Z * H % p
                    a_y = Z3
                    a_x = -r % p
                    a_0 = (r * xp - Z3 * yp) % p
                    b_x = Z3 * Z3 % p
                    b_0 = -X3 % p
                    T = (X3, Y3, Z3)
            if a_y or a_x:
                n_line += 1
                l0 = a_y * qy + a_x * qx0 + a_0
                l1 = a_x * qx1
                t00 = f0 * l0
                t11 = f1 * l1
                f0, f1 = (
                    (t00 - t11) % p,
                    ((f0 + f1) * (l0 + l1) - t00 - t11) % p,
                )
            if b_x:
                n_vert += 1
                v0 = b_x * qx0 + b_0
                v1 = -(b_x * qx1)
                t00 = f0 * v0
                t11 = f1 * v1
                f0, f1 = (
                    (t00 - t11) % p,
                    ((f0 + f1) * (v0 + v1) - t00 - t11) % p,
                )
    return f0, f1, n_dbl, n_add, n_line, n_vert


def _final_exp_folded(f0: int, f1: int, p: int, exp: int) -> tuple[int, int]:
    """``(conj(f) * f^-1) ** exp`` over raw limbs: ``conj(f)^2 / N(f)``
    then square-and-multiply, reducing once per output limb throughout.
    """
    norm = (f0 * f0 + f1 * f1) % p
    inv = pow(norm, p - 2, p)
    s0 = (f0 - f1) * (f0 + f1) % p
    s1 = -2 * f0 * f1 % p
    g0 = s0 * inv % p
    g1 = s1 * inv % p
    r0, r1 = 1, 0
    e = exp
    while e:
        if e & 1:
            t00 = r0 * g0
            t11 = r1 * g1
            r0, r1 = (t00 - t11) % p, ((r0 + r1) * (g0 + g1) - t00 - t11) % p
        e >>= 1
        if e:
            g0, g1 = (g0 - g1) * (g0 + g1) % p, 2 * g0 * g1 % p
    return r0, r1


class _StepCosts:
    """Aggregated counter updates for one steps list.

    ``doublings``/``additions``/``fp2_muls`` mirror what the schoolbook
    lane's instrumented field ops would have counted (the cross-backend
    parity totals); ``fp_muls``/``fp_sqrs``/``fp_adds`` tally the actual
    base-field work of :func:`_fold_lines` on the same steps.
    """

    __slots__ = ("doublings", "additions", "fp2_muls", "fp_muls", "fp_sqrs", "fp_adds")

    def __init__(self, steps) -> None:
        doublings = additions = fp2_muls = 0
        muls = sqrs = adds = 0
        for square_first, a_y, a_x, _a_0, b_x, _b_0 in steps:
            if square_first:
                doublings += 1
                fp2_muls += 2  # schoolbook squares f_num and f_den
                sqrs += 2  # kernel: one complex square
                adds += 3
            else:
                additions += 1
            if a_y or a_x:
                fp2_muls += 3  # eval_y*a_y, eval_x*a_x, f_num*line
                muls += 6  # 3 for the line value, 3 Karatsuba
                adds += 7
            if b_x:
                fp2_muls += 2  # eval_x*b_x, f_den*vertical
                muls += 5
                adds += 6
        self.doublings = doublings
        self.additions = additions
        self.fp2_muls = fp2_muls
        self.fp_muls = muls
        self.fp_sqrs = sqrs
        self.fp_adds = adds


class MontgomeryTateKernel:
    """Per-(p, q) reduced-Tate kernel: exponent, context, counter totals."""

    __slots__ = (
        "ctx",
        "p",
        "q",
        "exp",
        "exp_bits",
        "exp_ones",
        "final_fp_muls",
        "final_fp_sqrs",
        "final_fp_adds",
    )

    def __init__(self, ctx: MontgomeryFp, q: int) -> None:
        self.ctx = ctx
        self.p = ctx.p
        self.q = q
        self.exp = (ctx.p + 1) // q
        self.exp_bits = self.exp.bit_length()
        self.exp_ones = bin(self.exp).count("1")
        # Actual base-field work of _final_exp_folded.
        self.final_fp_muls = 2 + 3 * self.exp_ones
        self.final_fp_sqrs = 4 + 2 * (self.exp_bits - 1)
        self.final_fp_adds = 4 + 3 * (self.exp_bits - 1) + 5 * self.exp_ones

    def apply_loop_counters(self, prof, costs: _StepCosts) -> None:
        prof.miller_doublings += costs.doublings
        prof.miller_additions += costs.additions
        prof.fp2_mul += costs.fp2_muls
        prof.fp_muls += costs.fp_muls
        prof.fp_sqrs += costs.fp_sqrs
        prof.fp_adds += costs.fp_adds

    def apply_final_counters(self, prof) -> None:
        # Parity with the schoolbook accounting: the conjugate fold
        # (num * conj(den)), the inversion, conj * inv, and the
        # square-and-multiply of the (p+1)/q exponentiation.
        prof.fp2_mul += 2 + self.exp_ones
        prof.fp2_sqr += self.exp_bits
        prof.fp2_inv += 1
        prof.fp_muls += self.final_fp_muls
        prof.fp_sqrs += self.final_fp_sqrs
        prof.fp_adds += self.final_fp_adds

    def finalize(self, f0: int, f1: int) -> tuple[int, int]:
        return _final_exp_folded(f0, f1, self.p, self.exp)


_KERNELS: dict[tuple[int, int], MontgomeryTateKernel] = {}


def tate_kernel(p: int, q: int) -> MontgomeryTateKernel:
    kernel = _KERNELS.get((p, q))
    if kernel is None:
        kernel = _KERNELS[(p, q)] = MontgomeryTateKernel(montgomery_context(p), q)
    return kernel


_DEGENERATE_MSG = (
    "degenerate Miller evaluation (evaluation point lies on a "
    "chord/vertical of the base point's multiples)"
)


class MontgomeryFixedTable:
    """Full precomputed pairing table for a fixed first argument.

    All Miller-loop line coefficients for the hot ``P_pub`` argument,
    converted to Montgomery form once at build time:
    ``(a_y*R, a_x*R, a_0*R^2, b_x*R, b_0*R^2) mod p``.  The evaluation
    point is lifted to ``(x0*R, x1*R, y*R)`` with three REDC products
    per call; every line and vertical value then carries the *uniform*
    extra factor ``R^2`` in F_p^*, which the final exponentiation kills.
    (The coefficients are weight-6 homogeneous only under the Jacobian
    grading, not under plain input scaling, which is why each one is
    converted individually rather than re-walking scaled inputs.)

    Construction is pure precomputation and touches no profiling
    counters, matching :class:`repro.pairing.fast_tate.FixedArgumentTate`.
    """

    __slots__ = ("kernel", "steps", "costs")

    def __init__(self, steps, q: int, p: int) -> None:
        kernel = tate_kernel(p, q)
        ctx = kernel.ctx
        mask = ctx.mask
        n_prime = ctx.n_prime
        r_bits = ctx.r_bits
        r2 = ctx.r2
        r3 = ctx.r3

        def conv(x: int, scale: int) -> int:
            # x * scale * R^-1 mod p, uncounted (build-time REDC).
            t = x * scale
            m = ((t & mask) * n_prime) & mask
            v = (t + m * p) >> r_bits
            return v - p if v >= p else v

        self.kernel = kernel
        self.steps = [
            (
                square_first,
                conv(a_y, r2),
                conv(a_x, r2),
                conv(a_0, r3),
                conv(b_x, r2),
                conv(b_0, r3),
            )
            for square_first, a_y, a_x, a_0, b_x, b_0 in steps
        ]
        self.costs = _StepCosts(steps)

    def evaluate(self, qx0: int, qx1: int, qy: int) -> tuple[int, int]:
        """Pair against (qx0 + qx1*i, qy); returns the reduced value's limbs."""
        kernel = self.kernel
        ctx = kernel.ctx
        p = kernel.p
        prof = _obs_crypto.ACTIVE
        mx0 = ctx.redc(qx0 * ctx.r2)
        mx1 = ctx.redc(qx1 * ctx.r2)
        my = ctx.redc(qy * ctx.r2)
        f0, f1 = _fold_lines(self.steps, mx0, mx1, my, p)
        if prof is not None:
            kernel.apply_loop_counters(prof, self.costs)
            prof.fp_muls += 3  # evaluation-point lift to Montgomery form
        if f0 == 0 and f1 == 0:
            raise PairingError(_DEGENERATE_MSG)
        if prof is not None:
            kernel.apply_final_counters(prof)
        return kernel.finalize(f0, f1)


def tate_pairing_mont(p_point, q_point, q: int, ext_curve) -> Fp2Element:
    """Reduced Tate pairing through the folded Montgomery kernel.

    Drop-in for :func:`repro.pairing.fast_tate.tate_pairing_fast` —
    same arguments, bit-identical output, same counter shape.  The
    kernel requires the evaluation point's y-coordinate to be real
    (guaranteed for distortion-mapped arguments); anything else takes
    the generic projective fast path, which is equal by the same
    F_p^*-cancellation lemma.
    """
    ext_field = ext_curve.field
    if not isinstance(ext_field, Fp2):
        raise PairingError("tate_pairing_mont requires the extension curve over F_p^2")
    if p_point.is_infinity() or q_point.is_infinity():
        return ext_field.one()
    if not hasattr(p_point.x, "value"):
        raise PairingError(
            "tate_pairing_mont requires a base-field first argument "
            "(its real coordinates are what make the scaling factors cancel)"
        )
    qx, qy = q_point.x, q_point.y
    if not (isinstance(qx, Fp2Element) and isinstance(qy, Fp2Element) and qy.b == 0):
        num, den = miller_loop_projective(p_point, q_point, q)
        return _final_exponentiation(num * den.conjugate(), ext_field.p, q)
    p = ext_field.p
    kernel = tate_kernel(p, q)
    prof = _obs_crypto.ACTIVE
    if prof is not None:
        prof.miller_loops += 1
    f0, f1, n_dbl, n_add, n_line, n_vert = _walk_fold(
        p_point.x.value % p, p_point.y.value % p, q, p, qx.a, qx.b, qy.a
    )
    if prof is not None:
        prof.miller_doublings += n_dbl
        prof.miller_additions += n_add
        prof.fp2_mul += 2 * n_dbl + 3 * n_line + 2 * n_vert
        prof.fp_muls += 6 * n_line + 5 * n_vert
        prof.fp_sqrs += 2 * n_dbl
        prof.fp_adds += 3 * n_dbl + 7 * n_line + 6 * n_vert
    if f0 == 0 and f1 == 0:
        raise PairingError(_DEGENERATE_MSG)
    if prof is not None:
        kernel.apply_final_counters(prof)
    r0, r1 = kernel.finalize(f0, f1)
    return Fp2Element(ext_field, r0, r1)


# -- raw Jacobian scalar multiplication -------------------------------------
#
# Mirrors curve._jac_double/_jac_add/_jac_add_mixed over plain integers.
# The entry point is lifted to the Montgomery-weighted representative
# (x*R^2, y*R^3, R) — Jacobian coordinates are homogeneous of weight
# (2, 3, 1), so the triple represents the *same* affine point and the
# window-table walk runs on Montgomery residues; the factors of R divide
# back out in the batched normalisation, so the affine results (and the
# returned point) are canonical.


def _jac_double_raw(X, Y, Z, p):
    if Y == 0:
        return None
    A = X * X % p
    B = Y * Y % p
    C = B * B % p
    t = X + B
    D = 2 * (t * t - A - C) % p
    E = 3 * A
    X3 = (E * E - 2 * D) % p
    Y3 = (E * (D - X3) - 8 * C) % p
    Z3 = 2 * Y * Z % p
    return X3, Y3, Z3


def _jac_add_raw(P, Q, p):
    if P is None:
        return Q
    if Q is None:
        return P
    X1, Y1, Z1 = P
    X2, Y2, Z2 = Q
    Z1Z1 = Z1 * Z1 % p
    Z2Z2 = Z2 * Z2 % p
    U1 = X1 * Z2Z2 % p
    U2 = X2 * Z1Z1 % p
    S1 = Y1 * Z2 % p * Z2Z2 % p
    S2 = Y2 * Z1 % p * Z1Z1 % p
    H = (U2 - U1) % p
    r = (S2 - S1) % p
    if H == 0:
        if r == 0:
            return _jac_double_raw(X1, Y1, Z1, p)
        return None
    HH = H * H % p
    HHH = H * HH % p
    V = U1 * HH % p
    X3 = (r * r - HHH - 2 * V) % p
    Y3 = (r * (V - X3) - S1 * HHH) % p
    Z3 = Z1 * Z2 % p * H % p
    return X3, Y3, Z3


def _jac_add_mixed_raw(P, x2, y2, p):
    if P is None:
        return x2, y2, 1
    X1, Y1, Z1 = P
    Z1Z1 = Z1 * Z1 % p
    U2 = x2 * Z1Z1 % p
    S2 = y2 * Z1 % p * Z1Z1 % p
    H = (U2 - X1) % p
    r = (S2 - Y1) % p
    if H == 0:
        if r == 0:
            return _jac_double_raw(X1, Y1, Z1, p)
        return None
    HH = H * H % p
    HHH = H * HH % p
    V = X1 * HH % p
    X3 = (r * r - HHH - 2 * V) % p
    Y3 = (r * (V - X3) - Y1 * HHH) % p
    Z3 = Z1 * H % p
    return X3, Y3, Z3


#: (muls, sqrs, adds) operation model per primitive — the standard a=0
#: Jacobian counts, used to keep fp_* meaningful at aggregate cost.
_DBL_OPS = (2, 5, 7)
_MIXED_OPS = (8, 3, 7)
_FULL_OPS = (12, 4, 7)


def scalar_mult_raw(x: int, y: int, digits, width: int, ctx: MontgomeryFp):
    """wNAF scalar multiplication over raw Montgomery-weighted Jacobians.

    ``(x, y)`` is a canonical affine point with ``y != 0``; ``digits``
    the wNAF digits (LSB first) for window ``width``.  Returns canonical
    affine ``(x, y)`` or ``None`` for infinity.  Counter parity with the
    schoolbook wNAF lane: exactly one batched inversion for the window
    table plus one for the final result.
    """
    p = ctx.p
    prof = _obs_crypto.ACTIVE
    X = x * ctx.r2 % p
    Y = y * ctx.r3 % p
    base = (X, Y, ctx.r1)
    twice = _jac_double_raw(X, Y, ctx.r1, p)
    table_jac = [base]
    n_full = (1 << (width - 2)) - 1
    entry = base
    for _ in range(n_full):
        entry = _jac_add_raw(entry, twice, p)
        table_jac.append(entry)
    # Batched normalisation (Montgomery's trick): one real inversion for
    # the whole table; this is also where the weights of R divide out.
    finite = [jac for jac in table_jac if jac is not None]
    prefix = []
    acc_prod = 1
    for jac in finite:
        acc_prod = acc_prod * jac[2] % p
        prefix.append(acc_prod)
    if prof is not None:
        prof.fp_inversions += 1
    running = pow(acc_prod, p - 2, p)
    invs = [0] * len(finite)
    for index in range(len(finite) - 1, 0, -1):
        invs[index] = running * prefix[index - 1] % p
        running = running * finite[index][2] % p
    invs[0] = running
    table = []
    next_inv = iter(invs)
    for jac in table_jac:
        if jac is None:
            table.append(None)
            continue
        z_inv = next(next_inv)
        z2 = z_inv * z_inv % p
        table.append((jac[0] * z2 % p, jac[1] * z2 % p * z_inv % p))
    acc = None
    n_dbl = 0
    n_mixed = 0
    for digit in reversed(digits):
        if acc is not None:
            acc = _jac_double_raw(acc[0], acc[1], acc[2], p)
            n_dbl += 1
        if digit:
            entry = table[abs(digit) >> 1]
            if entry is None:
                continue  # odd multiple happened to be infinity
            x2, y2 = entry
            acc = _jac_add_mixed_raw(acc, x2, -y2 % p if digit < 0 else y2, p)
            n_mixed += 1
    if prof is not None:
        n_norm = len(finite)
        prof.fp_muls += (
            _DBL_OPS[0] * (n_dbl + 1)
            + _FULL_OPS[0] * n_full
            + _MIXED_OPS[0] * n_mixed
            + 3 * n_norm  # per-entry affine conversion
            + 3 * max(0, n_norm - 1)  # batch-inversion bookkeeping
        )
        prof.fp_sqrs += _DBL_OPS[1] * (n_dbl + 1) + _FULL_OPS[1] * n_full + _MIXED_OPS[1] * n_mixed
        prof.fp_adds += _DBL_OPS[2] * (n_dbl + 1) + _FULL_OPS[2] * n_full + _MIXED_OPS[2] * n_mixed
    if acc is None:
        return None
    if prof is not None:
        prof.fp_inversions += 1
        prof.fp_muls += 3
    z_inv = pow(acc[2], p - 2, p)
    z2 = z_inv * z_inv % p
    return acc[0] * z2 % p, acc[1] * z2 % p * z_inv % p
