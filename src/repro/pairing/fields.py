"""Finite fields F_p and F_p^2 = F_p[i] (i^2 = -1, requires p % 4 == 3).

Elements are small immutable objects with operator overloading; the
underlying arithmetic is plain Python big-integer math.  The quadratic
extension is exactly what the embedding-degree-2 supersingular curve
needs: pairing values and distortion-mapped point coordinates live in
F_p^2.
"""

from __future__ import annotations

from repro.errors import MathError, NoSquareRootError, NotInvertibleError, ParameterError
from repro.mathlib.modular import inverse_mod, sqrt_mod_p
from repro.mathlib.rand import RandomSource
from repro.obs import crypto as _obs_crypto

__all__ = ["Fp", "FpElement", "Fp2", "Fp2Element", "batch_inverse"]


class FpElement:
    """An element of the prime field F_p."""

    __slots__ = ("value", "field")

    def __init__(self, field: "Fp", value: int) -> None:
        self.field = field
        self.value = value % field.p

    # -- arithmetic ---------------------------------------------------

    def _coerce(self, other) -> "FpElement":
        if isinstance(other, FpElement):
            if other.field.p != self.field.p:
                raise MathError("mixed-field arithmetic between different primes")
            return other
        if isinstance(other, int):
            return FpElement(self.field, other)
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        prof = _obs_crypto.ACTIVE
        if prof is not None:
            prof.fp_adds += 1
        return FpElement(self.field, self.value + other.value)

    __radd__ = __add__

    def __sub__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        prof = _obs_crypto.ACTIVE
        if prof is not None:
            prof.fp_adds += 1
        return FpElement(self.field, self.value - other.value)

    def __rsub__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        prof = _obs_crypto.ACTIVE
        if prof is not None:
            prof.fp_adds += 1
        return FpElement(self.field, other.value - self.value)

    def __mul__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        prof = _obs_crypto.ACTIVE
        if prof is not None:
            prof.fp_muls += 1
        return FpElement(self.field, self.value * other.value)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self * other.inverse()

    def __rtruediv__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return other * self.inverse()

    def __neg__(self):
        return FpElement(self.field, -self.value)

    def __pow__(self, exponent: int):
        if not isinstance(exponent, int):
            raise MathError(
                f"field exponent must be an int, got {type(exponent).__name__}"
            )
        if exponent < 0:
            return self.inverse() ** (-exponent)
        return FpElement(self.field, pow(self.value, exponent, self.field.p))

    def inverse(self) -> "FpElement":
        if self.value == 0:
            raise NotInvertibleError("zero has no inverse in F_p")
        prof = _obs_crypto.ACTIVE
        if prof is not None:
            prof.fp_inversions += 1
        return FpElement(self.field, inverse_mod(self.value, self.field.p))

    def sqrt(self) -> "FpElement":
        """A square root, raising :class:`NoSquareRootError` for non-residues."""
        return FpElement(self.field, sqrt_mod_p(self.value, self.field.p))

    # -- predicates / conversions --------------------------------------

    def is_zero(self) -> bool:
        return self.value == 0

    def __eq__(self, other) -> bool:
        if isinstance(other, int):
            return self.value == other % self.field.p
        return (
            isinstance(other, FpElement)
            and other.field.p == self.field.p
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.field.p, self.value))

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"FpElement({self.value} mod {self.field.p})"

    def to_bytes(self) -> bytes:
        """Fixed-width big-endian encoding (width = field byte length)."""
        return self.value.to_bytes(self.field.byte_length, "big")


class Fp:
    """The prime field F_p; acts as a factory for :class:`FpElement`."""

    def __init__(self, p: int) -> None:
        if p < 3:
            raise ParameterError(f"field prime must be >= 3, got {p}")
        self.p = p
        self.byte_length = (p.bit_length() + 7) // 8
        #: Optional :class:`repro.pairing.montgomery.MontgomeryFp` REDC
        #: context.  ``None`` selects the schoolbook backend; parameter
        #: construction attaches a context when the Montgomery backend is
        #: chosen.  Elements always *store* canonical residues — the
        #: Montgomery representation lives only inside the raw kernels.
        self.mont = None

    def __call__(self, value: int) -> FpElement:
        return FpElement(self, value)

    def zero(self) -> FpElement:
        return FpElement(self, 0)

    def one(self) -> FpElement:
        return FpElement(self, 1)

    def random(self, rng: RandomSource) -> FpElement:
        return FpElement(self, rng.randbelow(self.p))

    def from_bytes(self, data: bytes) -> FpElement:
        """Parse an instance from its canonical byte encoding."""
        return FpElement(self, int.from_bytes(data, "big"))

    def __eq__(self, other) -> bool:
        return isinstance(other, Fp) and other.p == self.p

    def __hash__(self) -> int:
        return hash(("Fp", self.p))

    def __repr__(self) -> str:
        return f"Fp(p~2^{self.p.bit_length()})"


class Fp2Element:
    """An element ``a + b*i`` of F_p^2 with ``i^2 = -1``."""

    __slots__ = ("a", "b", "field")

    def __init__(self, field: "Fp2", a: int, b: int) -> None:
        self.field = field
        self.a = a % field.p
        self.b = b % field.p

    def _coerce(self, other) -> "Fp2Element":
        if isinstance(other, Fp2Element):
            if other.field.p != self.field.p:
                raise MathError("mixed-field arithmetic between different primes")
            return other
        if isinstance(other, int):
            return Fp2Element(self.field, other, 0)
        if isinstance(other, FpElement):
            if other.field.p != self.field.p:
                raise MathError("mixed-field arithmetic between different primes")
            return Fp2Element(self.field, other.value, 0)
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        prof = _obs_crypto.ACTIVE
        if prof is not None:
            prof.fp_adds += 2
        return Fp2Element(self.field, self.a + other.a, self.b + other.b)

    __radd__ = __add__

    def __sub__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        prof = _obs_crypto.ACTIVE
        if prof is not None:
            prof.fp_adds += 2
        return Fp2Element(self.field, self.a - other.a, self.b - other.b)

    def __rsub__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return other - self

    def __mul__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        prof = _obs_crypto.ACTIVE
        if prof is not None:
            prof.fp2_mul += 1
            prof.fp_muls += 3  # interleaved Karatsuba: 3 base muls
            prof.fp_adds += 5
        p = self.field.p
        # (a + bi)(c + di) = (ac - bd) + (ad + bc) i
        ac = self.a * other.a
        bd = self.b * other.b
        # Karatsuba-style: ad + bc = (a + b)(c + d) - ac - bd
        cross = (self.a + self.b) * (other.a + other.b) - ac - bd
        return Fp2Element(self.field, (ac - bd) % p, cross % p)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self * other.inverse()

    def __rtruediv__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return other * self.inverse()

    def __neg__(self):
        return Fp2Element(self.field, -self.a, -self.b)

    def square(self) -> "Fp2Element":
        prof = _obs_crypto.ACTIVE
        if prof is not None:
            prof.fp2_sqr += 1
            prof.fp_sqrs += 2  # complex squaring: two base products
            prof.fp_adds += 3
        p = self.field.p
        # (a + bi)^2 = (a - b)(a + b) + 2ab i
        return Fp2Element(
            self.field,
            (self.a - self.b) * (self.a + self.b) % p,
            2 * self.a * self.b % p,
        )

    def __pow__(self, exponent: int) -> "Fp2Element":
        if not isinstance(exponent, int):
            raise MathError(
                f"field exponent must be an int, got {type(exponent).__name__}"
            )
        if exponent < 0:
            return self.inverse() ** (-exponent)
        result = self.field.one()
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base.square()
            exponent >>= 1
        return result

    def inverse(self) -> "Fp2Element":
        prof = _obs_crypto.ACTIVE
        if prof is not None:
            prof.fp2_inv += 1
        p = self.field.p
        norm = (self.a * self.a + self.b * self.b) % p
        if norm == 0:
            raise NotInvertibleError("zero has no inverse in F_p^2")
        inv_norm = inverse_mod(norm, p)
        return Fp2Element(self.field, self.a * inv_norm % p, -self.b * inv_norm % p)

    def conjugate(self) -> "Fp2Element":
        """The Frobenius map x -> x^p, which for F_p[i] is conjugation."""
        return Fp2Element(self.field, self.a, -self.b)

    def norm(self) -> FpElement:
        """The field norm N(a + bi) = a^2 + b^2 as an F_p element."""
        return FpElement(self.field.base, self.a * self.a + self.b * self.b)

    def sqrt(self) -> "Fp2Element":
        """A square root in F_p^2 via the norm trick (p % 4 == 3).

        For z = a + bi, find w with w^2 = z using
        w = (z + N)^((p+1)/4-ish) style two-case construction; raises
        :class:`NoSquareRootError` when z is a non-square.
        """
        p = self.field.p
        if self.is_zero():
            return self.field.zero()
        if self.b == 0:
            # Purely real: either sqrt(a) in F_p or sqrt(-a)*i.
            try:
                root = sqrt_mod_p(self.a, p)
                return Fp2Element(self.field, root, 0)
            except NoSquareRootError:
                root = sqrt_mod_p(-self.a % p, p)
                return Fp2Element(self.field, 0, root)
        # General case: |z| = sqrt(norm) must exist in F_p for z square.
        try:
            magnitude = sqrt_mod_p((self.a * self.a + self.b * self.b) % p, p)
        except NoSquareRootError as exc:
            raise NoSquareRootError("element is not a square in F_p^2") from exc
        two_inv = inverse_mod(2, p)
        for sign in (magnitude, (-magnitude) % p):
            alpha = (self.a + sign) * two_inv % p
            try:
                x = sqrt_mod_p(alpha, p)
            except NoSquareRootError:
                continue
            if x == 0:
                continue
            y = self.b * inverse_mod(2 * x % p, p) % p
            candidate = Fp2Element(self.field, x, y)
            if candidate.square() == self:
                return candidate
        raise NoSquareRootError("element is not a square in F_p^2")

    # -- predicates / conversions --------------------------------------

    def is_zero(self) -> bool:
        return self.a == 0 and self.b == 0

    def is_one(self) -> bool:
        return self.a == 1 and self.b == 0

    def __eq__(self, other) -> bool:
        if isinstance(other, int):
            return self.b == 0 and self.a == other % self.field.p
        return (
            isinstance(other, Fp2Element)
            and other.field.p == self.field.p
            and other.a == self.a
            and other.b == self.b
        )

    def __hash__(self) -> int:
        return hash((self.field.p, self.a, self.b))

    def __repr__(self) -> str:
        return f"Fp2Element({self.a} + {self.b}*i mod {self.field.p})"

    def to_bytes(self) -> bytes:
        """Fixed-width encoding: ``a || b`` big-endian."""
        width = self.field.byte_length
        return self.a.to_bytes(width, "big") + self.b.to_bytes(width, "big")


class Fp2:
    """The quadratic extension F_p[i] with i^2 = -1 (requires p % 4 == 3)."""

    def __init__(self, p: int) -> None:
        if p % 4 != 3:
            raise ParameterError(
                f"F_p[i] with i^2 = -1 requires p % 4 == 3, got p % 4 == {p % 4}"
            )
        self.p = p
        self.base = Fp(p)
        self.byte_length = self.base.byte_length
        #: Mirrors :attr:`Fp.mont` — set alongside it at parameter
        #: construction so extension-level consumers (the fixed-argument
        #: pairing tables) can find the REDC context.
        self.mont = None

    def __call__(self, a: int, b: int = 0) -> Fp2Element:
        return Fp2Element(self, a, b)

    def zero(self) -> Fp2Element:
        return Fp2Element(self, 0, 0)

    def one(self) -> Fp2Element:
        return Fp2Element(self, 1, 0)

    def i(self) -> Fp2Element:
        return Fp2Element(self, 0, 1)

    def lift(self, element: FpElement | int) -> Fp2Element:
        """Embed an F_p element into F_p^2."""
        value = element.value if isinstance(element, FpElement) else element
        return Fp2Element(self, value, 0)

    def random(self, rng: RandomSource) -> Fp2Element:
        return Fp2Element(self, rng.randbelow(self.p), rng.randbelow(self.p))

    def from_bytes(self, data: bytes) -> Fp2Element:
        """Parse an instance from its canonical byte encoding."""
        width = self.byte_length
        if len(data) != 2 * width:
            raise MathError(
                f"Fp2 element encoding must be {2 * width} bytes, got {len(data)}"
            )
        return Fp2Element(
            self,
            int.from_bytes(data[:width], "big"),
            int.from_bytes(data[width:], "big"),
        )

    def __eq__(self, other) -> bool:
        return isinstance(other, Fp2) and other.p == self.p

    def __hash__(self) -> int:
        return hash(("Fp2", self.p))

    def __repr__(self) -> str:
        return f"Fp2(p~2^{self.p.bit_length()})"


def batch_inverse(elements):
    """Invert a list of field elements with a single field inversion.

    Montgomery's trick: form the running prefix products, invert the
    total once, then walk backwards peeling off one inverse per element.
    ``n`` inversions cost ``3(n-1)`` multiplications plus one inversion —
    the workhorse behind batched Jacobian-point normalisation.

    Works uniformly for :class:`FpElement` and :class:`Fp2Element` lists
    (any mix is rejected by the elements' own ``_coerce`` checks).
    Raises :class:`NotInvertibleError` if any element is zero.
    """
    elements = list(elements)
    if not elements:
        return []
    prefix = [elements[0]]
    for element in elements[1:]:
        prefix.append(prefix[-1] * element)
    running = prefix[-1].inverse()  # the one real inversion
    inverses = [None] * len(elements)
    for index in range(len(elements) - 1, 0, -1):
        inverses[index] = running * prefix[index - 1]
        running = running * elements[index]
    inverses[0] = running
    return inverses
