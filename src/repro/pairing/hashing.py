"""The Boneh–Franklin hash functions H1..H4 and G_T serialisation.

The paper's protocol computes ``I = SHA1(A || Nonce)`` and treats ``I``
as a curve point; this module implements the full MapToPoint step that
makes that sound: hash to a y-coordinate, lift to the unique curve point
with that y (possible because ``x -> x^3`` is a bijection when
``p % 3 == 2``), then clear the cofactor to land in the order-q
subgroup.

* ``hash_to_point``  — H1: {0,1}* -> G1*   (identity/attribute hashing)
* ``hash_to_scalar`` — H3: {0,1}* -> [1, q-1] (FullIdent randomness)
* ``gt_to_bytes``    — canonical encoding of pairing values
* ``mask_bytes``     — H2/H4-style XOR masks derived via KDF2
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.hashes.kdf import kdf2
from repro.hashes.sha1 import sha1
from repro.pairing.curve import Point
from repro.pairing.fields import Fp2Element
from repro.pairing.params import BFParams

__all__ = ["hash_to_point", "hash_to_scalar", "gt_to_bytes", "mask_bytes"]

_H1_DOMAIN = b"repro-bf-h1"
_H3_DOMAIN = b"repro-bf-h3"


def hash_to_point(params: BFParams, identity: bytes) -> Point:
    """H1: map an identity/attribute string to a point of order q.

    Follows BF MapToPoint: derive ``y`` from the identity hash (retrying
    with a counter on the negligible chance the cofactor multiple is the
    identity), lift to the curve, multiply by the cofactor.
    """
    if not isinstance(identity, (bytes, bytearray)):
        raise ParameterError(
            f"identity must be bytes, got {type(identity).__name__}"
        )
    width = params.curve.field.byte_length
    counter = 0
    while True:
        seed = _H1_DOMAIN + counter.to_bytes(4, "big") + sha1(bytes(identity))
        # Over-sample by 16 bytes so the mod-p bias is negligible.
        y_value = int.from_bytes(kdf2(seed, width + 16), "big") % params.p
        point = params.cofactor * params.curve.lift_x(y_value)
        if not point.is_infinity():
            return point
        counter += 1


def hash_to_scalar(params: BFParams, data: bytes) -> int:
    """H3: map bytes to a scalar in [1, q-1] (uniform up to negligible bias)."""
    width = (params.q.bit_length() + 7) // 8 + 16
    value = int.from_bytes(kdf2(_H3_DOMAIN + data, width), "big")
    return value % (params.q - 1) + 1


def gt_to_bytes(value: Fp2Element) -> bytes:
    """Canonical fixed-width encoding of a pairing value (a || b)."""
    return value.to_bytes()


def mask_bytes(seed: bytes, length: int, domain: bytes = b"repro-bf-h2") -> bytes:
    """H2/H4: derive a ``length``-byte XOR mask from ``seed``.

    Used both to mask messages in BasicIdent/FullIdent and to derive
    symmetric keys from pairing values in the hybrid KEM.
    """
    return kdf2(domain + seed, length)
