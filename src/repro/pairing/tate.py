"""Reduced Tate pairing and Weil pairing over the supersingular curve.

The paper's §IV notes both the Weil pairing (used by Boneh–Franklin's
original scheme) and the Tate pairing ("more efficient in terms of
generation of pairs"); we implement both, defaulting to Tate, and the
EXT-D benchmark quantifies the difference (one Miller loop vs two).

Inputs are a base-field point P (order q) and an extension-field point
Q, normally ``phi(Q')`` for a base-field Q' via the distortion map; the
result is an element of the order-q subgroup of F_p^2*.
"""

from __future__ import annotations

from repro.errors import PairingError
from repro.pairing.curve import Curve, Point
from repro.pairing.fields import Fp2, Fp2Element
from repro.pairing.miller import miller_loop

__all__ = ["tate_pairing", "weil_pairing"]


def _lift_point(point: Point, ext_curve: Curve) -> Point:
    """Embed a base-field point into the extension curve."""
    if point.curve.field == ext_curve.field:
        return point
    ext_field: Fp2 = ext_curve.field
    if point.is_infinity():
        return ext_curve.infinity()
    return Point(ext_curve, ext_field.lift(point.x), ext_field.lift(point.y))


def _final_exponentiation(value: Fp2Element, p: int, q: int) -> Fp2Element:
    """Raise to (p^2 - 1) / q using the Frobenius shortcut.

    (p^2 - 1) / q = (p - 1) * ((p + 1) / q) since q | p + 1, and
    x^(p - 1) = conj(x) / x costs one inversion instead of a full
    exponentiation.
    """
    if value.is_zero():
        raise PairingError("cannot exponentiate zero pairing value")
    powered = value.conjugate() * value.inverse()  # value^(p-1)
    return powered ** ((p + 1) // q)


def tate_pairing(p_point: Point, q_point: Point, q: int, ext_curve: Curve) -> Fp2Element:
    """Reduced Tate pairing e(P, Q) = f_{q,P}(Q)^((p^2-1)/q).

    ``p_point`` must lie in the order-``q`` subgroup over the base field
    (or already on ``ext_curve``); ``q_point`` lies on ``ext_curve``.
    Returns 1 when either input is the point at infinity.
    """
    ext_field = ext_curve.field
    if not isinstance(ext_field, Fp2):
        raise PairingError("tate_pairing requires the extension curve over F_p^2")
    if p_point.is_infinity() or q_point.is_infinity():
        return ext_field.one()
    lifted_p = _lift_point(p_point, ext_curve)
    raw = miller_loop(lifted_p, q_point, q)
    return _final_exponentiation(raw, ext_field.p, q)


def weil_pairing(p_point: Point, q_point: Point, q: int, ext_curve: Curve) -> Fp2Element:
    """Weil pairing e_w(P, Q) = (-1)^q * f_{q,P}(Q) / f_{q,Q}(P).

    Requires both points in E[q]; roughly twice the cost of the Tate
    pairing (two Miller loops, no final exponentiation).  The result
    already lies in the order-q subgroup of F_p^2*.
    """
    ext_field = ext_curve.field
    if not isinstance(ext_field, Fp2):
        raise PairingError("weil_pairing requires the extension curve over F_p^2")
    if p_point.is_infinity() or q_point.is_infinity():
        return ext_field.one()
    lifted_p = _lift_point(p_point, ext_curve)
    lifted_q = _lift_point(q_point, ext_curve)
    if lifted_p == lifted_q:
        return ext_field.one()
    f_p_at_q = miller_loop(lifted_p, lifted_q, q)
    f_q_at_p = miller_loop(lifted_q, lifted_p, q)
    value = f_p_at_q / f_q_at_p
    if q % 2 == 1:
        value = -value
    return value
