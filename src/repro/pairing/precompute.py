"""Fixed-base scalar-multiplication precomputation.

Protocol hot paths multiply the *same* bases over and over: every
deposit computes ``r·P`` (the generator) and every KEM computes a power
of ``e(Q_ID, P_pub)`` for a cached pairing value.  A windowed
fixed-base table trades one-time setup (and memory) for ~3–4× faster
per-operation cost — the classic comb/window method:

write the scalar base-``2^w``; precompute ``T[i][d] = d · 2^(w·i) · B``
for every window position ``i`` and digit ``d``; a multiplication is
then just ``ceil(bits/w)`` point additions with no doublings.

:class:`FixedBasePoint` wraps a curve point; :class:`FixedBaseGt`
applies the same idea to G_T exponentiation (field multiplications
instead of point additions).  Both are drop-in: call them like
functions.  The EXT-D addendum bench measures the gain.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ParameterError
from repro.obs import crypto as _obs_crypto
from repro.pairing.curve import Point
from repro.pairing.fields import Fp2Element

__all__ = [
    "FixedBasePoint",
    "FixedBaseGt",
    "shared_table_stats",
    "clear_shared_tables",
]


# -- shared table memo -------------------------------------------------------
#
# Deployments built in the same process (tests, the load harness) keep
# re-deriving the same generator and G_T bases, so identical window
# tables were being rebuilt over and over.  The memo below keys tables
# by a (kind, field, base-bytes, order, window_bits) fingerprint.
#
# Two deliberate choices preserve the same-seed byte-identical obs-dump
# property: construction runs with the active profiler *suspended*
# (whether a table is a hit or a miss depends on process history, so
# charging build cost to whichever deployment builds first would make
# dumps diverge), and the hit/miss counters live here as module-level
# stats rather than CryptoCounters slots (same reason — they are
# process-history, not per-deployment, quantities).

_SHARED_TABLES: OrderedDict = OrderedDict()
_SHARED_CAPACITY = 64
_SHARED_STATS = {"hits": 0, "misses": 0}


def shared_table_stats() -> dict[str, int]:
    """Process-wide hit/miss counters for the shared window-table memo."""
    return dict(_SHARED_STATS)


def clear_shared_tables() -> None:
    """Drop all memoized tables and reset the hit/miss counters (tests)."""
    _SHARED_TABLES.clear()
    _SHARED_STATS["hits"] = 0
    _SHARED_STATS["misses"] = 0


def _shared_lookup(key, builder):
    table = _SHARED_TABLES.get(key)
    if table is not None:
        _SHARED_TABLES.move_to_end(key)
        _SHARED_STATS["hits"] += 1
        return table
    _SHARED_STATS["misses"] += 1
    previous = _obs_crypto.ACTIVE
    _obs_crypto.ACTIVE = None
    try:
        table = builder()
    finally:
        _obs_crypto.ACTIVE = previous
    _SHARED_TABLES[key] = table
    while len(_SHARED_TABLES) > _SHARED_CAPACITY:
        _SHARED_TABLES.popitem(last=False)
    return table


class FixedBasePoint:
    """Windowed fixed-base table for a curve point.

    >>> from repro.pairing import get_preset
    >>> params = get_preset("TOY64")
    >>> fast = FixedBasePoint(params.generator, params.q)
    >>> fast(12345) == 12345 * params.generator
    True
    """

    @classmethod
    def shared(cls, base: Point, order: int, window_bits: int = 4) -> "FixedBasePoint":
        """Memoized constructor keyed by (base, order, window_bits).

        Repeated ``Deployment.build`` calls in one process share one
        table per fingerprint; see :func:`shared_table_stats`.
        """
        key = ("point", base.curve.field, base.to_bytes(), order, window_bits)
        return _shared_lookup(key, lambda: cls(base, order, window_bits))

    def __init__(self, base: Point, order: int, window_bits: int = 4) -> None:
        if not 1 <= window_bits <= 8:
            raise ParameterError(f"window_bits must be in [1, 8], got {window_bits}")
        self.base = base
        self._order = order
        self._window_bits = window_bits
        digits = 1 << window_bits
        windows = (order.bit_length() + window_bits - 1) // window_bits
        self._table: list[list[Point]] = []
        infinity = base.curve.infinity()
        row_base = base
        for _ in range(windows):
            row = [infinity]
            for _d in range(1, digits):
                row.append(row[-1] + row_base)
            self._table.append(row)
            # Advance the row base by 2^window_bits doublings.
            for _ in range(window_bits):
                row_base = row_base.double()

    @property
    def table_points(self) -> int:
        """Number of precomputed points (memory footprint indicator)."""
        return sum(len(row) for row in self._table)

    def __call__(self, scalar: int) -> Point:
        """``scalar * base`` via table lookups + additions only."""
        scalar %= self._order
        mask = (1 << self._window_bits) - 1
        result = self.base.curve.infinity()
        window = 0
        while scalar:
            digit = scalar & mask
            if digit:
                result = result + self._table[window][digit]
            scalar >>= self._window_bits
            window += 1
        return result


class FixedBaseGt:
    """Windowed fixed-base table for G_T exponentiation.

    Used for the encryptor-side KEM: ``g = e(Q_ID, P_pub)`` is fixed per
    (attribute, key) pair, and per-message work reduces to ``g^r`` —
    with this table, additions-only in the multiplicative group.
    """

    @classmethod
    def shared(cls, base: Fp2Element, order: int, window_bits: int = 4) -> "FixedBaseGt":
        """Memoized constructor keyed by (base, order, window_bits)."""
        key = ("gt", base.field, base.to_bytes(), order, window_bits)
        return _shared_lookup(key, lambda: cls(base, order, window_bits))

    def __init__(self, base: Fp2Element, order: int, window_bits: int = 4) -> None:
        if not 1 <= window_bits <= 8:
            raise ParameterError(f"window_bits must be in [1, 8], got {window_bits}")
        self.base = base
        self._order = order
        self._window_bits = window_bits
        digits = 1 << window_bits
        windows = (order.bit_length() + window_bits - 1) // window_bits
        one = base.field.one()
        self._table: list[list[Fp2Element]] = []
        row_base = base
        for _ in range(windows):
            row = [one]
            for _d in range(1, digits):
                row.append(row[-1] * row_base)
            self._table.append(row)
            for _ in range(window_bits):
                row_base = row_base.square()

    def __call__(self, exponent: int) -> Fp2Element:
        exponent %= self._order
        mask = (1 << self._window_bits) - 1
        result = self.base.field.one()
        window = 0
        while exponent:
            digit = exponent & mask
            if digit:
                result = result * self._table[window][digit]
            exponent >>= self._window_bits
            window += 1
        return result
