#!/usr/bin/env python3
"""The paper's Fig. 1 utility scenario, end to end.

An apartment complex has electric, water and gas meters.  Three
companies retrieve readings:

* C-Services        — full-service retailer: all three meter kinds
* Electric & Gas Co — electric + gas
* Water & Resources — water only

The devices never learn who the companies are; the companies never see
attribute strings (only opaque ids); the MWS never sees a plaintext.
The script deposits one reporting round from a simulated fleet and
prints the resulting access matrix, which must match Fig. 1.

Run:  python examples/utility_scenario.py
"""

from repro import Deployment, DeploymentConfig
from repro.sim.workload import MeterKind, SmartMeterFleet, WorkloadConfig

COMPANY_GRANTS = {
    "c-services": [MeterKind.ELECTRIC, MeterKind.WATER, MeterKind.GAS],
    "electric-and-gas": [MeterKind.ELECTRIC, MeterKind.GAS],
    "water-and-resources": [MeterKind.WATER],
}


def main() -> None:
    deployment = Deployment.build(DeploymentConfig(preset="TEST80", rsa_bits=1024))
    fleet = SmartMeterFleet(WorkloadConfig(meters_per_kind=2))

    # Register the fleet: every meter gets a MAC key from the MWS.
    devices = {
        device_id: deployment.new_smart_device(device_id)
        for device_id in fleet.device_ids()
    }
    print(f"registered {len(devices)} smart meters")

    # Register the companies with their Fig. 1 grants.
    clients = {}
    for company, kinds in COMPANY_GRANTS.items():
        attributes = [fleet.attribute_for(kind) for kind in kinds]
        clients[company] = deployment.new_receiving_client(
            company, f"password-{company}", attributes=attributes
        )
        print(f"registered {company!r} with grants {attributes}")

    # One reporting round: every meter deposits one encrypted reading.
    for reading in fleet.round_of_readings():
        device = devices[reading.device_id]
        device.deposit(
            deployment.sd_channel(device.device_id),
            reading.attribute(),
            reading.payload(),
        )
    print(f"\nwarehouse now holds {len(deployment.mws.message_db)} ciphertexts "
          f"under attributes {deployment.mws.message_db.attributes()}")

    # Each company retrieves and decrypts what it is entitled to.
    print("\naccess matrix (rows: company, columns: meter kind):")
    header = "".join(f"{kind.value:>10}" for kind in MeterKind)
    print(f"{'':24}{header}")
    for company, client in clients.items():
        messages = client.retrieve_and_decrypt(
            deployment.rc_mws_channel(company),
            deployment.rc_pkg_channel(company),
        )
        kinds_seen = {
            plain.split(b";")[1].split(b"=")[1].decode()
            for plain in (m.plaintext for m in messages)
        }
        row = "".join(
            f"{'YES' if kind.value in kinds_seen else '-':>10}"
            for kind in MeterKind
        )
        print(f"{company:24}{row}   ({len(messages)} messages)")

    # Assert the exact Fig. 1 matrix.
    for company, kinds in COMPANY_GRANTS.items():
        messages = clients[company].retrieve_and_decrypt(
            deployment.rc_mws_channel(company),
            deployment.rc_pkg_channel(company),
        )
        expected = 2 * len(kinds)  # 2 meters per kind
        assert len(messages) == expected, (company, len(messages), expected)
    print("\nFig. 1 access matrix reproduced exactly")


if __name__ == "__main__":
    main()
