#!/usr/bin/env python3
"""IBE warehouse vs certificate-PKI baseline: the paper's §I argument.

The paper claims certificate-based PKI is "expensive and difficult" for
this setting.  This example runs the *same workload* through both
deployments and prints the operation counts that back the claim:

* enrolment of a new recipient class (IBE: one policy row; PKI: keygen +
  certificate issuance + device cache invalidation),
* per-message device work when recipients multiply (IBE: one ciphertext
  regardless; PKI: one chain verification + RSA wrap per recipient),
* revocation (IBE: delete a policy row; PKI: CRL distribution).

Run:  python examples/pki_vs_ibe.py
"""

import time

from repro import Deployment, DeploymentConfig
from repro.pki.baseline import PkiBaselineDeployment
from repro.mathlib.rand import HmacDrbg
from repro.sim.clock import SimClock

RECIPIENTS = ["c-services", "electric-and-gas", "water-and-resources"]
MESSAGES = 10


def run_ibe() -> dict:
    deployment = Deployment.build(
        DeploymentConfig(preset="TEST80", rsa_bits=1024, seed=b"pki-vs-ibe")
    )
    meter = deployment.new_smart_device("meter-1")
    started = time.perf_counter()
    for name in RECIPIENTS:
        deployment.new_receiving_client(name, f"pw-{name}", attributes=["METER-X"])
    enroll_seconds = time.perf_counter() - started

    started = time.perf_counter()
    for index in range(MESSAGES):
        meter.deposit(
            deployment.sd_channel("meter-1"), "METER-X", f"reading-{index}".encode()
        )
    deposit_seconds = time.perf_counter() - started

    started = time.perf_counter()
    deployment.mws.revoke(RECIPIENTS[-1], "METER-X")
    revoke_seconds = time.perf_counter() - started
    return {
        "enroll_s": enroll_seconds,
        "deposit_s": deposit_seconds,
        "revoke_s": revoke_seconds,
        "ciphertexts_per_message": 1,
        "device_knows_recipients": False,
    }


def run_pki() -> dict:
    baseline = PkiBaselineDeployment(
        rsa_bits=1024, rng=HmacDrbg(b"pki"), clock=SimClock()
    )
    started = time.perf_counter()
    for name in RECIPIENTS:
        baseline.enroll_recipient(name)
    enroll_seconds = time.perf_counter() - started

    started = time.perf_counter()
    for index in range(MESSAGES):
        baseline.deposit(f"reading-{index}".encode(), RECIPIENTS)
    deposit_seconds = time.perf_counter() - started

    started = time.perf_counter()
    baseline.revoke_recipient(RECIPIENTS[-1])
    revoke_seconds = time.perf_counter() - started
    return {
        "enroll_s": enroll_seconds,
        "deposit_s": deposit_seconds,
        "revoke_s": revoke_seconds,
        "ciphertexts_per_message": len(RECIPIENTS),
        "device_knows_recipients": True,
        "stats": baseline.stats,
    }


def main() -> None:
    print(f"workload: {len(RECIPIENTS)} recipient classes, {MESSAGES} messages\n")
    ibe = run_ibe()
    pki = run_pki()

    rows = [
        ("enrol 3 recipients (s)", f"{ibe['enroll_s']:.2f}", f"{pki['enroll_s']:.2f}"),
        (f"deposit {MESSAGES} messages (s)", f"{ibe['deposit_s']:.2f}",
         f"{pki['deposit_s']:.2f}"),
        ("revoke 1 recipient (s)", f"{ibe['revoke_s']:.4f}", f"{pki['revoke_s']:.4f}"),
        ("key wraps per message", "1 (attribute)",
         f"{pki['ciphertexts_per_message']} (one per recipient)"),
        ("device must know recipients", "no", "yes"),
    ]
    width = 34
    print(f"{'metric':{width}}{'IBE warehouse':>18}{'PKI baseline':>22}")
    for metric, ibe_value, pki_value in rows:
        print(f"{metric:{width}}{ibe_value:>18}{pki_value:>22}")

    print(f"\nPKI operation counters: {pki['stats']}")
    print("\nNote: IBE enrolment time here includes RSA keygen for the RC's")
    print("token key; the structural difference is the last two rows — the")
    print("device-side coupling PKI forces and IBE removes.")


if __name__ == "__main__":
    main()
