#!/usr/bin/env python3
"""Durable storage backends and crash recovery (paper §VIII future work).

The paper's prototype kept flat files and listed "move to a DBMS" as
future work.  This example runs the MWS on the log-structured engine,
kills it mid-operation (simulated torn write), restarts, and shows that
every acknowledged deposit survives — then compacts the log and shows
the space reclaimed.

Run:  python examples/durable_warehouse.py
"""

import os
import tempfile

from repro import Deployment, DeploymentConfig
from repro.mws.service import MwsConfig
from repro.storage.engine import LogStructuredStore


def main() -> None:
    directory = tempfile.mkdtemp(prefix="repro-warehouse-")
    message_log = os.path.join(directory, "messages.log")
    policy_log = os.path.join(directory, "policy.log")
    print(f"durable state under {directory}")

    config = DeploymentConfig(
        preset="TEST80",
        rsa_bits=1024,
        mws=MwsConfig(
            message_store=LogStructuredStore(message_log),
            policy_store=LogStructuredStore(policy_log),
        ),
    )
    deployment = Deployment.build(config)
    meter = deployment.new_smart_device("meter-1")
    deployment.new_receiving_client("rc", "pw", attributes=["ATTR"])

    for index in range(25):
        meter.deposit(deployment.sd_channel("meter-1"), "ATTR", f"r{index}".encode())
    acknowledged = len(deployment.mws.message_db)
    print(f"acknowledged {acknowledged} deposits")

    # Simulate a crash: close abruptly, then append a torn half-record as
    # if the process died mid-write.
    deployment.mws.message_db.close()
    deployment.mws.policy_db.close()
    with open(message_log, "ab") as handle:
        handle.write(b"\xde\xad\xbe")  # torn frame
    print("simulated crash with a torn final write")

    # Restart: recovery scans the log, truncates the torn tail.
    from repro.storage.message_db import MessageDatabase
    from repro.storage.policy_db import PolicyDatabase

    recovered_messages = MessageDatabase(LogStructuredStore(message_log))
    recovered_policy = PolicyDatabase(LogStructuredStore(policy_log))
    print(f"after restart: {len(recovered_messages)} messages, "
          f"{len(recovered_policy)} policy rows recovered")
    assert len(recovered_messages) == acknowledged

    # The recovered DB answers attribute queries as before.
    records = recovered_messages.by_attribute("ATTR")
    assert len(records) == acknowledged
    print(f"attribute index rebuilt: {len(records)} records under 'ATTR'")

    # Compaction demo: overwrite churn then compact.
    store = LogStructuredStore(os.path.join(directory, "churn.log"))
    for round_number in range(200):
        store.put(b"hot", f"version-{round_number}".encode() * 10)
    before = store.file_bytes()
    store.compact()
    after = store.file_bytes()
    print(f"compaction: {before} bytes -> {after} bytes "
          f"({100 * (before - after) // before}% reclaimed)")
    store.close()
    recovered_messages.close()
    recovered_policy.close()
    print("durable warehouse demo OK")


if __name__ == "__main__":
    main()
