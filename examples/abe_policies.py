#!/usr/bin/env python3
"""KP-ABE extension: threshold policies over attributes (paper ref [6]).

The paper's related work says its design "adopts the solution presented
in [6]" — Goyal et al.'s key-policy ABE.  Where the core protocol binds
one attribute string per message, KP-ABE lets a receiving client's key
carry a *policy tree*: C-Services' key below reads any meter kind in
its region with a single key, and an auditor's key requires two
independent meter kinds to corroborate before anything decrypts.

Run:  python examples/abe_policies.py
"""

from repro.abe import KpAbeAuthority, leaf, threshold
from repro.errors import AccessDeniedError
from repro.mathlib.rand import HmacDrbg
from repro.pairing import get_preset

UNIVERSE = ["ELECTRIC", "GAS", "WATER", "REGION-SV", "REGION-NY"]


def main() -> None:
    params = get_preset("TEST80")
    authority = KpAbeAuthority(params, UNIVERSE, rng=HmacDrbg(b"abe-demo"))
    print(f"ABE authority over universe {UNIVERSE}")

    # C-Services: (ELECTRIC or GAS or WATER) and REGION-SV
    c_services_key = authority.keygen(
        threshold(
            2,
            threshold(1, leaf("ELECTRIC"), leaf("GAS"), leaf("WATER")),
            leaf("REGION-SV"),
        )
    )
    # Auditor: at least 2 distinct meter kinds (cross-checking requirement).
    auditor_key = authority.keygen(
        threshold(2, leaf("ELECTRIC"), leaf("GAS"), leaf("WATER"))
    )
    print("issued keys: c-services=(any-meter AND REGION-SV), "
          "auditor=2-of-3 meter kinds")

    ciphertexts = {
        "sv electric reading": {"ELECTRIC", "REGION-SV"},
        "ny electric reading": {"ELECTRIC", "REGION-NY"},
        "sv combined audit bundle": {"ELECTRIC", "WATER", "REGION-SV"},
    }

    print(f"\n{'ciphertext label set':42}{'c-services':>12}{'auditor':>10}")
    for body, labels in ciphertexts.items():
        ciphertext = authority.encrypt(labels, body.encode(), rng=HmacDrbg(body.encode()))
        row = []
        for key in (c_services_key, auditor_key):
            try:
                plaintext = authority.decrypt(key, ciphertext)
                assert plaintext == body.encode()
                row.append("reads")
            except AccessDeniedError:
                row.append("denied")
        print(f"{str(sorted(labels)):42}{row[0]:>12}{row[1]:>10}")

    # Expected matrix:
    #   sv electric          -> c-services reads, auditor denied (1 kind)
    #   ny electric          -> both denied (wrong region / 1 kind)
    #   sv electric+water    -> both read
    print("\nABE policy demo OK")


if __name__ == "__main__":
    main()
