#!/usr/bin/env python3
"""Searching the warehouse without the warehouse learning anything.

The paper's related work (reference [1]) points at keyword search over
encrypted data; this example wires PEKS into the warehousing flow:

1. the smart device attaches encrypted keyword tags to each deposit;
2. the MWS stores tags it cannot interpret;
3. an authorised client obtains a *trapdoor* for one keyword and asks
   the MWS to filter — the MWS learns only which records matched,
   never the keyword or the message contents;
4. the client decrypts just the matching messages via the normal
   three-phase protocol.

Run:  python examples/encrypted_search.py
"""

from repro import Deployment, DeploymentConfig
from repro.ibe.peks import PeksScheme, SearchableIndex
from repro.mathlib.rand import HmacDrbg

DEPOSITS = [
    (b"reading=41.2kWh;status=ok", ["reading", "routine"]),
    (b"OUTAGE detected 03:12, phase B down", ["outage", "event"]),
    (b"reading=39.8kWh;status=ok", ["reading", "routine"]),
    (b"outage cleared 04:02, phase B restored", ["outage", "event"]),
    (b"tamper switch opened", ["tamper", "event"]),
]


def main() -> None:
    deployment = Deployment.build(DeploymentConfig(preset="TEST80", rsa_bits=1024))
    meter = deployment.new_smart_device("ELECTRIC-GLENBROOK-001")
    operator = deployment.new_receiving_client(
        "grid-operator", "pw", attributes=["ELECTRIC-GLENBROOK-SV-CA"]
    )

    # The attribute authority holds the PEKS secret; the device tags
    # with the public point only.
    authority = PeksScheme.generate(
        deployment.public_params.params, rng=HmacDrbg(b"search-authority")
    )
    device_tagger = PeksScheme(
        deployment.public_params.params,
        public_point=authority.public_point,
        rng=HmacDrbg(b"device-tagger"),
    )
    index = SearchableIndex(authority)

    channel = deployment.sd_channel(meter.device_id)
    for body, keywords in DEPOSITS:
        response = meter.deposit(channel, "ELECTRIC-GLENBROOK-SV-CA", body)
        index.add(response.message_id, device_tagger.tag_all(keywords))
    print(f"deposited {len(DEPOSITS)} messages with "
          f"{index.stats['tags_stored']} encrypted keyword tags")

    # The MWS-side index holds only opaque tags.
    sample_tag = device_tagger.tag("outage")
    assert b"outage" not in sample_tag.to_bytes()
    print("index stores opaque tags (keyword text verified absent)")

    # The operator asks for everything about outages.
    trapdoor = authority.trapdoor("outage")
    hits = index.search(trapdoor)
    print(f"\ntrapdoor('outage') matched records {hits} "
          f"({index.stats['tests_run']} pairing tests run by the MWS)")

    messages = operator.retrieve_and_decrypt(
        deployment.rc_mws_channel(operator.rc_id),
        deployment.rc_pkg_channel(operator.rc_id),
    )
    for message in messages:
        marker = "  <-- match" if message.message_id in hits else ""
        print(f"  msg {message.message_id}: {message.plaintext.decode()}{marker}")

    matched = {m.message_id for m in messages} & set(hits)
    assert matched == {2, 4}
    print("\nencrypted search demo OK")


if __name__ == "__main__":
    main()
